//! Client side of the `bb-serve/v1` protocol (`bbv submit/status/...`).
//!
//! A [`Client`] is one TCP connection speaking newline-delimited JSON:
//! write a request line, read reply lines. `watch` keeps reading — event
//! lines stream until the terminal `{"event": "done", ...}` line arrives.
//! The daemon's address comes either verbatim (`--addr host:port`) or via
//! [`discover_addr`] from the `serve.addr` file the daemon publishes in
//! its serve directory.

use crate::daemon::ADDR_FILE;
use crate::proto::{parse_artifacts, read_line_bounded, LineError};
use crate::spec::JobSpec;
use bb_obs::json::{parse, JsonValue};
use std::io::{self, BufReader, Write};
use std::net::TcpStream;
use std::path::Path;
use std::time::Duration;

/// Reads the daemon's bound address from `dir/serve.addr`.
pub fn discover_addr(dir: &Path) -> io::Result<String> {
    let addr = std::fs::read_to_string(dir.join(ADDR_FILE)).map_err(|e| {
        io::Error::new(
            e.kind(),
            format!(
                "no daemon address in {} (is `bbv serve --dir {}` running?)",
                dir.join(ADDR_FILE).display(),
                dir.display()
            ),
        )
    })?;
    Ok(addr.trim().to_string())
}

/// The outcome of a served job, normalized for the CLI.
#[derive(Debug, Clone)]
pub struct JobResult {
    /// Daemon-assigned job id.
    pub job: u64,
    /// The run's exit code (0 proved / 1 refuted / 2 inconclusive).
    pub exit_code: i32,
    /// The run's buffered stdout, byte-identical to a direct CLI run.
    pub stdout: String,
    /// Requested artifacts (`.aut`/`.dot` bytes) by file name.
    pub artifacts: Vec<(String, Vec<u8>)>,
    /// Whether the daemon served this from the result cache.
    pub cached: bool,
}

/// One connection to a bb-serve daemon.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    /// Connects to `addr` (`host:port`).
    pub fn connect(addr: &str) -> io::Result<Client> {
        let writer = TcpStream::connect(addr)?;
        let reader = BufReader::new(writer.try_clone()?);
        Ok(Client { reader, writer })
    }

    /// Sends one request line and reads one reply line.
    fn roundtrip(&mut self, line: &str) -> Result<JsonValue, String> {
        writeln!(self.writer, "{line}").map_err(|e| format!("send failed: {e}"))?;
        self.read_reply()
    }

    /// Reads and parses the next reply line.
    fn read_reply(&mut self) -> Result<JsonValue, String> {
        let line = match read_line_bounded(&mut self.reader) {
            Ok(Some(l)) => l,
            Ok(None) => return Err("daemon closed the connection".into()),
            Err(LineError::Oversized) => return Err("oversized reply line".into()),
            Err(LineError::Io(e)) => return Err(format!("read failed: {e}")),
        };
        parse(&line).map_err(|e| format!("malformed reply: {e}"))
    }

    /// Protocol ping; checks the schema matches.
    pub fn ping(&mut self) -> Result<JsonValue, String> {
        self.roundtrip("{\"op\": \"ping\"}")
    }

    /// Submits a job; the reply is `queued`, immediate `done` (cache-backed
    /// admission) or a queue-full rejection with `retry_after_ms`.
    pub fn submit(&mut self, spec: &JobSpec, priority: i64) -> Result<JsonValue, String> {
        self.roundtrip(&format!(
            "{{\"op\": \"submit\", \"priority\": {priority}, \"spec\": {}}}",
            spec.to_json()
        ))
    }

    /// Asks for a job's current state (and result, when done).
    pub fn status(&mut self, job: u64) -> Result<JsonValue, String> {
        self.roundtrip(&format!("{{\"op\": \"status\", \"job\": {job}}}"))
    }

    /// Requests cancellation (dequeue, or trip the running job's token).
    pub fn cancel(&mut self, job: u64) -> Result<JsonValue, String> {
        self.roundtrip(&format!("{{\"op\": \"cancel\", \"job\": {job}}}"))
    }

    /// Tells the daemon to stop admitting, finish the queue and exit.
    pub fn drain(&mut self) -> Result<JsonValue, String> {
        self.roundtrip("{\"op\": \"drain\"}")
    }

    /// Fetches daemon counters (queue, admission, cache).
    pub fn stats(&mut self) -> Result<JsonValue, String> {
        self.roundtrip("{\"op\": \"stats\"}")
    }

    /// Fetches the Prometheus text exposition (the `metrics` member of the
    /// reply — the same document `GET /metrics` serves).
    pub fn metrics(&mut self) -> Result<String, String> {
        let v = self.roundtrip("{\"op\": \"metrics\"}")?;
        if let Some(err) = v.get("error").and_then(JsonValue::as_str) {
            return Err(err.to_string());
        }
        v.get("metrics")
            .and_then(JsonValue::as_str)
            .map(str::to_string)
            .ok_or_else(|| "metrics reply missing `metrics` member".into())
    }

    /// Fetches a job's flight-recorder dump (NDJSON text): the live ring
    /// for a running job, the persisted post-mortem for a dead one.
    pub fn dump(&mut self, job: u64) -> Result<String, String> {
        let v = self.roundtrip(&format!("{{\"op\": \"dump\", \"job\": {job}}}"))?;
        if let Some(err) = v.get("error").and_then(JsonValue::as_str) {
            return Err(err.to_string());
        }
        v.get("dump")
            .and_then(JsonValue::as_str)
            .map(str::to_string)
            .ok_or_else(|| "dump reply missing `dump` member".into())
    }

    /// Watches `job`: streams each event line to `on_event` until the
    /// terminal `done` line, which is returned. This consumes the
    /// connection's request slot until the job finishes.
    pub fn watch(
        &mut self,
        job: u64,
        mut on_event: impl FnMut(&JsonValue),
    ) -> Result<JsonValue, String> {
        writeln!(self.writer, "{{\"op\": \"watch\", \"job\": {job}}}")
            .map_err(|e| format!("send failed: {e}"))?;
        loop {
            let v = self.read_reply()?;
            if let Some(err) = v.get("error").and_then(JsonValue::as_str) {
                return Err(err.to_string());
            }
            if v.get("event").and_then(JsonValue::as_str) == Some("done") {
                return Ok(v);
            }
            on_event(&v);
        }
    }

    /// Submit + wait for the result, retrying queue-full rejections with
    /// the daemon's `retry_after_ms` hint (capped per attempt to keep
    /// tests snappy). Streams progress events to `on_event` while waiting.
    pub fn submit_and_wait(
        &mut self,
        spec: &JobSpec,
        priority: i64,
        mut on_event: impl FnMut(&JsonValue),
    ) -> Result<JobResult, String> {
        let reply = loop {
            let reply = self.submit(spec, priority)?;
            if reply.get("ok").and_then(JsonValue::as_bool) == Some(true) {
                break reply;
            }
            match reply.get("retry_after_ms").and_then(JsonValue::as_u64) {
                Some(ms) => std::thread::sleep(Duration::from_millis(ms.min(2000))),
                None => {
                    let msg = reply
                        .get("error")
                        .and_then(JsonValue::as_str)
                        .unwrap_or("submit rejected");
                    return Err(msg.to_string());
                }
            }
        };
        let job = reply
            .get("job")
            .and_then(JsonValue::as_u64)
            .ok_or("submit reply missing job id")?;
        let terminal = if reply.get("state").and_then(JsonValue::as_str) == Some("done") {
            reply
        } else {
            self.watch(job, &mut on_event)?
        };
        result_of(job, &terminal)
    }
}

/// Extracts a [`JobResult`] from a terminal reply (`done` status/event).
pub fn result_of(job: u64, v: &JsonValue) -> Result<JobResult, String> {
    if v.get("state").and_then(JsonValue::as_str) == Some("cancelled") {
        return Err(format!("job {job} was cancelled"));
    }
    let exit_code = v
        .get("exit_code")
        .and_then(JsonValue::as_u64)
        .ok_or("terminal reply missing exit_code")? as i32;
    let stdout = v
        .get("stdout")
        .and_then(JsonValue::as_str)
        .ok_or("terminal reply missing stdout")?
        .to_string();
    Ok(JobResult {
        job,
        exit_code,
        stdout,
        artifacts: v.get("artifacts").map(parse_artifacts).unwrap_or_default(),
        cached: v.get("cached").and_then(JsonValue::as_bool) == Some(true),
    })
}
