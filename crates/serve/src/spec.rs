//! Job specifications: the result-relevant configuration of one
//! verification command, shared by the `bbv` CLI and the daemon.
//!
//! A [`JobSpec`] captures everything that determines a command's stdout,
//! artifacts and exit code — the algorithm, bound, property selection,
//! reduce/refine modes and budgets — plus the two knobs that provably do
//! *not* ([`jobs`](JobSpec::jobs) and [`fuse`](JobSpec::fuse), excluded
//! from [`cache_key`](JobSpec::cache_key) because results are bit-identical
//! either way). The same struct round-trips through the `bb-serve/v1` JSON
//! protocol ([`to_json`](JobSpec::to_json) / [`from_json`](JobSpec::from_json))
//! and back into a CLI argv ([`to_argv`](JobSpec::to_argv)), which is what
//! makes the served-vs-direct differential tests possible: both paths run
//! the exact same spec through the exact same runner.

use bb_bisim::RefineMode;
use bb_lts::{Budget, ExploreLimits, Jobs};
use bb_obs::json::{write_str, JsonValue};
use bb_reduce::ReduceMode;
use std::fmt::Write as _;
use std::time::Duration;

/// The benchmark roster: every named algorithm `bbv` and the daemon accept,
/// with a one-line description for `bbv list`.
pub const ALGORITHMS: &[(&str, &str)] = &[
    ("treiber", "Treiber lock-free stack"),
    ("treiber-hp", "Treiber stack + hazard pointers (Michael 2004)"),
    ("treiber-hp-fu", "Treiber stack + revised HP (Fu et al.; lock-freedom bug)"),
    ("ms-queue", "Michael-Scott lock-free queue"),
    ("dglm-queue", "Doherty-Groves-Luchangco-Moir queue"),
    ("hw-queue", "Herlihy-Wing queue (lock-freedom violation)"),
    ("ccas", "conditional CAS (Turon et al.)"),
    ("rdcss", "restricted double-compare single-swap (Harris et al.)"),
    ("newcas", "NewCompareAndSet register (Figs. 3/4)"),
    ("hm-list", "Harris-Michael lock-free list (revised)"),
    ("hm-list-buggy", "Harris-Michael list, first printing (linearizability bug)"),
    ("hsy-stack", "Hendler-Shavit-Yerushalmi elimination stack"),
    ("lazy-list", "Heller et al. lazy list (lock-based)"),
    ("optimistic-list", "optimistic list (lock-based)"),
    ("fine-list", "fine-grained hand-over-hand list (lock-based)"),
    ("two-lock-queue", "two-lock MS queue (blocking; extension)"),
    ("coarse-stack", "coarse-locked stack baseline (extension)"),
    ("coarse-queue", "coarse-locked queue baseline (extension)"),
    ("coarse-set", "coarse-locked set baseline (extension)"),
];

/// Whether `name` (dashes canonical) is on the roster.
pub fn known_algorithm(name: &str) -> bool {
    ALGORITHMS.iter().any(|(n, _)| *n == name)
}

/// The verification command a job runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Command {
    /// Linearizability (+ optional lock-freedom / wait-freedom) check.
    Verify,
    /// Divergence-preserving branching-bisimulation quotient export.
    Quotient,
    /// Next-free LTL model checking on the quotient.
    Check,
    /// Differential reduction soundness harness.
    ReduceCheck,
}

impl Command {
    /// The CLI command word; also the tag in keys and the JSON codec.
    pub fn as_str(self) -> &'static str {
        match self {
            Command::Verify => "verify",
            Command::Quotient => "quotient",
            Command::Check => "check",
            Command::ReduceCheck => "reduce-check",
        }
    }

    /// Parses the CLI command word.
    pub fn parse(s: &str) -> Option<Command> {
        match s {
            "verify" => Some(Command::Verify),
            "quotient" => Some(Command::Quotient),
            "check" => Some(Command::Check),
            "reduce-check" => Some(Command::ReduceCheck),
            _ => None,
        }
    }
}

impl std::fmt::Display for Command {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One verification job: command + algorithm + every result-relevant knob.
#[derive(Debug, Clone, PartialEq)]
pub struct JobSpec {
    /// The command to run.
    pub command: Command,
    /// Canonical algorithm name (dashes, see [`ALGORITHMS`]).
    pub algorithm: String,
    /// Client threads of the most general client.
    pub threads: u8,
    /// Operations per client thread.
    pub ops: u32,
    /// Data domain.
    pub domain: Vec<i64>,
    /// Whether `verify` also checks lock-freedom (where meaningful).
    pub check_lock_freedom: bool,
    /// Whether `verify` also reports the wait-freedom diagnosis.
    pub wait_freedom: bool,
    /// LTL formula for `check`.
    pub formula: Option<String>,
    /// Wall-clock budget.
    pub timeout: Option<Duration>,
    /// Per-stage state cap.
    pub max_states: Option<usize>,
    /// Per-stage transition cap.
    pub max_transitions: Option<usize>,
    /// Per-stage approximate memory cap, bytes.
    pub max_memory: Option<usize>,
    /// Disables the governed fallback ladder.
    pub no_fallback: bool,
    /// Partition-refinement engine (output-identical either way).
    pub refine: RefineMode,
    /// State-space reduction mode.
    pub reduce: ReduceMode,
    /// Worker threads (output-identical at any count; not in the cache key).
    pub jobs: Jobs,
    /// Fused exploration→refinement (output-identical; not in the cache key).
    pub fuse: bool,
}

impl Default for JobSpec {
    fn default() -> Self {
        JobSpec {
            command: Command::Verify,
            algorithm: String::new(),
            threads: 2,
            ops: 2,
            domain: vec![1, 2],
            check_lock_freedom: true,
            wait_freedom: false,
            formula: None,
            timeout: None,
            max_states: None,
            max_transitions: None,
            max_memory: None,
            no_fallback: false,
            refine: RefineMode::default(),
            reduce: ReduceMode::None,
            jobs: Jobs::available(),
            fuse: false,
        }
    }
}

impl JobSpec {
    /// Whether any budget flag was given (switches `verify` to the governed
    /// pipeline with the fallback ladder).
    pub fn budgeted(&self) -> bool {
        self.timeout.is_some()
            || self.max_states.is_some()
            || self.max_transitions.is_some()
            || self.max_memory.is_some()
    }

    /// The declarative budget of this spec (fresh cancellation token; the
    /// runner swaps in the caller's token).
    pub fn budget(&self) -> Budget {
        let defaults = ExploreLimits::default();
        let mut b = Budget::unlimited()
            .with_max_states(self.max_states.unwrap_or(defaults.max_states))
            .with_max_transitions(self.max_transitions.unwrap_or(defaults.max_transitions));
        if let Some(t) = self.timeout {
            b = b.with_deadline(t);
        }
        if let Some(m) = self.max_memory {
            b = b.with_max_memory_bytes(m);
        }
        b
    }

    /// Whether this command's outcome is memoized in the result cache.
    /// Only whole verdicts and quotients are; `check`/`reduce-check` always
    /// run (they are the harnesses that *establish* trust).
    pub fn cacheable(&self) -> bool {
        matches!(self.command, Command::Verify | Command::Quotient)
    }

    /// The checkpoint configuration tag: a hash of everything that
    /// determines the *shape* of the pipeline (which LTSs are explored,
    /// which refinement calls run, in what order). Budgets, `--jobs`,
    /// `--fuse`, checkpoint cadence and output paths are deliberately
    /// excluded — a resume with a raised budget, a different worker count
    /// or fusion toggled must still seed the recorded sections.
    pub fn config_tag(&self) -> u64 {
        let desc = format!(
            "bbp{}.{}|{}|{}|t{}|o{}|d{:?}|lf{}|wf{}|formula{:?}|reduce={}|refine={}",
            bb_persist::FORMAT_VERSION,
            bb_sim::STATE_ENCODING_VERSION,
            self.command,
            self.algorithm,
            self.threads,
            self.ops,
            self.domain,
            self.check_lock_freedom,
            self.wait_freedom,
            self.formula,
            self.reduce,
            self.refine,
        );
        bb_lts::snapshot::fnv1a(0, desc.as_bytes())
    }

    /// The result-cache key: everything that determines the command's
    /// stdout, artifacts and exit code — including budgets, since the
    /// governed report names the rung and bound that answered. `--jobs`
    /// and `--fuse` are excluded: results are bit-identical at any worker
    /// count and with fusion on or off, so a `-j 4 --fuse` run hits the
    /// entry a `-j 1` run stored.
    pub fn cache_key(&self) -> String {
        format!(
            "bbc{}.{}|{}|{}|t{}|o{}|d{:?}|lf{}|wf{}|formula{:?}|reduce={}|refine={}|budget=({:?},{:?},{:?},{:?},nf{})",
            bb_persist::FORMAT_VERSION,
            bb_sim::STATE_ENCODING_VERSION,
            self.command,
            self.algorithm,
            self.threads,
            self.ops,
            self.domain,
            self.check_lock_freedom,
            self.wait_freedom,
            self.formula,
            self.reduce,
            self.refine,
            self.timeout,
            self.max_states,
            self.max_transitions,
            self.max_memory,
            self.no_fallback,
        )
    }

    /// Renders the spec back into a `bbv` argv (command word first). The
    /// output is parseable by the CLI option parser and canonical: two
    /// equal specs render the same argv. Used for checkpoint argv
    /// recording and for byte-diffing served results against direct runs.
    pub fn to_argv(&self) -> Vec<String> {
        let mut argv = vec![self.command.as_str().to_string(), self.algorithm.clone()];
        argv_push(&mut argv, "--threads", self.threads.to_string());
        argv_push(&mut argv, "--ops", self.ops.to_string());
        let domain: Vec<String> = self.domain.iter().map(|v| v.to_string()).collect();
        argv_push(&mut argv, "--domain", domain.join(","));
        if !self.check_lock_freedom {
            argv.push("--no-lock-freedom".into());
        }
        if self.wait_freedom {
            argv.push("--wait-freedom".into());
        }
        if let Some(f) = &self.formula {
            argv_push(&mut argv, "--formula", f.clone());
        }
        if let Some(t) = self.timeout {
            argv_push(&mut argv, "--timeout", format!("{}ms", t.as_secs_f64() * 1e3));
        }
        if let Some(n) = self.max_states {
            argv_push(&mut argv, "--max-states", n.to_string());
        }
        if let Some(n) = self.max_transitions {
            argv_push(&mut argv, "--max-transitions", n.to_string());
        }
        if let Some(n) = self.max_memory {
            argv_push(&mut argv, "--max-memory", n.to_string());
        }
        if self.no_fallback {
            argv.push("--no-fallback".into());
        }
        argv_push(&mut argv, "--refine", self.refine.to_string());
        if self.reduce != ReduceMode::None {
            argv_push(&mut argv, "--reduce", self.reduce.to_string());
        }
        argv_push(&mut argv, "--jobs", self.jobs.get().to_string());
        if self.fuse {
            argv.push("--fuse".into());
        }
        argv
    }

    /// Serializes the spec as one `bb-serve/v1` JSON object (no newline).
    /// Optional fields are omitted when absent; durations travel as exact
    /// nanoseconds so the cache key survives the round-trip bit-for-bit.
    pub fn to_json(&self) -> String {
        let mut s = String::from("{");
        let _ = write!(s, "\"command\": \"{}\"", self.command);
        s.push_str(", \"algorithm\": ");
        write_str(&mut s, &self.algorithm);
        let _ = write!(s, ", \"threads\": {}, \"ops\": {}", self.threads, self.ops);
        s.push_str(", \"domain\": [");
        for (i, v) in self.domain.iter().enumerate() {
            if i > 0 {
                s.push_str(", ");
            }
            let _ = write!(s, "{v}");
        }
        s.push(']');
        let _ = write!(s, ", \"lock_freedom\": {}", self.check_lock_freedom);
        if self.wait_freedom {
            s.push_str(", \"wait_freedom\": true");
        }
        if let Some(f) = &self.formula {
            s.push_str(", \"formula\": ");
            write_str(&mut s, f);
        }
        if let Some(t) = self.timeout {
            let _ = write!(s, ", \"timeout_ns\": {}", t.as_nanos());
        }
        if let Some(n) = self.max_states {
            let _ = write!(s, ", \"max_states\": {n}");
        }
        if let Some(n) = self.max_transitions {
            let _ = write!(s, ", \"max_transitions\": {n}");
        }
        if let Some(n) = self.max_memory {
            let _ = write!(s, ", \"max_memory\": {n}");
        }
        if self.no_fallback {
            s.push_str(", \"no_fallback\": true");
        }
        let _ = write!(s, ", \"refine\": \"{}\", \"reduce\": \"{}\"", self.refine, self.reduce);
        let _ = write!(s, ", \"jobs\": {}", self.jobs.get());
        if self.fuse {
            s.push_str(", \"fuse\": true");
        }
        s.push('}');
        s
    }

    /// Parses a `bb-serve/v1` spec object (the inverse of
    /// [`to_json`](JobSpec::to_json), tolerant of member order). Unknown
    /// members are rejected so a typo'd budget flag can't silently run an
    /// unbounded job.
    pub fn from_json(v: &JsonValue) -> Result<JobSpec, String> {
        let obj = v.as_object().ok_or("spec must be a JSON object")?;
        let mut spec = JobSpec::default();
        for (key, val) in obj {
            match key.as_str() {
                "command" => {
                    let s = val.as_str().ok_or("command must be a string")?;
                    spec.command =
                        Command::parse(s).ok_or_else(|| format!("unknown command `{s}`"))?;
                }
                "algorithm" => {
                    spec.algorithm = val
                        .as_str()
                        .ok_or("algorithm must be a string")?
                        .replace('_', "-");
                }
                "threads" => {
                    let n = val.as_u64().ok_or("threads must be a non-negative integer")?;
                    spec.threads =
                        u8::try_from(n).map_err(|_| "threads out of range".to_string())?;
                }
                "ops" => {
                    let n = val.as_u64().ok_or("ops must be a non-negative integer")?;
                    spec.ops = u32::try_from(n).map_err(|_| "ops out of range".to_string())?;
                }
                "domain" => {
                    let arr = val.as_array().ok_or("domain must be an array")?;
                    spec.domain = arr
                        .iter()
                        .map(|x| as_i64(x).ok_or("domain values must be integers".to_string()))
                        .collect::<Result<_, _>>()?;
                    if spec.domain.is_empty() {
                        return Err("domain must not be empty".into());
                    }
                }
                "lock_freedom" => spec.check_lock_freedom = as_bool(val, key)?,
                "wait_freedom" => spec.wait_freedom = as_bool(val, key)?,
                "formula" => {
                    spec.formula = match val {
                        JsonValue::Null => None,
                        other => {
                            Some(other.as_str().ok_or("formula must be a string")?.to_string())
                        }
                    };
                }
                "timeout_ns" => {
                    let n = val.as_u64().ok_or("timeout_ns must be a non-negative integer")?;
                    spec.timeout = Some(Duration::from_nanos(n));
                }
                "max_states" => spec.max_states = Some(as_usize(val, key)?),
                "max_transitions" => spec.max_transitions = Some(as_usize(val, key)?),
                "max_memory" => spec.max_memory = Some(as_usize(val, key)?),
                "no_fallback" => spec.no_fallback = as_bool(val, key)?,
                "refine" => {
                    spec.refine = val.as_str().ok_or("refine must be a string")?.parse()?;
                }
                "reduce" => {
                    spec.reduce = val.as_str().ok_or("reduce must be a string")?.parse()?;
                }
                "jobs" => {
                    let n = as_usize(val, key)?;
                    if n == 0 {
                        return Err("jobs must be at least 1".into());
                    }
                    spec.jobs = Jobs::new(n);
                }
                "fuse" => spec.fuse = as_bool(val, key)?,
                other => return Err(format!("unknown spec member `{other}`")),
            }
        }
        spec.validate()?;
        Ok(spec)
    }

    /// Structural validation shared by every entry path (CLI, protocol,
    /// journal replay): the algorithm must be on the roster and `check`
    /// needs a formula.
    pub fn validate(&self) -> Result<(), String> {
        if !known_algorithm(&self.algorithm) {
            return Err(format!(
                "unknown algorithm `{}`; try `bbv list`",
                self.algorithm
            ));
        }
        if self.command == Command::Check && self.formula.is_none() {
            return Err("`check` needs a formula".into());
        }
        Ok(())
    }
}

fn argv_push(argv: &mut Vec<String>, name: &str, value: String) {
    argv.push(name.to_string());
    argv.push(value);
}

fn as_bool(v: &JsonValue, key: &str) -> Result<bool, String> {
    match v {
        JsonValue::Bool(b) => Ok(*b),
        _ => Err(format!("{key} must be a boolean")),
    }
}

fn as_usize(v: &JsonValue, key: &str) -> Result<usize, String> {
    let n = v
        .as_u64()
        .ok_or_else(|| format!("{key} must be a non-negative integer"))?;
    usize::try_from(n).map_err(|_| format!("{key} out of range"))
}

fn as_i64(v: &JsonValue) -> Option<i64> {
    match v {
        JsonValue::Num(n) if n.fract() == 0.0 && n.abs() <= 2f64.powi(53) => Some(*n as i64),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bb_obs::json::parse;

    fn sample() -> JobSpec {
        JobSpec {
            command: Command::Verify,
            algorithm: "ms-queue".into(),
            threads: 2,
            ops: 3,
            domain: vec![1, 2, -7],
            check_lock_freedom: false,
            wait_freedom: true,
            formula: Some("G F (ret | done)".into()),
            timeout: Some(Duration::from_millis(1500)),
            max_states: Some(1_000_000),
            max_transitions: None,
            max_memory: Some(2_000_000_000),
            no_fallback: true,
            refine: RefineMode::default(),
            reduce: ReduceMode::None,
            jobs: Jobs::new(4),
            fuse: true,
        }
    }

    #[test]
    fn json_roundtrip_preserves_spec_and_cache_key() {
        let spec = sample();
        let back = JobSpec::from_json(&parse(&spec.to_json()).unwrap()).unwrap();
        assert_eq!(back, spec);
        assert_eq!(back.cache_key(), spec.cache_key());
        assert_eq!(back.config_tag(), spec.config_tag());
    }

    #[test]
    fn cache_key_ignores_jobs_and_fuse_but_not_budgets() {
        let a = sample();
        let mut b = a.clone();
        b.jobs = Jobs::new(1);
        b.fuse = false;
        assert_eq!(a.cache_key(), b.cache_key());
        assert_eq!(a.config_tag(), b.config_tag());
        let mut c = a.clone();
        c.timeout = Some(Duration::from_secs(9));
        assert_ne!(a.cache_key(), c.cache_key());
        assert_eq!(a.config_tag(), c.config_tag(), "budgets never change the tag");
    }

    #[test]
    fn cache_keys_are_pinned_to_the_state_encoding_version() {
        // A bump of `STATE_ENCODING_VERSION` must invalidate every cached
        // result and checkpoint: recomputing the key under the next version
        // yields different fingerprints, so stale entries can never hit.
        let spec = sample();
        let bumped = |v: u32| {
            let desc = format!(
                "bbp{}.{}|{}|{}|t{}|o{}|d{:?}|lf{}|wf{}|formula{:?}|reduce={}|refine={}",
                bb_persist::FORMAT_VERSION,
                v,
                spec.command,
                spec.algorithm,
                spec.threads,
                spec.ops,
                spec.domain,
                spec.check_lock_freedom,
                spec.wait_freedom,
                spec.formula,
                spec.reduce,
                spec.refine,
            );
            bb_lts::snapshot::fnv1a(0, desc.as_bytes())
        };
        assert_eq!(
            spec.config_tag(),
            bumped(bb_sim::STATE_ENCODING_VERSION),
            "the tag must be derived from the current encoding version"
        );
        assert_ne!(
            spec.config_tag(),
            bumped(bb_sim::STATE_ENCODING_VERSION + 1),
            "an encoding bump must change the tag"
        );
        assert!(
            spec.cache_key().starts_with(&format!(
                "bbc{}.{}|",
                bb_persist::FORMAT_VERSION,
                bb_sim::STATE_ENCODING_VERSION
            )),
            "the result-cache key must carry the encoding version"
        );
    }

    #[test]
    fn unknown_members_and_bad_specs_are_rejected() {
        assert!(JobSpec::from_json(&parse(r#"{"algorithm": "treiber", "max_statse": 5}"#).unwrap())
            .is_err());
        assert!(JobSpec::from_json(&parse(r#"{"algorithm": "no-such-thing"}"#).unwrap()).is_err());
        assert!(JobSpec::from_json(&parse(r#"{"command": "check", "algorithm": "treiber"}"#).unwrap())
            .is_err());
        assert!(JobSpec::from_json(&parse(r#"{"algorithm": "treiber", "jobs": 0}"#).unwrap())
            .is_err());
        assert!(JobSpec::from_json(&parse(r#"{"algorithm": "treiber", "domain": []}"#).unwrap())
            .is_err());
    }

    #[test]
    fn argv_parses_back_through_the_cli_grammar() {
        // Spot-check the canonical argv shape; the CLI round-trip itself is
        // covered end-to-end by the serve differential tests.
        let argv = sample().to_argv();
        assert_eq!(argv[0], "verify");
        assert_eq!(argv[1], "ms-queue");
        assert!(argv.contains(&"--no-lock-freedom".to_string()));
        assert!(argv.contains(&"--fuse".to_string()));
        let t = argv.iter().position(|a| a == "--timeout").unwrap();
        assert_eq!(argv[t + 1], "1500ms");
    }

    #[test]
    fn underscored_algorithm_names_canonicalize() {
        let v = parse(r#"{"algorithm": "ms_queue"}"#).unwrap();
        assert_eq!(JobSpec::from_json(&v).unwrap().algorithm, "ms-queue");
    }
}
