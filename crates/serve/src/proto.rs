//! The `bb-serve/v1` wire protocol: newline-delimited JSON over TCP.
//!
//! Every request is one JSON object on one line, at most [`MAX_LINE`]
//! bytes. Every request draws exactly one reply line, except `watch`,
//! which first streams zero or more event lines (`span_begin`, `span_end`,
//! `heartbeat`, `diag`) and terminates with one `done` event carrying the
//! full result. Replies always carry `"ok": true|false`; errors add
//! `"error"` and, for queue-full rejections, `"retry_after_ms"`.
//!
//! Artifacts travel as JSON strings (`"text"`), which is lossless here:
//! every artifact the pipeline produces (`.dot`, `.aut`) is UTF-8 by
//! construction. Robustness rules: a malformed or truncated line draws an
//! error reply and the connection survives; an oversized line draws an
//! error reply and the connection is closed (the daemon will not scan an
//! unbounded stream for the next newline).

use crate::runner::ExecResult;
use crate::spec::JobSpec;
use bb_obs::json::{parse, write_str, JsonValue};
use std::fmt::Write as _;
use std::io::{self, BufRead};

/// Protocol schema identifier, echoed in `ping` and `stats` replies.
pub const SCHEMA: &str = "bb-serve/v1";

/// Hard cap on one request line, in bytes.
pub const MAX_LINE: usize = 1 << 20;

/// A parsed client request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Liveness + schema probe.
    Ping,
    /// Enqueue a job (or serve it straight from the result cache).
    Submit {
        /// The job to run.
        spec: JobSpec,
        /// Higher runs earlier; ties break by submission order.
        priority: i64,
    },
    /// One-shot job state (with the result once done).
    Status {
        /// Job id from `submit`.
        job: u64,
    },
    /// Stream progress events until the job completes.
    Watch {
        /// Job id from `submit`.
        job: u64,
    },
    /// Cancel a queued or running job.
    Cancel {
        /// Job id from `submit`.
        job: u64,
    },
    /// Stop admitting, finish the queue, shut down.
    Drain,
    /// Daemon + queue + cache statistics.
    Stats,
    /// The Prometheus text exposition (same document as `GET /metrics`).
    Metrics,
    /// A job's flight-recorder dump (live ring or persisted post-mortem).
    Dump {
        /// Job id from `submit`.
        job: u64,
    },
}

/// Parses one request line.
pub fn parse_request(line: &str) -> Result<Request, String> {
    let v = parse(line).map_err(|e| format!("malformed request: {e}"))?;
    let op = v
        .get("op")
        .and_then(JsonValue::as_str)
        .ok_or("request needs a string `op` member")?;
    let job_of = |v: &JsonValue| {
        v.get("job")
            .and_then(JsonValue::as_u64)
            .ok_or_else(|| format!("`{op}` needs a numeric `job` member"))
    };
    match op {
        "ping" => Ok(Request::Ping),
        "submit" => {
            let spec = JobSpec::from_json(v.get("spec").ok_or("`submit` needs a `spec` member")?)?;
            let priority = match v.get("priority") {
                None | Some(JsonValue::Null) => 0,
                Some(JsonValue::Num(n)) if n.fract() == 0.0 && n.abs() <= 2f64.powi(53) => {
                    *n as i64
                }
                Some(_) => return Err("priority must be an integer".into()),
            };
            Ok(Request::Submit { spec, priority })
        }
        "status" => Ok(Request::Status { job: job_of(&v)? }),
        "watch" => Ok(Request::Watch { job: job_of(&v)? }),
        "cancel" => Ok(Request::Cancel { job: job_of(&v)? }),
        "drain" => Ok(Request::Drain),
        "stats" => Ok(Request::Stats),
        "metrics" => Ok(Request::Metrics),
        "dump" => Ok(Request::Dump { job: job_of(&v)? }),
        other => Err(format!("unknown op `{other}`")),
    }
}

/// Reading one bounded line can fail two ways with different recoveries.
#[derive(Debug)]
pub enum LineError {
    /// The line exceeded [`MAX_LINE`]; the caller must close the
    /// connection (the rest of the line was not consumed).
    Oversized,
    /// Transport error.
    Io(io::Error),
}

/// Reads one `\n`-terminated line of at most [`MAX_LINE`] bytes. Returns
/// `None` on clean EOF; a partial line at EOF (truncated request) is
/// returned as-is and left to the parser to reject.
pub fn read_line_bounded<R: BufRead>(reader: &mut R) -> Result<Option<String>, LineError> {
    let mut buf: Vec<u8> = Vec::new();
    loop {
        let chunk = match reader.fill_buf() {
            Ok(c) => c,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(LineError::Io(e)),
        };
        if chunk.is_empty() {
            return if buf.is_empty() {
                Ok(None)
            } else {
                Ok(Some(String::from_utf8_lossy(&buf).into_owned()))
            };
        }
        let (line_part, consumed, done) = match chunk.iter().position(|&b| b == b'\n') {
            Some(i) => (&chunk[..i], i + 1, true),
            None => (chunk, chunk.len(), false),
        };
        if buf.len() + line_part.len() > MAX_LINE {
            return Err(LineError::Oversized);
        }
        buf.extend_from_slice(line_part);
        reader.consume(consumed);
        if done {
            return Ok(Some(String::from_utf8_lossy(&buf).into_owned()));
        }
    }
}

/// `{"ok": false, "error": ...}` (one line, no newline).
pub fn error_reply(msg: &str) -> String {
    let mut s = String::from("{\"ok\": false, \"error\": ");
    write_str(&mut s, msg);
    s.push('}');
    s
}

/// The queue-full rejection with its backpressure hint.
pub fn rejected_reply(retry_after_ms: u64) -> String {
    format!(
        "{{\"ok\": false, \"error\": \"queue full\", \"retry_after_ms\": {retry_after_ms}}}"
    )
}

/// Appends the result members shared by `submit` (admission hit), `status`
/// (done) and the final `watch` event: exit code, cache provenance, stdout
/// and artifacts.
pub fn push_result_fields(s: &mut String, r: &ExecResult) {
    let _ = write!(s, ", \"exit_code\": {}, \"cached\": {}", r.exit_code, r.cache_hit);
    s.push_str(", \"stdout\": ");
    write_str(s, &r.stdout);
    s.push_str(", \"artifacts\": [");
    for (i, (name, bytes)) in r.artifacts.iter().enumerate() {
        if i > 0 {
            s.push_str(", ");
        }
        s.push_str("{\"name\": ");
        write_str(s, name);
        s.push_str(", \"text\": ");
        write_str(s, &String::from_utf8_lossy(bytes));
        s.push('}');
    }
    s.push(']');
}

/// Decodes the `artifacts` member of a result reply back into the runner's
/// representation (client side).
pub fn parse_artifacts(v: &JsonValue) -> Vec<(String, Vec<u8>)> {
    let mut out = Vec::new();
    for item in v.as_array().unwrap_or(&[]) {
        let (Some(name), Some(text)) = (
            item.get("name").and_then(JsonValue::as_str),
            item.get("text").and_then(JsonValue::as_str),
        ) else {
            continue;
        };
        out.push((name.to_string(), text.as_bytes().to_vec()));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    #[test]
    fn parses_every_op() {
        assert_eq!(parse_request(r#"{"op": "ping"}"#).unwrap(), Request::Ping);
        assert_eq!(parse_request(r#"{"op": "drain"}"#).unwrap(), Request::Drain);
        assert_eq!(parse_request(r#"{"op": "stats"}"#).unwrap(), Request::Stats);
        assert_eq!(parse_request(r#"{"op": "metrics"}"#).unwrap(), Request::Metrics);
        assert_eq!(
            parse_request(r#"{"op": "status", "job": 3}"#).unwrap(),
            Request::Status { job: 3 }
        );
        assert_eq!(
            parse_request(r#"{"op": "dump", "job": 7}"#).unwrap(),
            Request::Dump { job: 7 }
        );
        let r = parse_request(r#"{"op": "submit", "spec": {"algorithm": "treiber"}, "priority": -2}"#)
            .unwrap();
        match r {
            Request::Submit { spec, priority } => {
                assert_eq!(spec.algorithm, "treiber");
                assert_eq!(priority, -2);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn rejects_malformed_requests() {
        assert!(parse_request("").is_err());
        assert!(parse_request("not json").is_err());
        assert!(parse_request(r#"{"op": "warp"}"#).is_err());
        assert!(parse_request(r#"{"op": "status"}"#).is_err());
        assert!(parse_request(r#"{"op": "dump"}"#).is_err());
        assert!(parse_request(r#"{"op": "submit"}"#).is_err());
        assert!(parse_request(r#"{"op": "submit", "spec": {"algorithm": "treiber"}, "priority": 1.5}"#).is_err());
        assert!(parse_request(r#"{"op": "ping""#).is_err(), "truncated line");
    }

    #[test]
    fn bounded_reader_handles_eof_partial_and_oversize() {
        let mut r = BufReader::new(&b"a\nbb\nccc"[..]);
        assert_eq!(read_line_bounded(&mut r).unwrap().as_deref(), Some("a"));
        assert_eq!(read_line_bounded(&mut r).unwrap().as_deref(), Some("bb"));
        assert_eq!(read_line_bounded(&mut r).unwrap().as_deref(), Some("ccc"));
        assert_eq!(read_line_bounded(&mut r).unwrap(), None);

        let big = vec![b'x'; MAX_LINE + 1];
        let mut r = BufReader::new(&big[..]);
        assert!(matches!(read_line_bounded(&mut r), Err(LineError::Oversized)));
    }

    #[test]
    fn result_fields_roundtrip() {
        let r = ExecResult {
            stdout: "verdict\nline two\n".into(),
            exit_code: 1,
            artifacts: vec![("aut".into(), b"des (0, 1, 2)\n".to_vec())],
            cache_hit: true,
        };
        let mut s = String::from("{\"ok\": true");
        push_result_fields(&mut s, &r);
        s.push('}');
        let v = parse(&s).unwrap();
        assert_eq!(v.get("exit_code").unwrap().as_u64(), Some(1));
        assert_eq!(v.get("cached"), Some(&JsonValue::Bool(true)));
        assert_eq!(v.get("stdout").unwrap().as_str(), Some("verdict\nline two\n"));
        let arts = parse_artifacts(v.get("artifacts").unwrap());
        assert_eq!(arts, r.artifacts);
    }
}
