//! bb-telemetry: the daemon's flight recorder and metrics HTTP listener.
//!
//! Two consumers of the live `bb-obs` event stream beyond the watch hub:
//!
//! * [`FlightRecorder`] — a bounded ring of rendered events per in-flight
//!   job. When a job dies badly (fails, is cancelled, or ends
//!   inconclusive) the ring is persisted atomically into the serve
//!   directory (`flight/job-<id>.ndjson`, schema [`FLIGHT_SCHEMA`]) so the
//!   3am post-mortem has the job's last events even though nobody was
//!   watching. Retrieval: `bbv jobs dump <id>` / the `dump` protocol op.
//! * [`spawn_metrics_listener`] — a minimal HTTP/1.0 responder serving the
//!   Prometheus text exposition on `GET /metrics`
//!   (`bbv serve --metrics-addr HOST:PORT`); the bound address is
//!   published to [`METRICS_ADDR_FILE`] so port 0 works in tests and CI.
//!
//! Since the process has a single global event sink slot, [`TeeSink`]
//! composes the hub and the recorder into one sink.

use crate::hub::WatchHub;
use bb_obs::ring::RingBuffer;
use bb_obs::{EventSink, ObsEvent};
use std::collections::HashMap;
use std::io::{self, BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener};
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Schema tag on the first line of every flight dump.
pub const FLIGHT_SCHEMA: &str = "bb-flight/v1";

/// Subdirectory of the serve dir holding persisted flight dumps.
pub const FLIGHT_DIR: &str = "flight";

/// Discovery file (the bound metrics address) inside the serve directory.
pub const METRICS_ADDR_FILE: &str = "serve.metrics-addr";

/// Events retained per job (oldest dropped first).
const RING_CAP: usize = 256;

/// Per-job telemetry: the event ring plus the latest phase/progress pulse
/// (for `stats`' jobs array, hence `bbv top`).
struct JobTelemetry {
    ring: RingBuffer,
    phase: String,
    states: u64,
    transitions: u64,
}

impl JobTelemetry {
    fn new() -> JobTelemetry {
        JobTelemetry {
            ring: RingBuffer::new(RING_CAP),
            phase: String::new(),
            states: 0,
            transitions: 0,
        }
    }
}

/// The latest phase + heartbeat progress of one job, as `stats` reports it.
#[derive(Debug, Clone, Default)]
pub struct JobPulse {
    /// Innermost span or heartbeat stage last seen (`explore`, `bisim`, …).
    pub phase: String,
    /// States from the last heartbeat.
    pub states: u64,
    /// Transitions from the last heartbeat.
    pub transitions: u64,
}

/// Bounded per-job event recorder; an [`EventSink`] installed (via
/// [`TeeSink`]) for the daemon's lifetime.
pub struct FlightRecorder {
    started: Instant,
    jobs: Mutex<HashMap<u64, JobTelemetry>>,
}

impl Default for FlightRecorder {
    fn default() -> Self {
        FlightRecorder::new()
    }
}

impl FlightRecorder {
    /// An empty recorder; timestamps in dumps are µs since this call.
    pub fn new() -> FlightRecorder {
        FlightRecorder {
            started: Instant::now(),
            jobs: Mutex::new(HashMap::new()),
        }
    }

    /// The latest phase/progress pulse of `job`, if it has emitted events.
    pub fn pulse(&self, job: u64) -> Option<JobPulse> {
        let jobs = self.jobs.lock().unwrap_or_else(|e| e.into_inner());
        jobs.get(&job).map(|t| JobPulse {
            phase: t.phase.clone(),
            states: t.states,
            transitions: t.transitions,
        })
    }

    /// Renders `job`'s ring as an NDJSON dump: a header line (schema, job,
    /// event/drop counts) followed by one line per retained event, each
    /// prefixed with its ring sequence number and µs timestamp. Returns
    /// `None` when the job never emitted an event.
    pub fn dump_json(&self, job: u64) -> Option<String> {
        let jobs = self.jobs.lock().unwrap_or_else(|e| e.into_inner());
        let t = jobs.get(&job)?;
        let mut out = String::with_capacity(t.ring.len() * 96 + 128);
        out.push_str(&format!(
            "{{\"schema\": \"{FLIGHT_SCHEMA}\", \"job\": {job}, \"events\": {}, \"dropped\": {}}}\n",
            t.ring.len(),
            t.ring.dropped()
        ));
        for e in t.ring.entries() {
            // Rendered lines are complete objects starting with '{'; splice
            // the ring metadata in front of the first member.
            out.push_str(&format!("{{\"seq\": {}, \"t_us\": {}, {}", e.seq, e.t_us, &e.line[1..]));
            out.push('\n');
        }
        Some(out)
    }

    /// Drops `job`'s telemetry (terminal state reached, dump persisted or
    /// not needed) so memory stays bounded by the in-flight job count.
    pub fn forget(&self, job: u64) {
        self.jobs
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .remove(&job);
    }
}

impl EventSink for FlightRecorder {
    fn obs_event(&self, job: u64, ev: &ObsEvent<'_>) {
        let t_us = self.started.elapsed().as_micros() as u64;
        let line = ev.render_json(job);
        let mut jobs = self.jobs.lock().unwrap_or_else(|e| e.into_inner());
        let t = jobs.entry(job).or_insert_with(JobTelemetry::new);
        match ev {
            ObsEvent::SpanBegin { name } => {
                t.phase = (*name).to_string();
            }
            ObsEvent::Heartbeat { stage, states, transitions } => {
                t.phase = (*stage).to_string();
                t.states = *states;
                t.transitions = *transitions;
            }
            _ => {}
        }
        t.ring.push(t_us, line);
    }
}

/// Composes the watch hub and the flight recorder into the single
/// process-global event sink slot.
pub struct TeeSink {
    /// Live `watch` fan-out.
    pub hub: Arc<WatchHub>,
    /// Per-job flight recorder.
    pub recorder: Arc<FlightRecorder>,
}

impl EventSink for TeeSink {
    fn obs_event(&self, job: u64, ev: &ObsEvent<'_>) {
        self.recorder.obs_event(job, ev);
        self.hub.obs_event(job, ev);
    }
}

/// The persisted dump path for `job` under the serve `dir`.
pub fn dump_path(dir: &Path, job: u64) -> PathBuf {
    dir.join(FLIGHT_DIR).join(format!("job-{job}.ndjson"))
}

/// Atomically persists `dump` (an NDJSON document from
/// [`FlightRecorder::dump_json`]) for `job` under the serve `dir`.
pub fn persist_dump(dir: &Path, job: u64, dump: &str) -> io::Result<PathBuf> {
    let path = dump_path(dir, job);
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent)?;
    }
    bb_persist::write_atomic(&path, dump.as_bytes())?;
    Ok(path)
}

/// Reads the persisted dump for `job` from the serve `dir`, if any.
pub fn read_dump(dir: &Path, job: u64) -> Option<String> {
    std::fs::read_to_string(dump_path(dir, job)).ok()
}

/// Binds `addr` and serves the Prometheus exposition produced by `render`
/// on `GET /metrics` from a detached thread (one short-lived connection at
/// a time — scrapes are rare and tiny). Publishes the bound address to
/// [`METRICS_ADDR_FILE`] in `dir` so `--metrics-addr 127.0.0.1:0` is
/// discoverable. Returns the bound address.
pub fn spawn_metrics_listener(
    addr: &str,
    dir: &Path,
    render: impl Fn() -> String + Send + 'static,
) -> io::Result<SocketAddr> {
    let listener = TcpListener::bind(addr)?;
    let bound = listener.local_addr()?;
    bb_persist::write_atomic(&dir.join(METRICS_ADDR_FILE), bound.to_string().as_bytes())?;
    std::thread::spawn(move || {
        for stream in listener.incoming() {
            let Ok(stream) = stream else { continue };
            let _ = handle_http(stream, &render);
        }
    });
    Ok(bound)
}

/// Answers one HTTP request: `GET /metrics` → 200 with the exposition,
/// anything else → 404. HTTP/1.0 semantics, connection closed after.
fn handle_http(stream: std::net::TcpStream, render: &impl Fn() -> String) -> io::Result<()> {
    stream.set_read_timeout(Some(std::time::Duration::from_secs(5)))?;
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut request = String::new();
    reader.read_line(&mut request)?;
    // Drain headers so the peer's send completes before we close.
    let mut header = String::new();
    while reader.read_line(&mut header)? > 2 {
        header.clear();
    }
    let mut writer = stream;
    let path = request.split_whitespace().nth(1).unwrap_or("");
    if request.starts_with("GET ") && (path == "/metrics" || path == "/metrics/") {
        let body = render();
        write!(
            writer,
            "HTTP/1.0 200 OK\r\nContent-Type: text/plain; version=0.0.4; charset=utf-8\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
            body.len()
        )?;
    } else {
        let body = "not found; try /metrics\n";
        write!(
            writer,
            "HTTP/1.0 404 Not Found\r\nContent-Type: text/plain\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
            body.len()
        )?;
    }
    writer.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Read as _;
    use std::net::TcpStream;

    #[test]
    fn recorder_keeps_phase_and_bounded_events() {
        let rec = FlightRecorder::new();
        rec.obs_event(4, &ObsEvent::SpanBegin { name: "explore" });
        rec.obs_event(
            4,
            &ObsEvent::Heartbeat { stage: "bisim", states: 100, transitions: 200 },
        );
        for i in 0..(RING_CAP as u64 + 10) {
            rec.obs_event(4, &ObsEvent::Diag { msg: &format!("m{i}") });
        }
        let pulse = rec.pulse(4).expect("job has telemetry");
        assert_eq!(pulse.phase, "bisim");
        assert_eq!(pulse.states, 100);
        let dump = rec.dump_json(4).expect("dump renders");
        let mut lines = dump.lines();
        let header = bb_obs::json::parse(lines.next().unwrap()).unwrap();
        assert_eq!(header.get("schema").unwrap().as_str(), Some(FLIGHT_SCHEMA));
        assert_eq!(header.get("events").unwrap().as_u64(), Some(RING_CAP as u64));
        assert_eq!(header.get("dropped").unwrap().as_u64(), Some(12));
        for line in lines {
            let v = bb_obs::json::parse(line).expect("event line parses");
            assert!(v.get("seq").unwrap().as_u64().is_some());
            assert_eq!(v.get("job").unwrap().as_u64(), Some(4));
        }
        rec.forget(4);
        assert!(rec.pulse(4).is_none());
        assert!(rec.dump_json(4).is_none());
    }

    #[test]
    fn dump_round_trips_through_persistence() {
        let dir = std::env::temp_dir().join(format!("bb-flight-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let rec = FlightRecorder::new();
        rec.obs_event(9, &ObsEvent::Diag { msg: "last words" });
        let dump = rec.dump_json(9).unwrap();
        let path = persist_dump(&dir, 9, &dump).unwrap();
        assert!(path.starts_with(&dir));
        assert_eq!(read_dump(&dir, 9).as_deref(), Some(dump.as_str()));
        assert!(read_dump(&dir, 10).is_none());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn metrics_listener_serves_and_404s() {
        let dir = std::env::temp_dir().join(format!("bb-mlisten-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let bound =
            spawn_metrics_listener("127.0.0.1:0", &dir, || "# HELP x y\n".to_string()).unwrap();
        let published = std::fs::read_to_string(dir.join(METRICS_ADDR_FILE)).unwrap();
        assert_eq!(published.trim(), bound.to_string());

        let fetch = |path: &str| -> String {
            let mut s = TcpStream::connect(bound).unwrap();
            write!(s, "GET {path} HTTP/1.0\r\nHost: x\r\n\r\n").unwrap();
            let mut out = String::new();
            s.read_to_string(&mut out).unwrap();
            out
        };
        let ok = fetch("/metrics");
        assert!(ok.starts_with("HTTP/1.0 200"), "{ok}");
        assert!(ok.contains("text/plain"));
        assert!(ok.ends_with("# HELP x y\n"), "{ok}");
        let missing = fetch("/other");
        assert!(missing.starts_with("HTTP/1.0 404"), "{missing}");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
