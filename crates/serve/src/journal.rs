//! The daemon's crash-safe job journal.
//!
//! An append-only NDJSON file (`serve.journal`) in the serve directory,
//! one checksummed record per line:
//!
//! ```text
//! bbj1 <fnv64-hex> <json>
//! ```
//!
//! where the FNV-64 covers the JSON bytes. Records are `submit` (job id,
//! priority, full spec), `done` and `cancel`; the pending queue at any
//! instant is exactly the submits without a matching done/cancel, so a
//! killed daemon re-materializes its queue on restart by replaying the
//! file. Appends are flushed and fsynced before the client sees the
//! submit reply — an acknowledged job survives SIGKILL.
//!
//! Decoding is total, in the bb-persist spirit: a bad magic, checksum
//! mismatch, unparseable JSON or torn final line (the `journal-write`
//! fault aborts mid-append) ends the replay at that record; everything
//! before it is trusted, everything after recomputes as fresh submits.

use crate::spec::JobSpec;
use bb_lts::snapshot::fnv1a;
use bb_obs::json::{parse, JsonValue};
use std::fmt::Write as _;
use std::fs::{File, OpenOptions};
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::sync::Mutex;

/// Journal file name inside the serve directory.
pub const JOURNAL_FILE: &str = "serve.journal";

/// Line magic; bump on any record-format change.
const MAGIC: &str = "bbj1";

/// Append handle to a serve journal.
#[derive(Debug)]
pub struct Journal {
    file: Mutex<File>,
}

/// One replayed journal record.
#[derive(Debug, Clone, PartialEq)]
pub enum Record {
    /// A job entered the queue.
    Submit {
        /// Daemon-assigned job id.
        job: u64,
        /// Scheduling priority.
        priority: i64,
        /// The full job spec.
        spec: JobSpec,
    },
    /// The job left the queue with a result.
    Done {
        /// Job id.
        job: u64,
    },
    /// The job was cancelled while queued.
    Cancel {
        /// Job id.
        job: u64,
    },
}

/// The queue state recovered from a journal replay.
#[derive(Debug, Default)]
pub struct Replay {
    /// Unfinished submits in submission order.
    pub pending: Vec<(u64, i64, JobSpec)>,
    /// One past the highest job id seen (the restart's first fresh id).
    pub next_id: u64,
    /// Journal records decoded by the replay (submits + dones + cancels),
    /// reported by `stats` so operators can see restart provenance.
    pub records: u64,
}

impl Journal {
    /// Opens (appending) the journal in `dir`, creating it if missing.
    pub fn open(dir: &Path) -> io::Result<Journal> {
        std::fs::create_dir_all(dir)?;
        let file = OpenOptions::new()
            .create(true)
            .append(true)
            .open(Self::path(dir))?;
        Ok(Journal {
            file: Mutex::new(file),
        })
    }

    /// The journal path inside `dir`.
    pub fn path(dir: &Path) -> PathBuf {
        dir.join(JOURNAL_FILE)
    }

    /// Appends one record and makes it durable (flush + fsync) before
    /// returning. The `journal-write` fault tears the line mid-append and
    /// aborts, modelling a crash with a half-written tail.
    fn append(&self, json: &str) -> io::Result<()> {
        let mut line = String::with_capacity(json.len() + 24);
        let _ = writeln!(line, "{MAGIC} {:016x} {json}", fnv1a(0, json.as_bytes()));
        let mut f = self.file.lock().unwrap_or_else(|e| e.into_inner());
        if bb_obs::fault::enabled() && bb_obs::fault::hit("journal-write") {
            let torn = &line.as_bytes()[..line.len() / 2];
            let _ = f.write_all(torn);
            let _ = f.flush();
            let _ = f.sync_data();
            std::process::abort();
        }
        let start = std::time::Instant::now();
        f.write_all(line.as_bytes())?;
        f.flush()?;
        let out = f.sync_data();
        bb_obs::hot::JOURNAL_FSYNC_US.record(start.elapsed().as_micros() as u64);
        out
    }

    /// Records a job admission. Must complete before the submit reply.
    pub fn record_submit(&self, job: u64, priority: i64, spec: &JobSpec) -> io::Result<()> {
        self.append(&format!(
            "{{\"t\": \"submit\", \"job\": {job}, \"priority\": {priority}, \"spec\": {}}}",
            spec.to_json()
        ))
    }

    /// Records a job completion (any exit code).
    pub fn record_done(&self, job: u64) -> io::Result<()> {
        self.append(&format!("{{\"t\": \"done\", \"job\": {job}}}"))
    }

    /// Records a queued-job cancellation.
    pub fn record_cancel(&self, job: u64) -> io::Result<()> {
        self.append(&format!("{{\"t\": \"cancel\", \"job\": {job}}}"))
    }
}

/// Decodes one journal line; `None` ends the replay (torn or corrupt).
fn decode_line(line: &str) -> Option<Record> {
    let rest = line.strip_prefix(MAGIC)?.strip_prefix(' ')?;
    let (sum_hex, json) = rest.split_once(' ')?;
    let sum = u64::from_str_radix(sum_hex, 16).ok()?;
    if sum != fnv1a(0, json.as_bytes()) {
        return None;
    }
    let v = parse(json).ok()?;
    let job = v.get("job").and_then(JsonValue::as_u64)?;
    match v.get("t").and_then(JsonValue::as_str)? {
        "submit" => {
            let priority = match v.get("priority") {
                Some(JsonValue::Num(n)) if n.fract() == 0.0 => *n as i64,
                _ => return None,
            };
            let spec = JobSpec::from_json(v.get("spec")?).ok()?;
            Some(Record::Submit { job, priority, spec })
        }
        "done" => Some(Record::Done { job }),
        "cancel" => Some(Record::Cancel { job }),
        _ => None,
    }
}

/// Replays the journal in `dir` (missing file = empty replay). Stops at
/// the first undecodable record — everything after a torn line is
/// unreachable anyway, because appends are sequential and fsynced.
pub fn replay(dir: &Path) -> Replay {
    let mut out = Replay { pending: Vec::new(), next_id: 1, records: 0 };
    let Ok(text) = std::fs::read_to_string(Journal::path(dir)) else {
        return out;
    };
    for line in text.lines() {
        let Some(rec) = decode_line(line) else {
            bb_obs::diag!("serve: journal replay stopped at a torn/corrupt record");
            break;
        };
        out.records += 1;
        match rec {
            Record::Submit { job, priority, spec } => {
                out.next_id = out.next_id.max(job + 1);
                out.pending.push((job, priority, spec));
            }
            Record::Done { job } | Record::Cancel { job } => {
                out.next_id = out.next_id.max(job + 1);
                out.pending.retain(|(j, _, _)| *j != job);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("bb-journal-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    fn spec(alg: &str) -> JobSpec {
        JobSpec { algorithm: alg.into(), ..JobSpec::default() }
    }

    #[test]
    fn replay_recovers_pending_in_submit_order() {
        let d = dir("order");
        let j = Journal::open(&d).unwrap();
        j.record_submit(1, 0, &spec("treiber")).unwrap();
        j.record_submit(2, 5, &spec("ms-queue")).unwrap();
        j.record_submit(3, 0, &spec("ccas")).unwrap();
        j.record_done(1).unwrap();
        j.record_cancel(3).unwrap();
        let r = replay(&d);
        assert_eq!(r.next_id, 4);
        assert_eq!(r.records, 5, "three submits + done + cancel all decode");
        assert_eq!(r.pending.len(), 1);
        assert_eq!(r.pending[0].0, 2);
        assert_eq!(r.pending[0].1, 5);
        assert_eq!(r.pending[0].2.algorithm, "ms-queue");
        let _ = std::fs::remove_dir_all(&d);
    }

    #[test]
    fn missing_journal_is_an_empty_replay() {
        let r = replay(Path::new("/nonexistent/serve-journal-test"));
        assert!(r.pending.is_empty());
        assert_eq!(r.next_id, 1);
    }

    #[test]
    fn torn_tail_ends_the_replay_without_losing_the_prefix() {
        let d = dir("torn");
        let j = Journal::open(&d).unwrap();
        j.record_submit(1, 0, &spec("treiber")).unwrap();
        j.record_submit(2, 0, &spec("ms-queue")).unwrap();
        // A crash mid-append leaves a half line with no newline.
        let mut f = OpenOptions::new().append(true).open(Journal::path(&d)).unwrap();
        f.write_all(b"bbj1 00ff00ff00ff00ff {\"t\": \"do").unwrap();
        drop(f);
        let r = replay(&d);
        assert_eq!(r.pending.len(), 2, "both acknowledged submits survive");
        let _ = std::fs::remove_dir_all(&d);
    }

    #[test]
    fn corrupt_checksum_ends_the_replay() {
        let d = dir("sum");
        let j = Journal::open(&d).unwrap();
        j.record_submit(1, 0, &spec("treiber")).unwrap();
        j.record_done(1).unwrap();
        let mut text = std::fs::read_to_string(Journal::path(&d)).unwrap();
        // Flip a byte inside the second record's JSON payload.
        let flip = text.rfind("done").unwrap();
        text.replace_range(flip..flip + 4, "dxne");
        std::fs::write(Journal::path(&d), &text).unwrap();
        let r = replay(&d);
        assert_eq!(r.pending.len(), 1, "the done record must not be trusted");
        let _ = std::fs::remove_dir_all(&d);
    }
}
