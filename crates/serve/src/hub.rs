//! The watch hub: fans live `bb-obs` events out to subscribed clients.
//!
//! The hub is the daemon's [`EventSink`]: installed process-wide once at
//! startup, it receives every span, diagnostic and heartbeat emitted from
//! a *job-tagged* thread (workers tag themselves with the job id before
//! running; see `bb_obs::events`) and forwards each as one NDJSON line to
//! every connection currently `watch`ing that job. Jobs with no watchers
//! cost one hash lookup per event.
//!
//! Slow-consumer policy: subscriber sockets get a short write timeout and
//! any write error (including timeout and a mid-`watch` disconnect) drops
//! that subscriber on the spot — a stalled client can delay a worker by at
//! most one timeout, never wedge it.

use bb_obs::{EventSink, ObsEvent};
use std::collections::HashMap;
use std::io::Write;
use std::net::TcpStream;
use std::sync::Mutex;
use std::time::Duration;

/// Write timeout for subscriber sockets.
const SUB_WRITE_TIMEOUT: Duration = Duration::from_secs(2);

struct Subscriber {
    token: u64,
    stream: TcpStream,
}

/// Fan-out registry of `watch` subscribers, keyed by job id.
#[derive(Default)]
pub struct WatchHub {
    subs: Mutex<HashMap<u64, Vec<Subscriber>>>,
    next_token: Mutex<u64>,
}

impl WatchHub {
    /// An empty hub.
    pub fn new() -> WatchHub {
        WatchHub::default()
    }

    /// Registers `stream` (a `try_clone` of the watching connection) for
    /// `job`'s events; returns the token for [`unsubscribe`](Self::unsubscribe).
    pub fn subscribe(&self, job: u64, stream: TcpStream) -> u64 {
        let _ = stream.set_write_timeout(Some(SUB_WRITE_TIMEOUT));
        let token = {
            let mut t = self.next_token.lock().unwrap_or_else(|e| e.into_inner());
            *t += 1;
            *t
        };
        self.subs
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .entry(job)
            .or_default()
            .push(Subscriber { token, stream });
        token
    }

    /// Removes one subscriber (the watching connection is done or gone).
    pub fn unsubscribe(&self, job: u64, token: u64) {
        let mut subs = self.subs.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(list) = subs.get_mut(&job) {
            list.retain(|s| s.token != token);
            if list.is_empty() {
                subs.remove(&job);
            }
        }
    }

    /// Writes `line` + `\n` to every subscriber of `job`, shedding any
    /// whose write fails.
    ///
    /// Never emits through `bb_obs` here: the hub *is* the installed sink,
    /// so a `diag!` from a tagged worker thread would re-enter
    /// [`Self::obs_event`] and self-deadlock on the subscriber lock.
    /// Shedding goes straight to stderr instead.
    fn broadcast(&self, job: u64, line: &str) {
        let shed = {
            let mut subs = self.subs.lock().unwrap_or_else(|e| e.into_inner());
            let Some(list) = subs.get_mut(&job) else { return };
            let before = list.len();
            list.retain_mut(|s| {
                s.stream
                    .write_all(line.as_bytes())
                    .and_then(|()| s.stream.write_all(b"\n"))
                    .is_ok()
            });
            let shed = before - list.len();
            if list.is_empty() {
                subs.remove(&job);
            }
            shed
        };
        if shed > 0 {
            eprintln!("serve: dropped {shed} slow/dead watcher(s) of job {job}");
        }
    }

    /// Whether `job` currently has watchers (used to skip rendering).
    fn has_watchers(&self, job: u64) -> bool {
        self.subs
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .contains_key(&job)
    }
}

impl EventSink for WatchHub {
    fn obs_event(&self, job: u64, ev: &ObsEvent<'_>) {
        if !self.has_watchers(job) {
            return;
        }
        self.broadcast(job, &ev.render_json(job));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{BufRead, BufReader};
    use std::net::TcpListener;

    /// A loopback socket pair.
    fn pair() -> (TcpStream, TcpStream) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = TcpStream::connect(addr).unwrap();
        let (server, _) = listener.accept().unwrap();
        (client, server)
    }

    #[test]
    fn events_reach_only_the_watched_job() {
        let hub = WatchHub::new();
        let (client, server) = pair();
        let token = hub.subscribe(7, server);
        hub.obs_event(7, &ObsEvent::Diag { msg: "hello" });
        hub.obs_event(8, &ObsEvent::Diag { msg: "other job" });
        hub.obs_event(
            7,
            &ObsEvent::Heartbeat { stage: "explore", states: 10, transitions: 20 },
        );
        hub.unsubscribe(7, token);
        hub.obs_event(7, &ObsEvent::Diag { msg: "after unsubscribe" });
        drop(hub);
        let mut lines = BufReader::new(client).lines();
        let first = lines.next().unwrap().unwrap();
        let v = bb_obs::json::parse(&first).unwrap();
        assert_eq!(v.get("event").unwrap().as_str(), Some("diag"));
        assert_eq!(v.get("job").unwrap().as_u64(), Some(7));
        let second = lines.next().unwrap().unwrap();
        let v = bb_obs::json::parse(&second).unwrap();
        assert_eq!(v.get("event").unwrap().as_str(), Some("heartbeat"));
        assert_eq!(v.get("states").unwrap().as_u64(), Some(10));
        assert!(lines.next().is_none(), "socket closed after hub drop");
    }

    #[test]
    fn dead_watchers_are_shed_not_fatal() {
        let hub = WatchHub::new();
        let (client, server) = pair();
        hub.subscribe(3, server);
        drop(client);
        // The first write may land in the OS buffer; the second must fail
        // and shed the subscriber either way.
        hub.obs_event(3, &ObsEvent::Diag { msg: "x" });
        hub.obs_event(3, &ObsEvent::Diag { msg: "y" });
        hub.obs_event(3, &ObsEvent::Diag { msg: "z" });
        assert!(!hub.has_watchers(3) || {
            // Platform-dependent: allow one extra buffered write before
            // the error surfaces.
            hub.obs_event(3, &ObsEvent::Diag { msg: "w" });
            hub.obs_event(3, &ObsEvent::Diag { msg: "v" });
            !hub.has_watchers(3)
        });
    }

    #[test]
    fn span_end_renders_fields() {
        let hub = WatchHub::new();
        let (client, server) = pair();
        hub.subscribe(1, server);
        let fields = vec![
            ("states".to_string(), bb_obs::Value::U64(42)),
            ("stage".to_string(), bb_obs::Value::Str("bisim".into())),
        ];
        hub.obs_event(1, &ObsEvent::SpanEnd { name: "explore", wall_us: 123, fields: &fields });
        drop(hub);
        let mut lines = BufReader::new(client).lines();
        let v = bb_obs::json::parse(&lines.next().unwrap().unwrap()).unwrap();
        assert_eq!(v.get("event").unwrap().as_str(), Some("span_end"));
        assert_eq!(v.get("wall_us").unwrap().as_u64(), Some(123));
        let f = v.get("fields").unwrap();
        assert_eq!(f.get("states").unwrap().as_u64(), Some(42));
        assert_eq!(f.get("stage").unwrap().as_str(), Some("bisim"));
    }
}
