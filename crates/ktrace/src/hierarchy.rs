//! The `≡ₖ` hierarchy of Definition 3.1.

use crate::subset::{determinize, dfa_partition, observation_ids, TooLarge};
use bb_lts::{Lts, LtsBuilder, StateId};
use std::collections::HashMap;
use std::fmt;

/// Strong-bisimulation pre-quotient.
///
/// Strong bisimilarity refines `≡ₖ` for every `k`, and colored languages
/// (the per-level refinement step) factor through the strong quotient: a
/// state and its block have the same colored language under any coloring
/// that is a union of blocks. Since level 0 is the universal coloring, every
/// level of the hierarchy computed on the quotient, pulled back along the
/// block map, equals the level computed on the original system — while the
/// subset constructions run on a (often much) smaller automaton.
///
/// Unlike the Definition 5.1 quotient, *all* transitions are kept (a
/// τ-step between equivalent states becomes a block-level self-loop), so
/// stuttering structure is preserved exactly.
struct StrongQuotient {
    lts: Lts,
    /// Block of each original state.
    block_of: Vec<u32>,
}

fn strong_quotient(lts: &Lts) -> StrongQuotient {
    let p = bb_bisim::partition(lts, bb_bisim::Equivalence::Strong);
    let mut b = LtsBuilder::new();
    b.add_states(p.num_blocks());
    for (src, act, dst) in lts.iter_transitions() {
        let aid = b.intern_action(lts.action(act).clone());
        b.add_transition(
            StateId(p.block_of(src).0),
            aid,
            StateId(p.block_of(dst).0),
        );
    }
    let init = StateId(p.block_of(lts.initial()).0);
    StrongQuotient {
        lts: b.build(init),
        block_of: p.assignment().iter().map(|b| b.0).collect(),
    }
}

/// Budget for the subset constructions underlying the hierarchy.
#[derive(Debug, Clone, Copy)]
pub struct KtraceLimits {
    /// Maximum number of deterministic subset-states per level.
    pub max_det_states: usize,
}

impl Default for KtraceLimits {
    fn default() -> Self {
        KtraceLimits {
            max_det_states: 2_000_000,
        }
    }
}

/// Error raised when a k-trace computation exceeds its limits.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum KtraceError {
    /// The determinization grew beyond [`KtraceLimits::max_det_states`].
    TooLarge {
        /// The level `k` at which the construction exploded.
        level: usize,
        /// Number of deterministic states constructed before giving up.
        det_states: usize,
    },
}

impl fmt::Display for KtraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            KtraceError::TooLarge { level, det_states } => write!(
                f,
                "determinization for ≡{level} exceeded the budget ({det_states} subset states)"
            ),
        }
    }
}

impl std::error::Error for KtraceError {}

/// Computes one level of the hierarchy: given the coloring `Cₖ` (as a dense
/// class assignment), returns `Cₖ₊₁`.
fn refine_level(
    lts: &Lts,
    obs_ids: &[u32],
    color: &[u32],
    level: usize,
    limits: KtraceLimits,
) -> Result<Vec<u32>, KtraceError> {
    let dfa = determinize(lts, color, obs_ids, limits.max_det_states).map_err(
        |TooLarge { det_states }| KtraceError::TooLarge { level, det_states },
    )?;
    let dfa_blocks = dfa_partition(&dfa);
    // New class = (previous class, colored-language class).
    let mut ids: HashMap<(u32, u32), u32> = HashMap::new();
    let mut next = Vec::with_capacity(lts.num_states());
    for s in lts.states() {
        let key = (
            color[s.index()],
            dfa_blocks[dfa.seed_of[s.index()] as usize],
        );
        let fresh = ids.len() as u32;
        next.push(*ids.entry(key).or_insert(fresh));
    }
    Ok(next)
}

/// Computes the partition of `lts` into `≡ₖ` classes (`k ≥ 1`).
///
/// `≡₁` is ordinary trace-set equality; each further level refines the
/// previous one by comparing colored traces (Definition 3.1).
///
/// # Errors
///
/// Returns [`KtraceError::TooLarge`] if a subset construction explodes.
pub fn ktrace_partition(
    lts: &Lts,
    k: usize,
    limits: KtraceLimits,
) -> Result<Vec<u32>, KtraceError> {
    assert!(k >= 1, "the hierarchy starts at ≡1");
    let sq = strong_quotient(lts);
    let obs_ids = observation_ids(&sq.lts);
    let mut color = vec![0u32; sq.lts.num_states()];
    for level in 1..=k {
        color = refine_level(&sq.lts, &obs_ids, &color, level, limits)?;
    }
    // Pull the quotient-level classes back to the original states.
    Ok(sq
        .block_of
        .iter()
        .map(|&b| color[b as usize])
        .collect())
}

/// Are `a` and `b` k-trace equivalent (`a ≡ₖ b`)?
///
/// # Errors
///
/// Returns [`KtraceError::TooLarge`] if a subset construction explodes.
pub fn ktrace_equivalent(
    lts: &Lts,
    a: StateId,
    b: StateId,
    k: usize,
    limits: KtraceLimits,
) -> Result<bool, KtraceError> {
    let p = ktrace_partition(lts, k, limits)?;
    Ok(p[a.index()] == p[b.index()])
}

/// Computes the *cap* of the system (Section III-B): the smallest `k` such
/// that `≡ₖ` equals `≡ₖ₊₁`, bounded by `max_k`.
///
/// Returns `Ok(None)` if the hierarchy has not stabilized within `max_k`
/// levels (cannot happen for `max_k ≥ |S|`).
///
/// # Errors
///
/// Returns [`KtraceError::TooLarge`] if a subset construction explodes.
pub fn cap(lts: &Lts, max_k: usize, limits: KtraceLimits) -> Result<Option<usize>, KtraceError> {
    let sq = strong_quotient(lts);
    let lts = &sq.lts;
    let obs_ids = observation_ids(lts);
    let mut color = vec![0u32; lts.num_states()];
    let mut num_classes = 0usize;
    // color after the loop body at iteration k is the ≡ₖ coloring.
    for level in 1..=max_k + 1 {
        let next = refine_level(lts, &obs_ids, &color, level, limits)?;
        let next_classes = (*next.iter().max().unwrap_or(&0) + 1) as usize;
        if level > 1 && next_classes == num_classes {
            return Ok(Some(level - 1));
        }
        num_classes = next_classes;
        color = next;
    }
    Ok(None)
}

/// Classification of the τ-transitions of a system by the hierarchy — the
/// data behind Table I.
#[derive(Debug, Clone, Default)]
pub struct TauEdgeClassification {
    /// τ-edges `s --τ--> r` with `s ≡₁ r` but `s ≢₂ r` — the signature of
    /// intricate (non-fixed-LP) interleavings.
    pub eq1_neq2: Vec<(StateId, StateId)>,
    /// τ-edges with `s ≢₁ r` — ordinary effectful internal steps.
    pub neq1: Vec<(StateId, StateId)>,
    /// Total number of τ-edges inspected.
    pub total_tau_edges: usize,
}

impl TauEdgeClassification {
    /// `true` iff the system has a τ-edge that is 1-trace-equivalent but not
    /// 2-trace-equivalent (third column of Table I).
    pub fn has_eq1_neq2(&self) -> bool {
        !self.eq1_neq2.is_empty()
    }

    /// `true` iff the system has a 1-trace-inequivalent τ-edge (fourth
    /// column of Table I).
    pub fn has_neq1(&self) -> bool {
        !self.neq1.is_empty()
    }
}

/// Classifies every τ-edge of `lts` against `≡₁` and `≡₂` (Table I).
///
/// # Errors
///
/// Returns [`KtraceError::TooLarge`] if a subset construction explodes.
pub fn classify_tau_edges(
    lts: &Lts,
    limits: KtraceLimits,
) -> Result<TauEdgeClassification, KtraceError> {
    let sq = strong_quotient(lts);
    let obs_ids = observation_ids(&sq.lts);
    let c0 = vec![0u32; sq.lts.num_states()];
    let c1 = refine_level(&sq.lts, &obs_ids, &c0, 1, limits)?;
    let c2 = refine_level(&sq.lts, &obs_ids, &c1, 2, limits)?;
    let mut out = TauEdgeClassification::default();
    for (src, act, dst) in lts.iter_transitions() {
        if lts.is_visible(act) {
            continue;
        }
        out.total_tau_edges += 1;
        let (bs, bd) = (
            sq.block_of[src.index()] as usize,
            sq.block_of[dst.index()] as usize,
        );
        if c1[bs] != c1[bd] {
            out.neq1.push((src, dst));
        } else if c2[bs] != c2[bd] {
            out.eq1_neq2.push((src, dst));
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bb_lts::{Action, LtsBuilder, ThreadId};

    fn limits() -> KtraceLimits {
        KtraceLimits::default()
    }

    /// The paper's motivating shape (Fig. 6, simplified):
    ///
    /// s1 --τ--> s2 (then only `empty`)
    /// s1 --τ--> s3; s3 --τ--> s4 --τ--> s5 where s4 enables `val` too.
    ///
    /// Then T¹(s1) = T¹(s3) but the intermediate s4 distinguishes them at
    /// level 2.
    fn fig6_shape() -> (Lts, StateId, StateId) {
        let mut b = LtsBuilder::new();
        let s1 = b.add_state();
        let s2 = b.add_state();
        let s3 = b.add_state();
        let s4 = b.add_state();
        let s5 = b.add_state();
        let sink = b.add_state();
        let tau = b.intern_action(Action::tau(ThreadId(1)));
        let x = b.intern_action(Action::ret(ThreadId(2), "Deq", Some(-1)));
        let y = b.intern_action(Action::ret(ThreadId(2), "Deq", Some(20)));
        let z = b.intern_action(Action::call(ThreadId(1), "Enq", Some(30)));
        // T¹ classes: A = {ε,x,y,z} for s1 and s3; B = {ε,x,y} for s4;
        // C = {ε,x} for s2 and s5.
        //
        // s1 jumps directly from class A to class C (s1 --τ--> s2), while
        // s3 can only reach class C by stuttering through the distinct
        // intermediate class B (s3 --τ--> s4 --τ--> s5). Hence s1 ≡₁ s3 but
        // s1 ≢₂ s3, mirroring the branching potential of Fig. 6.
        b.add_transition(s1, tau, s2);
        b.add_transition(s1, tau, s3);
        b.add_transition(s2, x, sink);
        b.add_transition(s3, tau, s4);
        b.add_transition(s3, z, sink);
        b.add_transition(s4, y, sink);
        b.add_transition(s4, tau, s5);
        b.add_transition(s5, x, sink);
        (b.build(s1), s1, s3)
    }

    #[test]
    fn level1_equal_level2_different() {
        let (lts, s1, s3) = fig6_shape();
        assert!(ktrace_equivalent(&lts, s1, s3, 1, limits()).unwrap());
        assert!(!ktrace_equivalent(&lts, s1, s3, 2, limits()).unwrap());
    }

    #[test]
    fn classification_finds_the_subtle_edge() {
        let (lts, _, _) = fig6_shape();
        let c = classify_tau_edges(&lts, limits()).unwrap();
        assert!(c.has_eq1_neq2());
        assert!(c.has_neq1());
        assert_eq!(c.total_tau_edges, 4);
    }

    /// On a system with fixed LPs (pure sequence), only ≢₁ edges exist.
    #[test]
    fn simple_system_has_no_higher_inequivalence() {
        let mut b = LtsBuilder::new();
        let s0 = b.add_state();
        let s1 = b.add_state();
        let s2 = b.add_state();
        let tau = b.intern_action(Action::tau(ThreadId(1)));
        let a = b.intern_action(Action::call(ThreadId(1), "a", None));
        b.add_transition(s0, tau, s1); // effectful: enables a
        b.add_transition(s1, a, s2);
        let lts = b.build(s0);
        let c = classify_tau_edges(&lts, limits()).unwrap();
        assert!(!c.has_eq1_neq2());
        assert!(!c.has_neq1()); // this τ is inert (s0 ≡₁ s1: same traces)
    }

    #[test]
    fn effectful_tau_is_neq1() {
        // τ leading to a state with *different* traces.
        let mut b = LtsBuilder::new();
        let s0 = b.add_state();
        let s1 = b.add_state();
        let s2 = b.add_state();
        let s3 = b.add_state();
        let tau = b.intern_action(Action::tau(ThreadId(1)));
        let a = b.intern_action(Action::call(ThreadId(1), "a", None));
        let c = b.intern_action(Action::call(ThreadId(1), "b", None));
        b.add_transition(s0, a, s2);
        b.add_transition(s0, tau, s1);
        b.add_transition(s1, c, s3);
        let lts = b.build(s0);
        let cl = classify_tau_edges(&lts, limits()).unwrap();
        assert!(cl.has_neq1());
        assert!(!cl.has_eq1_neq2());
    }

    #[test]
    fn hierarchy_is_monotone_and_caps() {
        let (lts, _, _) = fig6_shape();
        let p1 = ktrace_partition(&lts, 1, limits()).unwrap();
        let p2 = ktrace_partition(&lts, 2, limits()).unwrap();
        let classes = |p: &Vec<u32>| *p.iter().max().unwrap() as usize + 1;
        assert!(classes(&p2) >= classes(&p1));
        let cap_k = cap(&lts, 10, limits()).unwrap();
        assert!(cap_k.is_some());
        assert!(cap_k.unwrap() >= 2);
    }

    /// Theorem 4.3: the fixpoint of the hierarchy equals branching
    /// bisimilarity.
    #[test]
    fn fixpoint_matches_branching_bisimulation() {
        use bb_lts::{random_lts, RandomLtsConfig};
        for seed in 0..15u64 {
            let lts = random_lts(
                seed,
                RandomLtsConfig {
                    num_states: 12,
                    num_transitions: 20,
                    num_visible_letters: 2,
                    tau_percent: 50,
                },
            );
            let k = cap(&lts, 30, limits()).unwrap().expect("cap exists");
            let pk = ktrace_partition(&lts, k, limits()).unwrap();
            let pb = bb_bisim::partition(&lts, bb_bisim::Equivalence::Branching);
            for a in lts.states() {
                for b in lts.states() {
                    assert_eq!(
                        pk[a.index()] == pk[b.index()],
                        pb.same_block(a, b),
                        "seed {seed}: states {a:?} {b:?} disagree"
                    );
                }
            }
        }
    }
}
