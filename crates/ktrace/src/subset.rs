//! Colored subset construction and deterministic-automaton minimization.
//!
//! Given an LTS and a coloring (a partition of its states), the *colored
//! language* of a state is the set of sequences of letters
//!
//! * `(a, color-of-target)` for a visible action `a`, and
//! * `(τ, color-of-target)` for a τ-step that changes color,
//!
//! while τ-steps between same-colored states are silent (stuttering). Two
//! states of equal color have the same set of k-traces at the next level of
//! the Definition 3.1 hierarchy iff they have the same colored language.
//!
//! Colored languages are prefix-closed, so equality is decided by
//! determinizing (subset construction over the stuttering closure) and
//! computing the coarsest partition of the deterministic automaton in which
//! related states enable the same letters into related states.

use bb_lts::{Lts, StateId};
use std::collections::HashMap;

/// A letter of the colored alphabet: `obs` is `0` for τ, otherwise an
/// observation id (1-based); `color` is the color of the target state.
pub(crate) type Letter = u64;

pub(crate) fn letter(obs: u32, color: u32) -> Letter {
    ((obs as u64) << 32) | color as u64
}

/// Per-action observation ids: `0` for τ, `1..` per distinct observation.
pub(crate) fn observation_ids(lts: &Lts) -> Vec<u32> {
    let mut by_obs: HashMap<bb_lts::Observation, u32> = HashMap::new();
    let mut ids = Vec::with_capacity(lts.num_actions());
    for a in lts.actions() {
        match a.observation() {
            None => ids.push(0),
            Some(obs) => {
                let next = by_obs.len() as u32 + 1;
                ids.push(*by_obs.entry(obs).or_insert(next));
            }
        }
    }
    ids
}

/// The determinized colored automaton, with one designated subset per
/// original state (the determinization of that state's colored language).
pub(crate) struct ColoredDfa {
    /// Deterministic transitions: for each det-state, sorted `(letter, target)`.
    pub succ: Vec<Vec<(Letter, u32)>>,
    /// For each original state, the det-state of its stuttering closure.
    pub seed_of: Vec<u32>,
}

/// Error raised when the subset construction exceeds its budget.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TooLarge {
    /// Number of deterministic states constructed before giving up.
    pub det_states: usize,
}

/// Stuttering closure of `set` w.r.t. `color`: extends with all states
/// reachable via τ-steps between same-colored states.
fn stutter_closure(lts: &Lts, color: &[u32], set: &mut Vec<StateId>) {
    set.sort_unstable();
    set.dedup();
    let mut stack: Vec<StateId> = set.clone();
    while let Some(s) = stack.pop() {
        for t in lts.successors(s) {
            if !lts.is_visible(t.action) && color[s.index()] == color[t.target.index()] {
                if let Err(pos) = set.binary_search(&t.target) {
                    set.insert(pos, t.target);
                    stack.push(t.target);
                }
            }
        }
    }
}

/// Builds the determinized colored automaton of `lts` under `color`,
/// seeding the construction with the closure of every single state.
pub(crate) fn determinize(
    lts: &Lts,
    color: &[u32],
    obs_ids: &[u32],
    max_det_states: usize,
) -> Result<ColoredDfa, TooLarge> {
    let mut ids: HashMap<Vec<StateId>, u32> = HashMap::new();
    let mut sets: Vec<Vec<StateId>> = Vec::new();
    let mut succ: Vec<Vec<(Letter, u32)>> = Vec::new();
    let mut seed_of = Vec::with_capacity(lts.num_states());
    let mut worklist: Vec<u32> = Vec::new();

    let intern = |set: Vec<StateId>,
                      ids: &mut HashMap<Vec<StateId>, u32>,
                      sets: &mut Vec<Vec<StateId>>,
                      succ: &mut Vec<Vec<(Letter, u32)>>,
                      worklist: &mut Vec<u32>|
     -> u32 {
        if let Some(&id) = ids.get(&set) {
            return id;
        }
        let id = sets.len() as u32;
        sets.push(set.clone());
        succ.push(Vec::new());
        ids.insert(set, id);
        worklist.push(id);
        id
    };

    for s in lts.states() {
        let mut set = vec![s];
        stutter_closure(lts, color, &mut set);
        let id = intern(set, &mut ids, &mut sets, &mut succ, &mut worklist);
        seed_of.push(id);
    }

    while let Some(d) = worklist.pop() {
        if sets.len() > max_det_states {
            return Err(TooLarge {
                det_states: sets.len(),
            });
        }
        // Group targets by letter.
        let mut by_letter: HashMap<Letter, Vec<StateId>> = HashMap::new();
        for &s in &sets[d as usize] {
            for t in lts.successors(s) {
                let target_color = color[t.target.index()];
                let obs = obs_ids[t.action.index()];
                if obs == 0 {
                    if color[s.index()] == target_color {
                        continue; // stuttering, already in the closure
                    }
                    by_letter
                        .entry(letter(0, target_color))
                        .or_default()
                        .push(t.target);
                } else {
                    by_letter
                        .entry(letter(obs, target_color))
                        .or_default()
                        .push(t.target);
                }
            }
        }
        let mut row: Vec<(Letter, u32)> = Vec::with_capacity(by_letter.len());
        for (l, mut targets) in by_letter {
            stutter_closure(lts, color, &mut targets);
            let id = intern(targets, &mut ids, &mut sets, &mut succ, &mut worklist);
            row.push((l, id));
        }
        row.sort_unstable();
        succ[d as usize] = row;
    }

    Ok(ColoredDfa { succ, seed_of })
}

/// Coarsest partition of the deterministic automaton under letter-wise
/// successor-block equality (language equality for prefix-closed,
/// all-accepting deterministic automata).
pub(crate) fn dfa_partition(dfa: &ColoredDfa) -> Vec<u32> {
    let n = dfa.succ.len();
    let mut block = vec![0u32; n];
    let mut num_blocks = 1usize;
    loop {
        let mut ids: HashMap<Vec<(Letter, u32)>, u32> = HashMap::new();
        let mut next = Vec::with_capacity(n);
        for d in 0..n {
            let sig: Vec<(Letter, u32)> = dfa.succ[d]
                .iter()
                .map(|&(l, t)| (l, block[t as usize]))
                .collect();
            let fresh = ids.len() as u32;
            next.push(*ids.entry(sig).or_insert(fresh));
        }
        let new_blocks = ids.len();
        block = next;
        if new_blocks == num_blocks {
            return block;
        }
        num_blocks = new_blocks;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bb_lts::{Action, LtsBuilder, ThreadId};

    /// Two states with the same plain language but different colored
    /// languages once colors distinguish their targets.
    #[test]
    fn coloring_changes_equivalence() {
        // s0 --a--> s2 ; s1 --a--> s3. Plain language: both {a}.
        let mut b = LtsBuilder::new();
        let s0 = b.add_state();
        let s1 = b.add_state();
        let s2 = b.add_state();
        let s3 = b.add_state();
        let a = b.intern_action(Action::call(ThreadId(1), "a", None));
        b.add_transition(s0, a, s2);
        b.add_transition(s1, a, s3);
        let lts = b.build(s0);
        let obs = observation_ids(&lts);

        // Uniform coloring: s0 and s1 equivalent.
        let dfa = determinize(&lts, &[0, 0, 0, 0], &obs, 1000).unwrap();
        let p = dfa_partition(&dfa);
        assert_eq!(p[dfa.seed_of[0] as usize], p[dfa.seed_of[1] as usize]);

        // Color s2 and s3 apart: seeds now differ.
        let dfa = determinize(&lts, &[0, 0, 1, 2], &obs, 1000).unwrap();
        let p = dfa_partition(&dfa);
        assert_ne!(p[dfa.seed_of[0] as usize], p[dfa.seed_of[1] as usize]);
    }

    #[test]
    fn stuttering_tau_is_silent() {
        // s0 --τ--> s1 --a--> s2 with uniform colors: s0 and s1 equal.
        let mut b = LtsBuilder::new();
        let s0 = b.add_state();
        let s1 = b.add_state();
        let s2 = b.add_state();
        let tau = b.intern_action(Action::tau(ThreadId(1)));
        let a = b.intern_action(Action::call(ThreadId(1), "a", None));
        b.add_transition(s0, tau, s1);
        b.add_transition(s1, a, s2);
        let lts = b.build(s0);
        let obs = observation_ids(&lts);
        let dfa = determinize(&lts, &[0, 0, 0], &obs, 1000).unwrap();
        let p = dfa_partition(&dfa);
        assert_eq!(p[dfa.seed_of[0] as usize], p[dfa.seed_of[1] as usize]);
    }

    #[test]
    fn size_limit_is_enforced() {
        let mut b = LtsBuilder::new();
        let states: Vec<_> = (0..8).map(|_| b.add_state()).collect();
        let a = b.intern_action(Action::call(ThreadId(1), "a", None));
        // Dense nondeterminism to force many subsets.
        for &s in &states {
            for &t in &states {
                b.add_transition(s, a, t);
            }
        }
        let lts = b.build(states[0]);
        let obs = observation_ids(&lts);
        let r = determinize(&lts, &(0..8).collect::<Vec<u32>>(), &obs, 4);
        assert!(r.is_err());
    }
}
