//! k-trace sets and k-trace equivalence (Section III of the paper).
//!
//! Definition 3.1 builds a hierarchy of equivalences: `≡₁` is ordinary
//! trace-set equality; `≡ₖ₊₁` compares *colored traces* — visible-action
//! sequences that also record the `≡ₖ`-class of every state passed through,
//! with stuttering τ-segments (consecutive states of the same class)
//! collapsed. Max-trace equivalence `≡` (the limit of the hierarchy)
//! coincides with branching bisimilarity (Theorem 4.3), and the paper's
//! Table I uses the hierarchy to measure how intricate an algorithm's
//! interleavings are: algorithms with non-fixed linearization points exhibit
//! τ-transitions `s --τ--> r` with `s ≡₁ r` but `s ≢₂ r`.
//!
//! The implementation computes each level as a partition: given the coloring
//! `Cₖ`, two states are `≡ₖ₊₁` iff they have the same *colored language*,
//! decided by a τ-stuttering-aware subset construction followed by partition
//! refinement on the (deterministic) subset automaton.

mod hierarchy;
mod subset;

pub use hierarchy::{
    cap, classify_tau_edges, ktrace_equivalent, ktrace_partition, KtraceError, KtraceLimits,
    TauEdgeClassification,
};
