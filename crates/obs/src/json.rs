//! Minimal JSON support: an escaping writer used by the exporters, and a
//! small recursive-descent parser used by tests (and the `phases` bench
//! table) to validate exported documents without external dependencies.
//!
//! The parser accepts the JSON this crate emits plus ordinary RFC 8259
//! documents; it keeps object keys in document order so schema tests can
//! assert on layout.

use std::fmt::Write as _;

/// Append `s` to `out` as a JSON string literal (quotes + escapes).
pub fn write_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A parsed JSON value. Object keys keep document order.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<JsonValue>),
    Obj(Vec<(String, JsonValue)>),
}

impl JsonValue {
    pub fn as_object(&self) -> Option<&[(String, JsonValue)]> {
        match self {
            JsonValue::Obj(m) => Some(m),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Arr(a) => Some(a),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::Num(n) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as u64),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Object member lookup.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        self.as_object()?
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
    }

    /// Serializes the value back to one-line JSON (object keys keep their
    /// document order, so `parse(render(v)) == v`).
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out);
        out
    }

    fn render_into(&self, out: &mut String) {
        match self {
            JsonValue::Null => out.push_str("null"),
            JsonValue::Bool(b) => {
                let _ = write!(out, "{b}");
            }
            JsonValue::Num(n) if n.fract() == 0.0 && n.abs() < 9.0e15 => {
                let _ = write!(out, "{}", *n as i64);
            }
            JsonValue::Num(n) => {
                let _ = write!(out, "{n}");
            }
            JsonValue::Str(s) => write_str(out, s),
            JsonValue::Arr(a) => {
                out.push('[');
                for (i, v) in a.iter().enumerate() {
                    if i > 0 {
                        out.push_str(", ");
                    }
                    v.render_into(out);
                }
                out.push(']');
            }
            JsonValue::Obj(m) => {
                out.push('{');
                for (i, (k, v)) in m.iter().enumerate() {
                    if i > 0 {
                        out.push_str(", ");
                    }
                    write_str(out, k);
                    out.push_str(": ");
                    v.render_into(out);
                }
                out.push('}');
            }
        }
    }
}

/// Parse a complete JSON document. Returns a readable error with the byte
/// offset on malformed input.
pub fn parse(input: &str) -> Result<JsonValue, String> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing data at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected '{}' at byte {}",
                b as char, self.pos
            ))
        }
    }

    fn literal(&mut self, word: &str, v: JsonValue) -> Result<JsonValue, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<JsonValue, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(JsonValue::Str(self.string()?)),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(format!("unexpected input at byte {}", self.pos)),
        }
    }

    fn object(&mut self) -> Result<JsonValue, String> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Obj(members));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<JsonValue, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let hex = std::str::from_utf8(hex).map_err(|e| e.to_string())?;
                            let code =
                                u32::from_str_radix(hex, 16).map_err(|e| e.to_string())?;
                            // Surrogate pairs don't occur in our output;
                            // map lone surrogates to the replacement char.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so byte
                    // boundaries are valid).
                    let rest = &self.bytes[self.pos..];
                    let s = unsafe { std::str::from_utf8_unchecked(rest) };
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<JsonValue, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(JsonValue::Num)
            .map_err(|_| format!("bad number '{text}' at byte {start}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_escapes() {
        let mut out = String::new();
        write_str(&mut out, "a\"b\\c\nd\tτ");
        assert_eq!(out, "\"a\\\"b\\\\c\\nd\\tτ\"");
        assert_eq!(parse(&out).unwrap(), JsonValue::Str("a\"b\\c\nd\tτ".into()));
    }

    #[test]
    fn parses_document() {
        let doc = r#"{"a": [1, 2.5, -3], "b": {"c": null, "d": true}, "e": "x"}"#;
        let v = parse(doc).unwrap();
        assert_eq!(v.get("a").unwrap().as_array().unwrap().len(), 3);
        assert_eq!(v.get("b").unwrap().get("c"), Some(&JsonValue::Null));
        assert_eq!(v.get("e").unwrap().as_str(), Some("x"));
        assert_eq!(
            v.get("a").unwrap().as_array().unwrap()[0].as_u64(),
            Some(1)
        );
    }

    #[test]
    fn rejects_malformed() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{\"a\" 1}").is_err());
        assert!(parse("12 34").is_err());
        assert!(parse("").is_err());
    }

    #[test]
    fn control_chars_escaped() {
        let mut out = String::new();
        write_str(&mut out, "\u{1}");
        assert_eq!(out, "\"\\u0001\"");
        assert_eq!(parse(&out).unwrap(), JsonValue::Str("\u{1}".into()));
    }
}
