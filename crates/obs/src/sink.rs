//! Checkpoint sink indirection.
//!
//! `bb-persist` owns checkpoint files, but the data worth checkpointing is
//! produced deep inside `bb-bisim`'s refinement loops — and `bb-bisim`
//! cannot depend on `bb-persist` (the persistence layer needs `Partition`
//! and would create a cycle). The seam lives here, in the one crate every
//! layer already depends on: refinement engines talk to an abstract
//! [`PersistSink`] in pre-encoded bytes, and `bb-persist` installs the
//! concrete implementation at session start.
//!
//! The protocol mirrors how refinement actually runs. Each governed
//! refinement call announces itself with [`PersistSink::begin_refine`],
//! keyed by a structural fingerprint of the system being refined; the sink
//! may answer with a previously checkpointed `(round, partition)` payload
//! to seed from. After every completed round the engine calls
//! [`PersistSink::offer_round`] with a *lazy* encoder — the sink decides
//! whether this round is a checkpoint boundary (`--checkpoint-every N`)
//! and only then pays for encoding and the atomic file write.
//!
//! When no sink is installed (`--checkpoint` not given) the cost is one
//! relaxed atomic load per round.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};

/// Receiver of checkpointable refinement progress. Implemented by
/// `bb-persist`; called by the refinement engines in `bb-bisim`.
///
/// All payloads are opaque byte strings encoded by `bb-bisim`'s snapshot
/// codec: the sink stores and returns them without interpretation, so the
/// two crates only share this trait and the fingerprint convention.
pub trait PersistSink: Send + Sync {
    /// Announces the start of a governed refinement call over a system with
    /// the given structural `fingerprint`. Returns a previously stored
    /// round payload to seed from, or `None` to start from the universal
    /// partition. The sink must only return a payload recorded under the
    /// same fingerprint **and** call position — seeding from any other
    /// partition would converge to a wrong fixpoint.
    fn begin_refine(&self, fingerprint: u64) -> Option<Vec<u8>>;

    /// Offers the state after one completed refinement round. `round` is
    /// 1-based; `stable` marks the fixpoint round. `encode` produces the
    /// round payload on demand — implementations should only invoke it when
    /// they actually intend to persist this round.
    fn offer_round(&self, fingerprint: u64, round: u64, stable: bool, encode: &mut dyn FnMut() -> Vec<u8>);
}

static INSTALLED: AtomicBool = AtomicBool::new(false);
static SINK: Mutex<Option<Arc<dyn PersistSink>>> = Mutex::new(None);

/// Installs `sink` as the process-wide checkpoint receiver (replacing any
/// previous one). Called by `bb-persist` when a checkpoint dir is configured.
pub fn set_persist_sink(sink: Arc<dyn PersistSink>) {
    *SINK.lock().unwrap_or_else(|e| e.into_inner()) = Some(sink);
    INSTALLED.store(true, Ordering::Release);
}

/// Removes the installed sink (end of session / tests).
pub fn clear_persist_sink() {
    INSTALLED.store(false, Ordering::Release);
    *SINK.lock().unwrap_or_else(|e| e.into_inner()) = None;
}

/// The installed sink, if any. One relaxed load when none is installed.
pub fn persist_sink() -> Option<Arc<dyn PersistSink>> {
    if !INSTALLED.load(Ordering::Acquire) {
        return None;
    }
    SINK.lock().unwrap_or_else(|e| e.into_inner()).clone()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    struct Recorder {
        begins: AtomicU64,
        rounds: AtomicU64,
        seed: Option<Vec<u8>>,
    }

    impl PersistSink for Recorder {
        fn begin_refine(&self, _fingerprint: u64) -> Option<Vec<u8>> {
            self.begins.fetch_add(1, Ordering::Relaxed);
            self.seed.clone()
        }

        fn offer_round(
            &self,
            _fingerprint: u64,
            round: u64,
            _stable: bool,
            encode: &mut dyn FnMut() -> Vec<u8>,
        ) {
            // Persist every other round: the lazy encoder must only run then.
            if round.is_multiple_of(2) {
                let _ = encode();
                self.rounds.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    #[test]
    fn install_roundtrip_and_lazy_encode() {
        // Serialize against other tests touching the global sink.
        let rec = Arc::new(Recorder {
            begins: AtomicU64::new(0),
            rounds: AtomicU64::new(0),
            seed: Some(vec![1, 2, 3]),
        });
        set_persist_sink(rec.clone());
        let sink = persist_sink().expect("sink installed");
        assert_eq!(sink.begin_refine(42), Some(vec![1, 2, 3]));
        let mut encodes = 0;
        for round in 1..=4 {
            sink.offer_round(42, round, round == 4, &mut || {
                encodes += 1;
                Vec::new()
            });
        }
        assert_eq!(encodes, 2, "encoder runs only on persisted rounds");
        assert_eq!(rec.begins.load(Ordering::Relaxed), 1);
        assert_eq!(rec.rounds.load(Ordering::Relaxed), 2);
        clear_persist_sink();
        assert!(persist_sink().is_none());
    }
}
