//! Hot-path instruments: statically allocated counters, gauges, and
//! log2-bucket histograms.
//!
//! These live in the innermost loops (signature recomputation, τ-closure
//! construction, ample-set selection, symmetry canonicalization, the
//! parallel shard merge), so the design rule is: **one relaxed load when
//! recording is off, one relaxed RMW when it is on**. No locks, no
//! allocation, no branches on anything but the global enable flag.
//!
//! Every instrument is registered in a static table so `install` can reset
//! them and `finish` can snapshot them without the hot paths knowing.

use std::sync::atomic::{AtomicU64, Ordering};

use crate::enabled;

// ---------------------------------------------------------------------------
// Counter
// ---------------------------------------------------------------------------

/// A monotonically increasing event counter.
pub struct Counter {
    name: &'static str,
    cell: AtomicU64,
}

impl Counter {
    pub const fn new(name: &'static str) -> Self {
        Counter {
            name,
            cell: AtomicU64::new(0),
        }
    }

    /// Bump by `n`. No-op (one relaxed load) when recording is off.
    #[inline]
    pub fn add(&self, n: u64) {
        if enabled() {
            self.cell.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Bump by one.
    #[inline]
    pub fn incr(&self) {
        self.add(1);
    }

    pub fn get(&self) -> u64 {
        self.cell.load(Ordering::Relaxed)
    }

    fn reset(&self) {
        self.cell.store(0, Ordering::Relaxed);
    }
}

// ---------------------------------------------------------------------------
// Gauge
// ---------------------------------------------------------------------------

/// A last-value instrument (e.g. current BFS frontier depth). Also tracks
/// the high-water mark so the summary can report the peak.
pub struct Gauge {
    name: &'static str,
    cell: AtomicU64,
    peak: AtomicU64,
}

impl Gauge {
    pub const fn new(name: &'static str) -> Self {
        Gauge {
            name,
            cell: AtomicU64::new(0),
            peak: AtomicU64::new(0),
        }
    }

    /// Set the current value. No-op when recording is off.
    #[inline]
    pub fn set(&self, v: u64) {
        if enabled() {
            self.cell.store(v, Ordering::Relaxed);
            self.peak.fetch_max(v, Ordering::Relaxed);
        }
    }

    pub fn get(&self) -> u64 {
        self.cell.load(Ordering::Relaxed)
    }

    pub fn peak(&self) -> u64 {
        self.peak.load(Ordering::Relaxed)
    }

    fn reset(&self) {
        self.cell.store(0, Ordering::Relaxed);
        self.peak.store(0, Ordering::Relaxed);
    }
}

// ---------------------------------------------------------------------------
// Histogram
// ---------------------------------------------------------------------------

/// Number of log2 buckets: bucket 0 holds the value 0, bucket `k` (k ≥ 1)
/// holds values `v` with `2^(k-1) <= v < 2^k`; the last bucket is a
/// catch-all for anything larger.
const HIST_BUCKETS: usize = 33;

/// A lock-free power-of-two histogram for size distributions (symmetry
/// orbit sizes, per-shard imbalance percentages).
pub struct Histogram {
    name: &'static str,
    buckets: [AtomicU64; HIST_BUCKETS],
    max: AtomicU64,
    sum: AtomicU64,
}

impl Histogram {
    pub const fn new(name: &'static str) -> Self {
        #[allow(clippy::declare_interior_mutable_const)]
        const ZERO: AtomicU64 = AtomicU64::new(0);
        Histogram {
            name,
            buckets: [ZERO; HIST_BUCKETS],
            max: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }

    /// Record one observation. No-op when recording is off.
    #[inline]
    pub fn record(&self, v: u64) {
        if !enabled() {
            return;
        }
        let bucket = if v == 0 {
            0
        } else {
            ((64 - v.leading_zeros()) as usize).min(HIST_BUCKETS - 1)
        };
        self.buckets[bucket].fetch_add(1, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
    }

    /// Snapshot to (upper-bound, count) pairs for non-empty buckets.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut buckets = Vec::new();
        let mut count = 0;
        for (i, b) in self.buckets.iter().enumerate() {
            let n = b.load(Ordering::Relaxed);
            if n > 0 {
                // Upper bound (exclusive) of the bucket: 2^i, with bucket 0
                // meaning "exactly zero" (bound 1).
                let le = if i == 0 { 1 } else { 1u64 << i.min(63) };
                buckets.push((le, n));
                count += n;
            }
        }
        HistogramSnapshot {
            count,
            max: self.max.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            buckets,
        }
    }

    fn reset(&self) {
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
        self.max.store(0, Ordering::Relaxed);
        self.sum.store(0, Ordering::Relaxed);
    }
}

/// Materialized histogram contents: total count, observed max, summed
/// observations, and `(exclusive_upper_bound, count)` pairs for non-empty
/// log2 buckets.
#[derive(Debug, Clone)]
pub struct HistogramSnapshot {
    pub count: u64,
    pub max: u64,
    pub sum: u64,
    pub buckets: Vec<(u64, u64)>,
}

// ---------------------------------------------------------------------------
// The workspace instrument registry
// ---------------------------------------------------------------------------

/// States whose branching-bisimulation signature was recomputed, summed
/// over refinement rounds (the dominant cost of partition refinement).
pub static SIG_STATE_RECOMPUTES: Counter = Counter::new("bisim.signature_recomputes");
/// Completed signature-refinement rounds across all partition calls.
pub static SIG_ROUNDS: Counter = Counter::new("bisim.rounds");
/// States on the incremental refinement worklist at round start (moved
/// states plus their predecessors, closed as the equivalence requires),
/// summed over rounds. Full-mode rounds count every state.
pub static SIG_DIRTY_STATES: Counter = Counter::new("bisim.dirty_states");
/// Signature-interning lookups that found the signature already in the
/// hash-consing arena (the split then compares two `u32`s, no re-hash).
pub static SIG_CACHE_HITS: Counter = Counter::new("bisim.sig_cache_hits");
/// Refinement rounds that reused the inert-τ SCC condensation unchanged
/// (no τ-edge in any component changed inertness).
pub static SIG_CONDENSATION_REUSES: Counter = Counter::new("bisim.condensation_reuses");
/// τ-closure (condensed SCC reachability) constructions.
pub static TAU_CLOSURE_BUILDS: Counter = Counter::new("lts.tau_closure_builds");
/// States where a singleton ample set was taken (POR hit).
pub static AMPLE_HITS: Counter = Counter::new("reduce.ample_hits");
/// States fully expanded because no ample candidate existed (POR miss).
pub static AMPLE_MISSES: Counter = Counter::new("reduce.ample_misses");
/// Ample candidates discarded by the C3/divergence proviso.
pub static AMPLE_FALLBACKS: Counter = Counter::new("reduce.ample_proviso_fallbacks");
/// States merged into a previously seen symmetry-canonical representative.
pub static SYM_MERGES: Counter = Counter::new("reduce.sym_merges");
/// States whose orbit exceeded the cap and were left uncanonicalized.
pub static SYM_SKIPS: Counter = Counter::new("reduce.sym_skips");
/// Product states expanded by the antichain trace-refinement check.
pub static REFINE_PRODUCT_STATES: Counter = Counter::new("refine.product_states");
/// Distinct spec-subset vectors interned by trace refinement.
pub static REFINE_SUBSETS: Counter = Counter::new("refine.spec_subsets");
/// Product states expanded by the Büchi LTL check.
pub static LTL_PRODUCT_STATES: Counter = Counter::new("ltl.product_states");
/// Checkpoint sections submitted to the persistence sink.
pub static CKPT_SECTIONS: Counter = Counter::new("persist.checkpoint_sections");
/// Bytes written by checkpoint persists (payloads, before framing).
pub static CKPT_BYTES: Counter = Counter::new("persist.checkpoint_bytes");
/// Pipeline stages that skipped work by consuming a checkpoint seed.
pub static CKPT_SEED_HITS: Counter = Counter::new("persist.seed_hits");
/// Result-cache lookups that replayed a stored entry.
pub static CACHE_HITS: Counter = Counter::new("persist.cache_hits");
/// Result-cache lookups that fell through to a recompute.
pub static CACHE_MISSES: Counter = Counter::new("persist.cache_misses");
/// Cache entries rejected by checksum/format validation (then recomputed).
pub static CACHE_CORRUPT: Counter = Counter::new("persist.cache_corrupt");
/// Faults fired by the deterministic `BB_FAULT` plan.
pub static FAULTS_INJECTED: Counter = Counter::new("fault.injected");
/// Transitions streamed from exploration straight into the fused
/// refinement pipeline (`--fuse`).
pub static FUSE_STREAMED_TRANSITIONS: Counter = Counter::new("fuse.streamed_transitions");
/// Cold state-arena segments written to the disk-spill tier (`--spill`).
pub static SPILL_SEGMENTS: Counter = Counter::new("compact.spill_segments");
/// Payload bytes written to the disk-spill tier (before framing).
pub static SPILL_BYTES: Counter = Counter::new("compact.spill_bytes");
/// Spilled segments reloaded from disk to answer a seen-set probe.
pub static SPILL_RELOADS: Counter = Counter::new("compact.spill_reloads");

/// Current BFS frontier depth (undiscovered tail of the exploration queue).
pub static EXPLORE_FRONTIER: Gauge = Gauge::new("explore.frontier_depth");
/// Frontier depth observed by the fused exploration sink at each level
/// boundary (`--fuse`).
pub static FUSE_FRONTIER: Gauge = Gauge::new("fuse.frontier_depth");
/// In-core bytes of the exploration's state store (seen-set arena or hash
/// store plus its index); the peak is the store's high-water mark.
pub static EXPLORE_STORE_BYTES: Gauge = Gauge::new("explore.store_bytes");
/// Stored-to-raw size of the compact state arena, in percent (prefix
/// compression plus varint framing; 100 = no compression).
pub static COMPACT_COMPRESSION_PCT: Gauge = Gauge::new("compact.compression_pct");

/// Symmetry orbit sizes searched during canonicalization.
pub static ORBIT_SIZE: Histogram = Histogram::new("reduce.sym.orbit_size");
/// Per-level shard imbalance in the parallel engine: `max_chunk * 100 /
/// mean_chunk` for each level fan-out (100 = perfectly balanced).
pub static SHARD_IMBALANCE: Histogram = Histogram::new("explore.shard_imbalance_pct");
/// Per-batch shard imbalance (member states) in the sharded incremental
/// refinement sweep: `max_chunk * 100 / mean_chunk` per fan-out.
pub static REFINE_SHARD_IMBALANCE: Histogram = Histogram::new("bisim.shard_imbalance_pct");
/// Journal append fsync latency (µs) in the serve daemon — the per-submit
/// durability cost on the admission path.
pub static JOURNAL_FSYNC_US: Histogram = Histogram::new("serve.journal_fsync_us");
/// Open-addressing probe lengths of the exploration seen-set index
/// (0 = direct hit; long tails indicate index pressure).
pub static SEEN_PROBE_LEN: Histogram = Histogram::new("explore.seen_probe_len");

static COUNTERS: [&Counter; 25] = [
    &SIG_STATE_RECOMPUTES,
    &SIG_ROUNDS,
    &SIG_DIRTY_STATES,
    &SIG_CACHE_HITS,
    &SIG_CONDENSATION_REUSES,
    &TAU_CLOSURE_BUILDS,
    &AMPLE_HITS,
    &AMPLE_MISSES,
    &AMPLE_FALLBACKS,
    &SYM_MERGES,
    &SYM_SKIPS,
    &REFINE_PRODUCT_STATES,
    &REFINE_SUBSETS,
    &LTL_PRODUCT_STATES,
    &CKPT_SECTIONS,
    &CKPT_BYTES,
    &CKPT_SEED_HITS,
    &CACHE_HITS,
    &CACHE_MISSES,
    &CACHE_CORRUPT,
    &FAULTS_INJECTED,
    &FUSE_STREAMED_TRANSITIONS,
    &SPILL_SEGMENTS,
    &SPILL_BYTES,
    &SPILL_RELOADS,
];

static GAUGES: [&Gauge; 4] = [
    &EXPLORE_FRONTIER,
    &FUSE_FRONTIER,
    &EXPLORE_STORE_BYTES,
    &COMPACT_COMPRESSION_PCT,
];

static HISTOGRAMS: [&Histogram; 5] = [
    &ORBIT_SIZE,
    &SHARD_IMBALANCE,
    &REFINE_SHARD_IMBALANCE,
    &JOURNAL_FSYNC_US,
    &SEEN_PROBE_LEN,
];

/// Reset every registered instrument (called by `install`).
pub(crate) fn reset_all() {
    for c in COUNTERS {
        c.reset();
    }
    for g in GAUGES {
        g.reset();
    }
    for h in HISTOGRAMS {
        h.reset();
    }
}

/// Snapshot all counters plus gauge peaks, including zeros, sorted by name.
pub(crate) fn counter_snapshot() -> Vec<(&'static str, u64)> {
    let mut out: Vec<(&'static str, u64)> = COUNTERS.iter().map(|c| (c.name, c.get())).collect();
    out.extend(GAUGES.iter().map(|g| (g.name, g.peak())));
    out.sort_unstable_by_key(|(name, _)| *name);
    out
}

/// Snapshot all non-empty histograms, sorted by name.
pub(crate) fn histogram_snapshot() -> Vec<(&'static str, HistogramSnapshot)> {
    let mut out: Vec<_> = HISTOGRAMS
        .iter()
        .map(|h| (h.name, h.snapshot()))
        .filter(|(_, s)| s.count > 0)
        .collect();
    out.sort_unstable_by_key(|(name, _)| *name);
    out
}

/// Current value of every registered counter, sorted by name. Public view
/// for exposition encoders (the daemon's `/metrics` endpoint).
pub fn counter_values() -> Vec<(&'static str, u64)> {
    let mut out: Vec<(&'static str, u64)> = COUNTERS.iter().map(|c| (c.name, c.get())).collect();
    out.sort_unstable_by_key(|(name, _)| *name);
    out
}

/// `(name, current, peak)` of every registered gauge, sorted by name.
pub fn gauge_values() -> Vec<(&'static str, u64, u64)> {
    let mut out: Vec<(&'static str, u64, u64)> =
        GAUGES.iter().map(|g| (g.name, g.get(), g.peak())).collect();
    out.sort_unstable_by_key(|(name, _, _)| *name);
    out
}

/// Snapshot of every registered histogram (including empty ones — an
/// exposition wants stable series), sorted by name.
pub fn histogram_values() -> Vec<(&'static str, HistogramSnapshot)> {
    let mut out: Vec<_> = HISTOGRAMS.iter().map(|h| (h.name, h.snapshot())).collect();
    out.sort_unstable_by_key(|(name, _)| *name);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_bucketing() {
        let h = Histogram::new("test");
        // Bypass the enable gate by poking buckets through record() with
        // recording forced on is not possible here; check the math instead.
        let bucket = |v: u64| -> usize {
            if v == 0 {
                0
            } else {
                ((64 - v.leading_zeros()) as usize).min(HIST_BUCKETS - 1)
            }
        };
        assert_eq!(bucket(0), 0);
        assert_eq!(bucket(1), 1);
        assert_eq!(bucket(2), 2);
        assert_eq!(bucket(3), 2);
        assert_eq!(bucket(4), 3);
        assert_eq!(bucket(1024), 11);
        assert_eq!(bucket(u64::MAX), HIST_BUCKETS - 1);
        let snap = h.snapshot();
        assert_eq!(snap.count, 0);
        assert!(snap.buckets.is_empty());
    }
}
