//! Deterministic fault injection for robustness tests.
//!
//! A *fault plan* is parsed once from the `BB_FAULT` environment variable:
//! a comma-separated list of `point:count` pairs, where `point` names an
//! instrumented site (see [`POINTS`]) and `count` selects which hit of
//! that site trips — the fault fires **exactly once**, on the `count`-th
//! time execution reaches the point. Because every instrumented site sits
//! on a deterministic code path (exploration and refinement are
//! bit-reproducible at any `--jobs`), a plan like
//! `BB_FAULT=mid-round:3` reproduces the same crash on every run, which
//! is what lets the kill/resume tests byte-diff a resumed run against an
//! uninterrupted one.
//!
//! The hot-path cost is one relaxed atomic load when `BB_FAULT` is unset
//! ([`enabled`]); sites therefore guard with
//! `fault::enabled() && fault::hit("...")`.
//!
//! This generalizes the `BB_SABOTAGE` hook from the benchmark harness
//! (which panics unconditionally on a case-name match) into a counted,
//! multi-point plan usable anywhere in the workspace.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, OnceLock};

/// The registry of instrumented fault points: `(name, what firing does)`.
/// Kept in one place so DESIGN.md and the tests can enumerate them.
pub const POINTS: &[(&str, &str)] = &[
    (
        "alloc-cap",
        "bb-lts Meter::add_memory returns a Memory exhaustion (budget trip)",
    ),
    (
        "mid-round",
        "bb-bisim refinement round panics (caught by run_isolated -> inconclusive)",
    ),
    (
        "round-abort",
        "bb-bisim refinement round aborts the process (hard crash; resume target)",
    ),
    (
        "checkpoint-write",
        "bb-persist atomic writer aborts after the temp file, before the rename",
    ),
    (
        "cache-read",
        "bb-persist cache lookup treats the entry as corrupt (recompute path)",
    ),
    (
        "journal-write",
        "bb-serve journal append aborts mid-line (torn tail; replay target)",
    ),
];

struct Plan {
    /// `point -> (trip_on_hit, hits_so_far, fired)`.
    counters: Mutex<HashMap<String, (u64, u64, bool)>>,
}

static ARMED: AtomicBool = AtomicBool::new(false);
static PLAN: OnceLock<Option<Plan>> = OnceLock::new();

fn plan() -> &'static Option<Plan> {
    PLAN.get_or_init(|| {
        let raw = std::env::var("BB_FAULT").ok()?;
        let mut counters = HashMap::new();
        for part in raw.split(',') {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            let (point, count) = part.split_once(':').unwrap_or((part, "1"));
            let n: u64 = count.parse().unwrap_or(1).max(1);
            counters.insert(point.to_string(), (n, 0, false));
        }
        if counters.is_empty() {
            return None;
        }
        ARMED.store(true, Ordering::Relaxed);
        Some(Plan {
            counters: Mutex::new(counters),
        })
    })
}

/// `true` when a fault plan is armed. One relaxed load after the first
/// call; hot paths guard their [`hit`] calls with this.
#[inline]
pub fn enabled() -> bool {
    if PLAN.get().is_none() {
        let _ = plan();
    }
    ARMED.load(Ordering::Relaxed)
}

/// Records one execution of the fault point `point` and returns `true`
/// exactly when this is the hit the plan arms it for. Unplanned points
/// always return `false`; a tripped point never fires twice.
pub fn hit(point: &str) -> bool {
    let Some(p) = plan() else { return false };
    let mut map = p.counters.lock().unwrap_or_else(|e| e.into_inner());
    let Some((trip_on, hits, fired)) = map.get_mut(point) else {
        return false;
    };
    if *fired {
        return false;
    }
    *hits += 1;
    if *hits == *trip_on {
        *fired = true;
        crate::hot::FAULTS_INJECTED.incr();
        eprintln!("[bb-fault] injected `{point}` (hit {hits})");
        return true;
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    // The plan is parsed from the process environment exactly once, so the
    // unit tests exercise the counter logic through a locally built Plan.
    fn local(plan_str: &str) -> Plan {
        let mut counters = HashMap::new();
        for part in plan_str.split(',') {
            let (point, count) = part.split_once(':').unwrap_or((part, "1"));
            counters.insert(point.to_string(), (count.parse().unwrap(), 0, false));
        }
        Plan {
            counters: Mutex::new(counters),
        }
    }

    fn local_hit(p: &Plan, point: &str) -> bool {
        let mut map = p.counters.lock().unwrap();
        let Some((trip_on, hits, fired)) = map.get_mut(point) else {
            return false;
        };
        if *fired {
            return false;
        }
        *hits += 1;
        if *hits == *trip_on {
            *fired = true;
            return true;
        }
        false
    }

    #[test]
    fn fires_exactly_on_the_nth_hit_and_only_once() {
        let p = local("mid-round:3");
        assert!(!local_hit(&p, "mid-round"));
        assert!(!local_hit(&p, "mid-round"));
        assert!(local_hit(&p, "mid-round"));
        assert!(!local_hit(&p, "mid-round"));
        assert!(!local_hit(&p, "mid-round"));
    }

    #[test]
    fn unplanned_points_never_fire() {
        let p = local("alloc-cap:1");
        assert!(!local_hit(&p, "cache-read"));
        assert!(local_hit(&p, "alloc-cap"));
    }

    #[test]
    fn multi_point_plans_are_independent() {
        let p = local("alloc-cap:1,cache-read:2");
        assert!(local_hit(&p, "alloc-cap"));
        assert!(!local_hit(&p, "cache-read"));
        assert!(local_hit(&p, "cache-read"));
    }

    #[test]
    fn registry_names_are_unique() {
        let mut names: Vec<&str> = POINTS.iter().map(|(n, _)| *n).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), POINTS.len());
    }

    #[test]
    fn env_free_process_has_no_plan() {
        // The test binary is run without BB_FAULT; the public API must be
        // a cheap no-op then.
        if std::env::var("BB_FAULT").is_err() {
            assert!(!enabled());
            assert!(!hit("mid-round"));
        }
    }
}
