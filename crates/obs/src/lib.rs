//! # bb-obs — structured observability for the verification pipeline
//!
//! A lightweight, std-only observability layer shared by every crate in the
//! workspace. It provides three things:
//!
//! 1. **Hierarchical phase spans** — [`span`] opens a named region
//!    (`explore`, `reduce`, `bisim`, `bisim.round`, `refine`, `ltl`, …) that
//!    records wall-clock and arbitrary `u64`/string fields. Parentage follows
//!    the per-thread open-span stack, so `bisim.round` spans nest under
//!    `bisim`, which nests under `lin`, and so on.
//! 2. **Hot-path instruments** — statically allocated [`hot::Counter`],
//!    [`hot::Gauge`], and [`hot::Histogram`] cells (relaxed atomics) that the
//!    inner loops bump unconditionally-cheaply: a single relaxed load when
//!    recording is off, one relaxed RMW when it is on.
//! 3. **Export** — [`finish`] snapshots the session into a [`Session`] that
//!    renders a single metrics JSON document ([`Session::metrics_json`]) or a
//!    per-event NDJSON trace stream ([`Session::trace_ndjson`]).
//!
//! ## Neutrality guarantee
//!
//! Nothing in this crate writes to stdout, and no instrumented code path may
//! branch on observability state in a way that changes verdicts, `.aut`
//! output, or stdout bytes. Heartbeats ([`heartbeat`]) and diagnostics
//! ([`diag`]) go to **stderr** only; metrics/trace go to files the caller
//! names. All timing lives in fields whose keys end in `_us` so tests can
//! mask them uniformly.
//!
//! ## Concurrency model
//!
//! Spans are opened and closed on orchestrating threads only (the pipeline
//! drivers); worker threads in the parallel engine never open spans — they
//! bump counters, which are atomic. The recorder itself is a global
//! `Mutex<Option<SessionState>>` touched only at span open/close and
//! diagnostics, which happen O(phases + rounds) times per run, never per
//! state.

pub mod events;
pub mod fault;
pub mod hot;
pub mod json;
pub mod prom;
pub mod ring;
pub mod sink;

pub use events::{clear_event_sink, set_event_sink, tag_job, EventSink, ObsEvent};
pub use sink::{clear_persist_sink, persist_sink, set_persist_sink, PersistSink};

use std::cell::RefCell;
use std::fmt;
use std::marker::PhantomData;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

// ---------------------------------------------------------------------------
// Global switches
// ---------------------------------------------------------------------------

/// Recording on/off. Fast-path gate for every instrument in the workspace.
static ENABLED: AtomicBool = AtomicBool::new(false);
/// Heartbeat lines on stderr.
static PROGRESS: AtomicBool = AtomicBool::new(false);
/// Silence `diag` stderr lines (they are still recorded when enabled).
static QUIET: AtomicBool = AtomicBool::new(false);

/// Process-wide monotonic clock base. Set once, never reset, so rate
/// limiting and session-relative timestamps survive install/finish cycles.
static PROC_START: OnceLock<Instant> = OnceLock::new();

fn now_us() -> u64 {
    let start = PROC_START.get_or_init(Instant::now);
    start.elapsed().as_micros() as u64
}

/// Is a recording session installed? One relaxed load — safe to call in hot
/// loops.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Is the `--progress` heartbeat on?
#[inline]
pub fn progress_enabled() -> bool {
    PROGRESS.load(Ordering::Relaxed)
}

/// Suppress (or restore) `diag` output on stderr. Independent of recording:
/// `--quiet` works with or without `--metrics`.
pub fn set_quiet(quiet: bool) {
    QUIET.store(quiet, Ordering::Relaxed);
}

/// Turn hot-instrument recording on (or off) *without* installing a
/// session. The serve daemon uses this: its counters and histograms must
/// accumulate for the process lifetime so the `/metrics` exposition has
/// data, but a recording session would interleave concurrent jobs. With
/// recording on and no session installed, [`span`]/[`diag`] find `STATE`
/// empty and record nothing — only the lock-free instruments tick.
pub fn set_recording(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

// ---------------------------------------------------------------------------
// Session state
// ---------------------------------------------------------------------------

/// A field value attached to a span or metadata entry.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    U64(u64),
    F64(f64),
    Str(String),
}

impl Value {
    /// Appends the JSON rendering of this value (public so the serve
    /// watch hub can serialize span fields without re-implementing it).
    pub fn write_json(&self, out: &mut String) {
        match self {
            Value::U64(v) => {
                out.push_str(&v.to_string());
            }
            Value::F64(v) => {
                if v.is_finite() {
                    out.push_str(&format!("{v}"));
                } else {
                    out.push_str("null");
                }
            }
            Value::Str(s) => json::write_str(out, s),
        }
    }
}

impl From<u64> for Value {
    fn from(v: u64) -> Self {
        Value::U64(v)
    }
}

impl From<usize> for Value {
    fn from(v: usize) -> Self {
        Value::U64(v as u64)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::F64(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_string())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}

/// One recorded span (a phase, or a sub-phase like a refinement round).
#[derive(Debug, Clone)]
pub struct SpanRecord {
    pub id: usize,
    pub parent: Option<usize>,
    pub name: String,
    pub start_us: u64,
    pub end_us: Option<u64>,
    pub fields: Vec<(String, Value)>,
}

impl SpanRecord {
    /// Wall-clock of the span in microseconds (0 if it never closed).
    pub fn wall_us(&self) -> u64 {
        self.end_us.map_or(0, |e| e.saturating_sub(self.start_us))
    }

    /// Look up a field by key.
    pub fn field(&self, key: &str) -> Option<&Value> {
        self.fields.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }
}

/// Ordered event log entry for the NDJSON trace stream.
#[derive(Debug, Clone)]
enum Event {
    Begin { span: usize, t_us: u64 },
    End { span: usize, t_us: u64 },
    Diag { msg: String, t_us: u64 },
}

#[derive(Debug, Default)]
struct SessionState {
    start_us: u64,
    spans: Vec<SpanRecord>,
    events: Vec<Event>,
}

static STATE: Mutex<Option<SessionState>> = Mutex::new(None);

thread_local! {
    /// Stack of open span ids on this thread; the top is the parent of the
    /// next span opened here.
    static SPAN_STACK: RefCell<Vec<usize>> = const { RefCell::new(Vec::new()) };
}

/// Configuration for [`install`].
#[derive(Debug, Clone, Default)]
pub struct ObsConfig {
    /// Emit a rate-limited heartbeat line on stderr (`--progress`).
    pub progress: bool,
    /// Silence `diag` stderr lines (`--quiet`).
    pub quiet: bool,
}

/// Install a fresh recording session, resetting all hot instruments.
///
/// Replaces any session already installed (its data is discarded).
pub fn install(cfg: ObsConfig) {
    let start = now_us();
    hot::reset_all();
    LAST_BEAT_US.store(0, Ordering::Relaxed);
    LAST_BEAT_STATES.store(0, Ordering::Relaxed);
    {
        let mut guard = STATE.lock().unwrap();
        *guard = Some(SessionState {
            start_us: start,
            spans: Vec::new(),
            events: Vec::new(),
        });
    }
    PROGRESS.store(cfg.progress, Ordering::Relaxed);
    QUIET.store(cfg.quiet, Ordering::Relaxed);
    ENABLED.store(true, Ordering::Relaxed);
}

/// Stop recording and return the captured session, if one was installed.
///
/// Spans still open are closed at the current instant (they keep their
/// fields) so a session finished mid-pipeline still exports cleanly.
pub fn finish() -> Option<Session> {
    ENABLED.store(false, Ordering::Relaxed);
    PROGRESS.store(false, Ordering::Relaxed);
    let state = STATE.lock().unwrap().take()?;
    let mut state = state;
    let t = now_us();
    for span in &mut state.spans {
        if span.end_us.is_none() {
            span.end_us = Some(t);
        }
    }
    SPAN_STACK.with(|s| s.borrow_mut().clear());
    Some(Session {
        start_us: state.start_us,
        end_us: t,
        spans: state.spans,
        events: state.events,
        counters: hot::counter_snapshot(),
        histograms: hot::histogram_snapshot(),
    })
}

// ---------------------------------------------------------------------------
// Spans
// ---------------------------------------------------------------------------

/// RAII guard for a phase span. Created by [`span`]; closes on drop.
///
/// Not `Send`: a span must open and close on the same (orchestrating)
/// thread, because parentage follows the per-thread span stack.
#[must_use = "a span records its wall-clock when dropped"]
pub struct Span {
    id: Option<usize>,
    live: Option<LiveSpan>,
    _not_send: PhantomData<*const ()>,
}

/// Live-forwarding side of a span: when an [`events::EventSink`] is
/// installed and the opening thread carries a job tag, the span's begin,
/// end (with wall-clock and fields) are pushed to the sink as they happen —
/// independent of whether a recording session is installed.
struct LiveSpan {
    sink: std::sync::Arc<dyn events::EventSink>,
    job: u64,
    name: String,
    start_us: u64,
    fields: RefCell<Vec<(String, Value)>>,
}

fn live_span(name: &str) -> Option<LiveSpan> {
    let (sink, job) = events::active_for_current_job()?;
    sink.obs_event(job, &events::ObsEvent::SpanBegin { name });
    Some(LiveSpan {
        sink,
        job,
        name: name.to_string(),
        start_us: now_us(),
        fields: RefCell::new(Vec::new()),
    })
}

/// Open a span named `name` under the innermost span open on this thread.
///
/// When no session is installed this is a no-op costing one relaxed load
/// (plus one more for the live event sink).
pub fn span(name: &str) -> Span {
    let live = live_span(name);
    if !enabled() {
        return Span {
            id: None,
            live,
            _not_send: PhantomData,
        };
    }
    let t = now_us();
    let mut guard = STATE.lock().unwrap();
    let Some(state) = guard.as_mut() else {
        return Span {
            id: None,
            live,
            _not_send: PhantomData,
        };
    };
    let id = state.spans.len();
    let parent = SPAN_STACK.with(|s| s.borrow().last().copied());
    let t_rel = t.saturating_sub(state.start_us);
    state.spans.push(SpanRecord {
        id,
        parent,
        name: name.to_string(),
        start_us: t_rel,
        end_us: None,
        fields: Vec::new(),
    });
    state.events.push(Event::Begin { span: id, t_us: t_rel });
    drop(guard);
    SPAN_STACK.with(|s| s.borrow_mut().push(id));
    Span {
        id: Some(id),
        live,
        _not_send: PhantomData,
    }
}

impl Span {
    /// Attach (or overwrite) a field on this span.
    pub fn record(&self, key: &str, value: impl Into<Value>) {
        let value = value.into();
        if let Some(live) = &self.live {
            let mut fields = live.fields.borrow_mut();
            if let Some(slot) = fields.iter_mut().find(|(k, _)| k == key) {
                slot.1 = value.clone();
            } else {
                fields.push((key.to_string(), value.clone()));
            }
        }
        let Some(id) = self.id else { return };
        let mut guard = STATE.lock().unwrap();
        if let Some(state) = guard.as_mut() {
            if let Some(span) = state.spans.get_mut(id) {
                if let Some(slot) = span.fields.iter_mut().find(|(k, _)| k == key) {
                    slot.1 = value;
                } else {
                    span.fields.push((key.to_string(), value));
                }
            }
        }
    }

    /// Builder-style [`Span::record`].
    pub fn with(self, key: &str, value: impl Into<Value>) -> Self {
        self.record(key, value);
        self
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some(live) = &self.live {
            live.sink.obs_event(
                live.job,
                &events::ObsEvent::SpanEnd {
                    name: &live.name,
                    wall_us: now_us().saturating_sub(live.start_us),
                    fields: &live.fields.borrow(),
                },
            );
        }
        let Some(id) = self.id else { return };
        let t = now_us();
        SPAN_STACK.with(|s| {
            let mut stack = s.borrow_mut();
            if let Some(pos) = stack.iter().rposition(|&x| x == id) {
                stack.truncate(pos);
            }
        });
        let mut guard = STATE.lock().unwrap();
        if let Some(state) = guard.as_mut() {
            let t_rel = t.saturating_sub(state.start_us);
            if let Some(span) = state.spans.get_mut(id) {
                span.end_us = Some(t_rel);
            }
            state.events.push(Event::End { span: id, t_us: t_rel });
        }
    }
}

// ---------------------------------------------------------------------------
// Diagnostics + heartbeat (stderr only)
// ---------------------------------------------------------------------------

/// Emit a one-line diagnostic: printed to stderr unless `--quiet`, and
/// recorded in the trace stream when a session is installed.
///
/// This is the sink the ad-hoc `eprintln!` counters migrated onto.
pub fn diag(args: fmt::Arguments<'_>) {
    let msg = args.to_string();
    if let Some((sink, job)) = events::active_for_current_job() {
        sink.obs_event(job, &events::ObsEvent::Diag { msg: &msg });
    }
    if !QUIET.load(Ordering::Relaxed) {
        eprintln!("{msg}");
    }
    if enabled() {
        let t = now_us();
        let mut guard = STATE.lock().unwrap();
        if let Some(state) = guard.as_mut() {
            let t_rel = t.saturating_sub(state.start_us);
            state.events.push(Event::Diag { msg, t_us: t_rel });
        }
    }
}

/// `diag!` with `format!` syntax.
#[macro_export]
macro_rules! diag {
    ($($arg:tt)*) => {
        $crate::diag(::core::format_args!($($arg)*))
    };
}

/// Minimum interval between heartbeat lines, in microseconds.
const BEAT_INTERVAL_US: u64 = 500_000;

static LAST_BEAT_US: AtomicU64 = AtomicU64::new(0);
static LAST_BEAT_STATES: AtomicU64 = AtomicU64::new(0);

/// Rate-limited progress heartbeat on stderr with states/sec and, for the
/// exploration stage, the current frontier depth.
///
/// Called from amortized clock checkpoints (`Meter::check_clock`); no-op
/// unless `--progress` is on, and prints at most every ~500 ms.
pub fn heartbeat(stage: &str, states: u64, transitions: u64) {
    if let Some((sink, job)) = events::active_for_current_job() {
        // Rate-limited per emitting thread: watch subscribers need
        // liveness, not every amortized check boundary.
        if events::beat_due(now_us()) {
            sink.obs_event(
                job,
                &events::ObsEvent::Heartbeat {
                    stage,
                    states,
                    transitions,
                },
            );
        }
    }
    if !progress_enabled() {
        return;
    }
    let now = now_us();
    let last = LAST_BEAT_US.load(Ordering::Relaxed);
    if now.saturating_sub(last) < BEAT_INTERVAL_US {
        return;
    }
    if LAST_BEAT_US
        .compare_exchange(last, now, Ordering::Relaxed, Ordering::Relaxed)
        .is_err()
    {
        return; // someone else just printed
    }
    let prev_states = LAST_BEAT_STATES.swap(states, Ordering::Relaxed);
    let dt_us = now.saturating_sub(last).max(1);
    let rate = if last == 0 {
        // First beat: no baseline interval yet, report cumulative.
        states
    } else {
        states.saturating_sub(prev_states) * 1_000_000 / dt_us
    };
    let frontier = hot::EXPLORE_FRONTIER.get();
    if stage == "explore" && frontier > 0 {
        eprintln!(
            "[bbv] {stage}: {states} states, {transitions} transitions, {rate} states/s, frontier {frontier}"
        );
    } else {
        eprintln!("[bbv] {stage}: {states} states, {transitions} transitions, {rate} states/s");
    }
}

/// Render a byte count with a binary-unit suffix (`882 B`, `1.4 MiB`).
///
/// Shared by `PartialStats`/verdict reporting so every path prints peak
/// memory in one format.
pub fn format_bytes(bytes: u64) -> String {
    const UNITS: [&str; 5] = ["B", "KiB", "MiB", "GiB", "TiB"];
    if bytes < 1024 {
        return format!("{bytes} B");
    }
    let mut value = bytes as f64;
    let mut unit = 0;
    while value >= 1024.0 && unit + 1 < UNITS.len() {
        value /= 1024.0;
        unit += 1;
    }
    format!("{value:.1} {}", UNITS[unit])
}

// ---------------------------------------------------------------------------
// Session export
// ---------------------------------------------------------------------------

/// A finished recording session: spans, ordered events, and hot-instrument
/// snapshots, ready to render as JSON.
#[derive(Debug)]
pub struct Session {
    start_us: u64,
    end_us: u64,
    spans: Vec<SpanRecord>,
    events: Vec<Event>,
    counters: Vec<(&'static str, u64)>,
    histograms: Vec<(&'static str, hot::HistogramSnapshot)>,
}

impl Session {
    /// All recorded spans in open order.
    pub fn spans(&self) -> &[SpanRecord] {
        &self.spans
    }

    /// Snapshot of every registered counter (name, value), including zeros.
    pub fn counters(&self) -> &[(&'static str, u64)] {
        &self.counters
    }

    /// Total wall-clock of the session in microseconds.
    pub fn elapsed_us(&self) -> u64 {
        self.end_us.saturating_sub(self.start_us)
    }

    /// Sum of wall-clock over all spans with the given name, with the count.
    pub fn phase_total(&self, name: &str) -> (u64, usize) {
        let mut total = 0;
        let mut count = 0;
        for s in &self.spans {
            if s.name == name {
                total += s.wall_us();
                count += 1;
            }
        }
        (total, count)
    }

    /// Nesting depth of a span (0 = root).
    fn depth(&self, mut id: usize) -> usize {
        let mut d = 0;
        while let Some(p) = self.spans[id].parent {
            d += 1;
            id = p;
        }
        d
    }

    /// Render the single-document metrics JSON (`--metrics`).
    ///
    /// `meta` carries run identification (command, algorithm, bound, jobs…)
    /// supplied by the caller. Schema: see DESIGN.md "Observability".
    pub fn metrics_json(&self, meta: &[(&str, Value)]) -> String {
        let mut out = String::with_capacity(4096);
        out.push_str("{\n  \"schema\": \"bb-obs/v1\",\n  \"meta\": {");
        for (i, (k, v)) in meta.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            json::write_str(&mut out, k);
            out.push_str(": ");
            v.write_json(&mut out);
        }
        out.push_str("},\n");
        out.push_str(&format!("  \"elapsed_us\": {},\n", self.elapsed_us()));
        out.push_str("  \"spans\": [\n");
        for (i, s) in self.spans.iter().enumerate() {
            out.push_str("    {");
            out.push_str(&format!("\"id\": {}, ", s.id));
            match s.parent {
                Some(p) => out.push_str(&format!("\"parent\": {p}, ")),
                None => out.push_str("\"parent\": null, "),
            }
            out.push_str("\"name\": ");
            json::write_str(&mut out, &s.name);
            out.push_str(&format!(
                ", \"depth\": {}, \"start_us\": {}, \"wall_us\": {}, \"fields\": {{",
                self.depth(s.id),
                s.start_us,
                s.wall_us()
            ));
            for (j, (k, v)) in s.fields.iter().enumerate() {
                if j > 0 {
                    out.push_str(", ");
                }
                json::write_str(&mut out, k);
                out.push_str(": ");
                v.write_json(&mut out);
            }
            out.push_str("}}");
            if i + 1 < self.spans.len() {
                out.push(',');
            }
            out.push('\n');
        }
        out.push_str("  ],\n  \"counters\": {");
        for (i, (k, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            json::write_str(&mut out, k);
            out.push_str(&format!(": {v}"));
        }
        out.push_str("},\n  \"histograms\": {");
        for (i, (k, h)) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            json::write_str(&mut out, k);
            out.push_str(&format!(
                ": {{\"count\": {}, \"max\": {}, \"sum\": {}, \"buckets\": [",
                h.count, h.max, h.sum
            ));
            for (j, (le, n)) in h.buckets.iter().enumerate() {
                if j > 0 {
                    out.push_str(", ");
                }
                out.push_str(&format!("[{le}, {n}]"));
            }
            out.push_str("]}");
        }
        out.push_str("}\n}\n");
        out
    }

    /// Render the per-event NDJSON trace stream (`--trace`): one JSON object
    /// per line, in event order. `begin`/`end` events bracket spans; `diag`
    /// events carry migrated stderr diagnostics; final `counters` and
    /// `histograms` events carry the hot-instrument snapshots.
    pub fn trace_ndjson(&self) -> String {
        let mut out = String::with_capacity(4096);
        for (seq, ev) in self.events.iter().enumerate() {
            match ev {
                Event::Begin { span, t_us } => {
                    let s = &self.spans[*span];
                    out.push_str(&format!(
                        "{{\"ev\": \"begin\", \"seq\": {seq}, \"id\": {}, \"parent\": ",
                        s.id
                    ));
                    match s.parent {
                        Some(p) => out.push_str(&p.to_string()),
                        None => out.push_str("null"),
                    }
                    out.push_str(", \"name\": ");
                    json::write_str(&mut out, &s.name);
                    out.push_str(&format!(", \"t_us\": {t_us}}}\n"));
                }
                Event::End { span, t_us } => {
                    let s = &self.spans[*span];
                    out.push_str(&format!(
                        "{{\"ev\": \"end\", \"seq\": {seq}, \"id\": {}, \"name\": ",
                        s.id
                    ));
                    json::write_str(&mut out, &s.name);
                    out.push_str(&format!(
                        ", \"t_us\": {t_us}, \"wall_us\": {}, \"fields\": {{",
                        s.wall_us()
                    ));
                    for (j, (k, v)) in s.fields.iter().enumerate() {
                        if j > 0 {
                            out.push_str(", ");
                        }
                        json::write_str(&mut out, k);
                        out.push_str(": ");
                        v.write_json(&mut out);
                    }
                    out.push_str("}}\n");
                }
                Event::Diag { msg, t_us } => {
                    out.push_str(&format!("{{\"ev\": \"diag\", \"seq\": {seq}, \"t_us\": {t_us}, \"msg\": "));
                    json::write_str(&mut out, msg);
                    out.push_str("}\n");
                }
            }
        }
        out.push_str("{\"ev\": \"counters\", \"values\": {");
        for (i, (k, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            json::write_str(&mut out, k);
            out.push_str(&format!(": {v}"));
        }
        out.push_str("}}\n");
        // Histogram snapshots used to be visible only in --metrics; trace
        // consumers get the same distributions as a final event.
        out.push_str("{\"ev\": \"histograms\", \"values\": {");
        for (i, (k, h)) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            json::write_str(&mut out, k);
            out.push_str(&format!(
                ": {{\"count\": {}, \"max\": {}, \"sum\": {}, \"buckets\": [",
                h.count, h.max, h.sum
            ));
            for (j, (le, n)) in h.buckets.iter().enumerate() {
                if j > 0 {
                    out.push_str(", ");
                }
                out.push_str(&format!("[{le}, {n}]"));
            }
            out.push_str("]}");
        }
        out.push_str("}}\n");
        out
    }
}

// ---------------------------------------------------------------------------
// Tests
// ---------------------------------------------------------------------------

#[cfg(test)]
mod tests {
    use super::*;

    /// Serialize tests touching the global recorder: cargo runs unit tests
    /// in one process on many threads.
    static TEST_LOCK: Mutex<()> = Mutex::new(());

    fn lock() -> std::sync::MutexGuard<'static, ()> {
        TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn disabled_is_noop() {
        let _g = lock();
        let _ = finish();
        assert!(!enabled());
        let s = span("explore").with("states", 3u64);
        drop(s);
        assert!(finish().is_none());
    }

    #[test]
    fn spans_nest_and_export() {
        let _g = lock();
        install(ObsConfig::default());
        {
            let outer = span("lin").with("eq", "branching");
            let _ = &outer;
            {
                let inner = span("bisim");
                inner.record("states", 42u64);
                {
                    let round = span("bisim.round").with("round", 0u64);
                    round.record("blocks_after", 7u64);
                }
            }
        }
        let session = finish().expect("session");
        assert_eq!(session.spans().len(), 3);
        let lin = &session.spans()[0];
        let bisim = &session.spans()[1];
        let round = &session.spans()[2];
        assert_eq!(lin.name, "lin");
        assert_eq!(lin.parent, None);
        assert_eq!(bisim.parent, Some(lin.id));
        assert_eq!(round.parent, Some(bisim.id));
        assert_eq!(round.field("round"), Some(&Value::U64(0)));
        assert_eq!(bisim.field("states"), Some(&Value::U64(42)));

        let doc = session.metrics_json(&[("command", Value::from("verify"))]);
        let parsed = json::parse(&doc).expect("metrics JSON parses");
        let obj = parsed.as_object().unwrap();
        assert_eq!(
            obj.iter().map(|(k, _)| k.as_str()).collect::<Vec<_>>(),
            ["schema", "meta", "elapsed_us", "spans", "counters", "histograms"]
        );
        let spans = parsed.get("spans").unwrap().as_array().unwrap();
        assert_eq!(spans.len(), 3);
        assert_eq!(
            spans[2].get("depth").and_then(json::JsonValue::as_u64),
            Some(2)
        );

        let trace = session.trace_ndjson();
        let lines: Vec<_> = trace.lines().collect();
        // 3 begins + 3 ends + final counters + histograms lines.
        assert_eq!(lines.len(), 8);
        for line in &lines {
            json::parse(line).expect("each trace line is valid JSON");
        }
        let last = json::parse(lines[7]).unwrap();
        assert_eq!(last.get("ev").unwrap().as_str(), Some("histograms"));
    }

    #[test]
    fn open_spans_closed_at_finish() {
        let _g = lock();
        install(ObsConfig::default());
        let s = span("explore");
        let session = finish().expect("session");
        assert!(session.spans()[0].end_us.is_some());
        drop(s); // closing after finish must not panic
    }

    #[test]
    fn diag_recorded_in_trace() {
        let _g = lock();
        install(ObsConfig {
            progress: false,
            quiet: true, // don't spam test stderr
        });
        diag!("reduction {} [{}]: demo", "full", "treiber");
        let session = finish().expect("session");
        let trace = session.trace_ndjson();
        assert!(trace.contains("\"ev\": \"diag\""));
        assert!(trace.contains("reduction full [treiber]: demo"));
        set_quiet(false);
    }

    #[test]
    fn format_bytes_units() {
        assert_eq!(format_bytes(0), "0 B");
        assert_eq!(format_bytes(882), "882 B");
        assert_eq!(format_bytes(1536), "1.5 KiB");
        assert_eq!(format_bytes(3 * 1024 * 1024), "3.0 MiB");
        assert_eq!(format_bytes(u64::MAX), "16777216.0 TiB");
    }

    #[test]
    fn phase_total_sums_rounds() {
        let _g = lock();
        install(ObsConfig::default());
        for k in 0..3u64 {
            let _r = span("bisim.round").with("round", k);
        }
        let session = finish().expect("session");
        let (_, count) = session.phase_total("bisim.round");
        assert_eq!(count, 3);
    }
}
