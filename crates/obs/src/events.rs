//! Live event subscription — the `bb-serve` watch-stream seam.
//!
//! The recorder in `lib.rs` buffers a whole session and exports it at the
//! end; a verification *daemon* needs the opposite: progress events pushed
//! out while a job runs, attributed to that job, without installing the
//! process-global recording session (which would interleave concurrent
//! jobs). This module provides that second consumer path, mirroring the
//! [`PersistSink`](crate::sink::PersistSink) indirection:
//!
//! * an [`EventSink`] trait the daemon implements (its watch hub fans the
//!   events out to subscribed TCP clients);
//! * a process-wide installed sink ([`set_event_sink`]), one relaxed
//!   atomic load when absent;
//! * a **thread-local job tag** ([`tag_job`]): the daemon worker tags its
//!   thread before running a job, and every span, diagnostic, and
//!   heartbeat emitted from that thread is forwarded with the job id.
//!   Untagged threads (the parallel engine's short-lived shard workers,
//!   other jobs) forward nothing, so concurrent jobs never cross streams.
//!
//! Forwarding is observability, not control flow: sinks must not panic,
//! and nothing here may change verdicts or stdout bytes (the serve
//! differential tests byte-diff exactly that).

use crate::Value;
use std::cell::Cell;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};

/// One forwarded observability event. Borrowed views into the emitter's
/// data — sinks serialize what they need and return.
#[derive(Debug)]
pub enum ObsEvent<'a> {
    /// A phase span opened (`explore`, `bisim`, `bisim.round`, …).
    SpanBegin { name: &'a str },
    /// A phase span closed; `fields` carries whatever the phase recorded
    /// (states, transitions, per-round partition deltas, …).
    SpanEnd {
        name: &'a str,
        wall_us: u64,
        fields: &'a [(String, Value)],
    },
    /// A one-line diagnostic (the `diag!` stream).
    Diag { msg: &'a str },
    /// A rate-limited progress heartbeat from a governed meter.
    Heartbeat {
        stage: &'a str,
        states: u64,
        transitions: u64,
    },
}

impl ObsEvent<'_> {
    /// Renders this event as one NDJSON line attributed to `job` — the
    /// wire format shared by the serve watch hub and the flight recorder.
    pub fn render_json(&self, job: u64) -> String {
        use std::fmt::Write as _;
        let mut line = String::with_capacity(96);
        match self {
            ObsEvent::SpanBegin { name } => {
                let _ = write!(line, "{{\"event\": \"span_begin\", \"job\": {job}, \"name\": ");
                crate::json::write_str(&mut line, name);
                line.push('}');
            }
            ObsEvent::SpanEnd { name, wall_us, fields } => {
                let _ = write!(line, "{{\"event\": \"span_end\", \"job\": {job}, \"name\": ");
                crate::json::write_str(&mut line, name);
                let _ = write!(line, ", \"wall_us\": {wall_us}, \"fields\": {{");
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        line.push_str(", ");
                    }
                    crate::json::write_str(&mut line, k);
                    line.push_str(": ");
                    v.write_json(&mut line);
                }
                line.push_str("}}");
            }
            ObsEvent::Diag { msg } => {
                let _ = write!(line, "{{\"event\": \"diag\", \"job\": {job}, \"msg\": ");
                crate::json::write_str(&mut line, msg);
                line.push('}');
            }
            ObsEvent::Heartbeat { stage, states, transitions } => {
                let _ = write!(line, "{{\"event\": \"heartbeat\", \"job\": {job}, \"stage\": ");
                crate::json::write_str(&mut line, stage);
                let _ = write!(line, ", \"states\": {states}, \"transitions\": {transitions}}}");
            }
        }
        line
    }
}

/// Receiver of live, job-tagged observability events. Implemented by the
/// `bb-serve` watch hub; installed process-wide.
pub trait EventSink: Send + Sync {
    /// Called synchronously from the emitting (job) thread. Must be cheap
    /// and must not panic; slow consumers are the sink's problem to shed.
    fn obs_event(&self, job: u64, ev: &ObsEvent<'_>);
}

static SINK_INSTALLED: AtomicBool = AtomicBool::new(false);
static SINK: Mutex<Option<Arc<dyn EventSink>>> = Mutex::new(None);

thread_local! {
    /// The job id events from this thread are attributed to.
    static JOB_TAG: Cell<Option<u64>> = const { Cell::new(None) };
    /// Thread-local heartbeat rate limiter (µs of last forwarded beat).
    static LAST_FWD_BEAT_US: Cell<u64> = const { Cell::new(0) };
}

/// Installs `sink` as the process-wide live event receiver.
pub fn set_event_sink(sink: Arc<dyn EventSink>) {
    *SINK.lock().unwrap_or_else(|e| e.into_inner()) = Some(sink);
    SINK_INSTALLED.store(true, Ordering::Release);
}

/// Removes the installed event sink.
pub fn clear_event_sink() {
    SINK_INSTALLED.store(false, Ordering::Release);
    *SINK.lock().unwrap_or_else(|e| e.into_inner()) = None;
}

/// RAII guard restoring the previous job tag of this thread on drop.
pub struct JobTagGuard {
    prev: Option<u64>,
}

impl Drop for JobTagGuard {
    fn drop(&mut self) {
        JOB_TAG.with(|t| t.set(self.prev));
    }
}

/// Tags the current thread: until the guard drops, events emitted here are
/// forwarded to the installed sink attributed to `job`.
pub fn tag_job(job: u64) -> JobTagGuard {
    let prev = JOB_TAG.with(|t| t.replace(Some(job)));
    JobTagGuard { prev }
}

/// The job id this thread's events are attributed to, if any.
pub fn current_job() -> Option<u64> {
    JOB_TAG.with(|t| t.get())
}

/// The `(sink, job)` pair when both a sink is installed and this thread is
/// tagged — the condition under which emitters forward. One relaxed load
/// on the common (uninstalled) path.
#[inline]
pub fn active_for_current_job() -> Option<(Arc<dyn EventSink>, u64)> {
    if !SINK_INSTALLED.load(Ordering::Acquire) {
        return None;
    }
    let job = current_job()?;
    let sink = SINK.lock().unwrap_or_else(|e| e.into_inner()).clone()?;
    Some((sink, job))
}

/// Minimum interval between *forwarded* heartbeats per thread, in µs.
/// Meters call `heartbeat` every `CHECK_INTERVAL` ticks, which can be tens
/// of thousands of times per second on a hot loop; watch subscribers only
/// need liveness, not every boundary.
pub const FORWARD_BEAT_INTERVAL_US: u64 = 100_000;

/// Rate-limit check for heartbeat forwarding (per emitting thread, which
/// matches per job: only the job's orchestrating thread is tagged).
/// Returns `true` when enough time passed since the last forwarded beat.
pub fn beat_due(now_us: u64) -> bool {
    LAST_FWD_BEAT_US.with(|last| {
        if now_us.saturating_sub(last.get()) < FORWARD_BEAT_INTERVAL_US {
            return false;
        }
        last.set(now_us);
        true
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[derive(Default)]
    struct Recorder {
        events: Mutex<Vec<(u64, String)>>,
        count: AtomicU64,
    }

    impl EventSink for Recorder {
        fn obs_event(&self, job: u64, ev: &ObsEvent<'_>) {
            let label = match ev {
                ObsEvent::SpanBegin { name } => format!("begin:{name}"),
                ObsEvent::SpanEnd { name, .. } => format!("end:{name}"),
                ObsEvent::Diag { msg } => format!("diag:{msg}"),
                ObsEvent::Heartbeat { stage, .. } => format!("beat:{stage}"),
            };
            self.events.lock().unwrap().push((job, label));
            self.count.fetch_add(1, Ordering::Relaxed);
        }
    }

    #[test]
    fn untagged_threads_are_inactive() {
        let rec = Arc::new(Recorder::default());
        set_event_sink(rec.clone());
        assert!(current_job().is_none());
        assert!(active_for_current_job().is_none(), "no tag, no forwarding");
        {
            let _g = tag_job(7);
            assert_eq!(current_job(), Some(7));
            let (sink, job) = active_for_current_job().expect("tag + sink");
            assert_eq!(job, 7);
            sink.obs_event(job, &ObsEvent::Diag { msg: "x" });
        }
        assert!(current_job().is_none(), "guard restores the tag");
        clear_event_sink();
        assert!(active_for_current_job().is_none());
        assert_eq!(rec.events.lock().unwrap().as_slice(), &[(7, "diag:x".into())]);
    }

    #[test]
    fn tags_nest_and_restore() {
        let outer = tag_job(1);
        {
            let _inner = tag_job(2);
            assert_eq!(current_job(), Some(2));
        }
        assert_eq!(current_job(), Some(1));
        drop(outer);
        assert_eq!(current_job(), None);
    }

    #[test]
    fn render_json_produces_parseable_lines() {
        let fields = vec![("states".to_string(), Value::U64(42))];
        let cases = [
            ObsEvent::SpanBegin { name: "explore" },
            ObsEvent::SpanEnd { name: "explore", wall_us: 9, fields: &fields },
            ObsEvent::Diag { msg: "a \"quoted\" msg" },
            ObsEvent::Heartbeat { stage: "bisim", states: 1, transitions: 2 },
        ];
        for ev in &cases {
            let line = ev.render_json(5);
            let v = crate::json::parse(&line).expect("rendered line parses");
            assert_eq!(v.get("job").unwrap().as_u64(), Some(5));
            assert!(v.get("event").unwrap().as_str().is_some());
        }
    }

    #[test]
    fn beat_rate_limiter_is_per_thread() {
        // Fresh thread => fresh limiter state.
        std::thread::spawn(|| {
            assert!(beat_due(FORWARD_BEAT_INTERVAL_US));
            assert!(!beat_due(FORWARD_BEAT_INTERVAL_US + 1));
            assert!(beat_due(3 * FORWARD_BEAT_INTERVAL_US));
        })
        .join()
        .unwrap();
    }
}
