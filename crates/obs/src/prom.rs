//! Prometheus text-format exposition: a hand-rolled, std-only encoder for
//! the serve daemon's `/metrics` endpoint, plus a strict linter the tests
//! and CI run against every scrape.
//!
//! Naming contract: every series the daemon exports is `bb_`-prefixed and
//! derived mechanically from the internal instrument name by
//! [`metric_name`] (`bisim.signature_recomputes` →
//! `bb_bisim_signature_recomputes`), so dashboards survive refactors that
//! keep instrument names stable. Histograms follow the Prometheus
//! convention exactly: cumulative `_bucket{le="..."}` series ending in
//! `le="+Inf"`, plus `_sum` and `_count`.

use crate::hot::HistogramSnapshot;
use std::collections::{HashMap, HashSet};
use std::fmt::Write as _;

/// Maps an internal instrument name to its exported series name: `bb_`
/// prefix, every character outside `[a-zA-Z0-9_]` replaced by `_`.
pub fn metric_name(raw: &str) -> String {
    let mut out = String::with_capacity(raw.len() + 3);
    out.push_str("bb_");
    for c in raw.chars() {
        if c.is_ascii_alphanumeric() || c == '_' {
            out.push(c);
        } else {
            out.push('_');
        }
    }
    out
}

/// Incrementally builds one exposition document. Each emitter writes the
/// `# HELP` / `# TYPE` header followed by the sample line(s).
#[derive(Default)]
pub struct PromWriter {
    out: String,
}

impl PromWriter {
    pub fn new() -> PromWriter {
        PromWriter::default()
    }

    fn header(&mut self, name: &str, help: &str, kind: &str) {
        // HELP text: escape backslash and newline per the text format.
        let escaped: String = help
            .chars()
            .flat_map(|c| match c {
                '\\' => vec!['\\', '\\'],
                '\n' => vec!['\\', 'n'],
                c => vec![c],
            })
            .collect();
        let _ = writeln!(self.out, "# HELP {name} {escaped}");
        let _ = writeln!(self.out, "# TYPE {name} {kind}");
    }

    /// One `counter` series.
    pub fn counter(&mut self, name: &str, help: &str, value: u64) {
        self.header(name, help, "counter");
        let _ = writeln!(self.out, "{name} {value}");
    }

    /// One unlabelled `gauge` series.
    pub fn gauge(&mut self, name: &str, help: &str, value: u64) {
        self.header(name, help, "gauge");
        let _ = writeln!(self.out, "{name} {value}");
    }

    /// One `gauge` family with a label per sample (e.g. per-state job
    /// counts). `samples` are `(label_key, label_value, value)` triples.
    pub fn gauge_labeled(&mut self, name: &str, help: &str, samples: &[(&str, &str, u64)]) {
        self.header(name, help, "gauge");
        for (k, v, value) in samples {
            let _ = writeln!(self.out, "{name}{{{k}=\"{v}\"}} {value}");
        }
    }

    /// One `histogram` family from a hot-path snapshot: cumulative
    /// `_bucket` series ending `+Inf`, then `_sum` and `_count`.
    pub fn histogram(&mut self, name: &str, help: &str, snap: &HistogramSnapshot) {
        self.header(name, help, "histogram");
        let mut cumulative = 0u64;
        for (le, n) in &snap.buckets {
            cumulative += n;
            let _ = writeln!(self.out, "{name}_bucket{{le=\"{le}\"}} {cumulative}");
        }
        let _ = writeln!(self.out, "{name}_bucket{{le=\"+Inf\"}} {}", snap.count);
        let _ = writeln!(self.out, "{name}_sum {}", snap.sum);
        let _ = writeln!(self.out, "{name}_count {}", snap.count);
    }

    /// The finished document.
    pub fn finish(self) -> String {
        self.out
    }
}

/// Whether `name` matches the Prometheus metric-name charset
/// `[a-zA-Z_:][a-zA-Z0-9_:]*`.
fn valid_name(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' || c == ':' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

/// The base family name a sample belongs to: strips the histogram series
/// suffixes so `x_bucket`/`x_sum`/`x_count` all map to `x` when `x` was
/// declared as a histogram.
fn family_of<'a>(name: &'a str, types: &HashMap<String, String>) -> &'a str {
    for suffix in ["_bucket", "_sum", "_count"] {
        if let Some(base) = name.strip_suffix(suffix) {
            if types.get(base).map(String::as_str) == Some("histogram") {
                return base;
            }
        }
    }
    name
}

/// Splits a sample line `name{labels} value` / `name value` into
/// `(name, labels_or_empty, value)`.
fn split_sample(line: &str) -> Result<(&str, &str, &str), String> {
    if let Some(open) = line.find('{') {
        let close = line
            .rfind('}')
            .ok_or_else(|| format!("unbalanced label braces: {line}"))?;
        if close < open {
            return Err(format!("unbalanced label braces: {line}"));
        }
        let name = &line[..open];
        let labels = &line[open + 1..close];
        let value = line[close + 1..].trim();
        Ok((name, labels, value))
    } else {
        let mut parts = line.splitn(2, ' ');
        let name = parts.next().unwrap_or("");
        let value = parts.next().unwrap_or("").trim();
        Ok((name, "", value))
    }
}

/// Strictly lints a text exposition document: name charset, HELP/TYPE
/// pairing and ordering, numeric sample values, monotone cumulative
/// histogram buckets terminated by `+Inf`, `_count` consistency, and no
/// duplicate series (name + label set).
pub fn lint(text: &str) -> Result<(), String> {
    let mut helps: HashSet<String> = HashSet::new();
    let mut types: HashMap<String, String> = HashMap::new();
    let mut series: HashSet<String> = HashSet::new();
    // Per histogram family: the cumulative bucket trail and final count.
    let mut buckets: HashMap<String, Vec<(f64, u64)>> = HashMap::new();
    let mut counts: HashMap<String, u64> = HashMap::new();

    for (i, line) in text.lines().enumerate() {
        let lineno = i + 1;
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# ") {
            let mut parts = rest.splitn(3, ' ');
            let kind = parts.next().unwrap_or("");
            let name = parts.next().unwrap_or("");
            let tail = parts.next().unwrap_or("");
            match kind {
                "HELP" => {
                    if !valid_name(name) {
                        return Err(format!("line {lineno}: bad metric name in HELP: {name:?}"));
                    }
                    if tail.is_empty() {
                        return Err(format!("line {lineno}: HELP {name} has no text"));
                    }
                    if !helps.insert(name.to_string()) {
                        return Err(format!("line {lineno}: duplicate HELP for {name}"));
                    }
                }
                "TYPE" => {
                    if !valid_name(name) {
                        return Err(format!("line {lineno}: bad metric name in TYPE: {name:?}"));
                    }
                    if !matches!(tail, "counter" | "gauge" | "histogram" | "summary" | "untyped") {
                        return Err(format!("line {lineno}: unknown TYPE {tail:?} for {name}"));
                    }
                    if types.insert(name.to_string(), tail.to_string()).is_some() {
                        return Err(format!("line {lineno}: duplicate TYPE for {name}"));
                    }
                }
                _ => return Err(format!("line {lineno}: unknown comment kind {kind:?}")),
            }
            continue;
        }
        if line.starts_with('#') {
            return Err(format!("line {lineno}: comments must start with '# '"));
        }
        let (name, labels, value) = split_sample(line)?;
        if !valid_name(name) {
            return Err(format!("line {lineno}: bad sample metric name {name:?}"));
        }
        let family = family_of(name, &types);
        if !helps.contains(family) {
            return Err(format!("line {lineno}: sample {name} has no preceding HELP {family}"));
        }
        if !types.contains_key(family) {
            return Err(format!("line {lineno}: sample {name} has no preceding TYPE {family}"));
        }
        let num: f64 = if value == "+Inf" {
            f64::INFINITY
        } else {
            value
                .parse()
                .map_err(|_| format!("line {lineno}: non-numeric sample value {value:?}"))?
        };
        if !series.insert(format!("{name}{{{labels}}}")) {
            return Err(format!("line {lineno}: duplicate series {name}{{{labels}}}"));
        }
        // Histogram structure checks.
        if types.get(family).map(String::as_str) == Some("histogram") {
            if name.ends_with("_bucket") {
                let le_raw = labels
                    .strip_prefix("le=\"")
                    .and_then(|r| r.strip_suffix('"'))
                    .ok_or_else(|| {
                        format!("line {lineno}: histogram bucket without le label: {line}")
                    })?;
                let le: f64 = if le_raw == "+Inf" {
                    f64::INFINITY
                } else {
                    le_raw
                        .parse()
                        .map_err(|_| format!("line {lineno}: bad le value {le_raw:?}"))?
                };
                let trail = buckets.entry(family.to_string()).or_default();
                if let Some(&(prev_le, prev_n)) = trail.last() {
                    if le <= prev_le {
                        return Err(format!(
                            "line {lineno}: {family} bucket le {le} not increasing after {prev_le}"
                        ));
                    }
                    if (num as u64) < prev_n {
                        return Err(format!(
                            "line {lineno}: {family} cumulative bucket count decreased"
                        ));
                    }
                }
                trail.push((le, num as u64));
            } else if name.ends_with("_count") {
                counts.insert(family.to_string(), num as u64);
            }
        }
    }

    for (family, trail) in &buckets {
        match trail.last() {
            Some(&(le, n)) if le.is_infinite() => {
                if let Some(&count) = counts.get(family) {
                    if count != n {
                        return Err(format!(
                            "{family}_count {count} disagrees with +Inf bucket {n}"
                        ));
                    }
                }
            }
            _ => return Err(format!("{family} buckets do not end with le=\"+Inf\"")),
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snap(buckets: Vec<(u64, u64)>, max: u64, sum: u64) -> HistogramSnapshot {
        let count = buckets.iter().map(|(_, n)| n).sum();
        HistogramSnapshot { count, max, sum, buckets }
    }

    #[test]
    fn metric_names_are_sanitized_and_prefixed() {
        assert_eq!(metric_name("bisim.signature_recomputes"), "bb_bisim_signature_recomputes");
        assert_eq!(metric_name("explore.shard_imbalance_pct"), "bb_explore_shard_imbalance_pct");
        assert!(valid_name(&metric_name("weird-name.with/chars")));
    }

    #[test]
    fn writer_output_passes_the_linter() {
        let mut w = PromWriter::new();
        w.counter("bb_jobs_submitted_total", "Jobs submitted.", 12);
        w.gauge("bb_queue_depth", "Queued jobs.", 3);
        w.gauge_labeled(
            "bb_jobs",
            "Jobs by state.",
            &[("state", "queued", 3), ("state", "running", 1)],
        );
        w.histogram(
            "bb_orbit_size",
            "Symmetry orbit sizes.",
            &snap(vec![(1, 2), (4, 5), (16, 1)], 9, 31),
        );
        let doc = w.finish();
        lint(&doc).unwrap();
        assert!(doc.contains("bb_orbit_size_bucket{le=\"+Inf\"} 8"));
        assert!(doc.contains("bb_orbit_size_sum 31"));
        assert!(doc.contains("bb_jobs{state=\"queued\"} 3"));
    }

    #[test]
    fn lint_rejects_bad_names_missing_type_and_duplicates() {
        assert!(lint("# HELP 9bad x\n# TYPE 9bad counter\n9bad 1\n").is_err());
        assert!(lint("# HELP ok x\nok 1\n").is_err(), "missing TYPE");
        assert!(lint("ok 1\n").is_err(), "missing HELP and TYPE");
        let dup = "# HELP a x\n# TYPE a counter\na 1\na 2\n";
        assert!(lint(dup).is_err(), "duplicate series");
        let dup_labels =
            "# HELP a x\n# TYPE a gauge\na{state=\"q\"} 1\na{state=\"q\"} 2\n";
        assert!(lint(dup_labels).is_err(), "duplicate labelled series");
        let distinct_labels =
            "# HELP a x\n# TYPE a gauge\na{state=\"q\"} 1\na{state=\"r\"} 2\n";
        lint(distinct_labels).unwrap();
    }

    #[test]
    fn lint_rejects_broken_histograms() {
        let unordered = "# HELP h x\n# TYPE h histogram\n\
             h_bucket{le=\"4\"} 1\nh_bucket{le=\"2\"} 2\n\
             h_bucket{le=\"+Inf\"} 2\nh_sum 3\nh_count 2\n";
        assert!(lint(unordered).is_err(), "le must increase");
        let shrinking = "# HELP h x\n# TYPE h histogram\n\
             h_bucket{le=\"2\"} 5\nh_bucket{le=\"4\"} 3\n\
             h_bucket{le=\"+Inf\"} 3\nh_sum 3\nh_count 3\n";
        assert!(lint(shrinking).is_err(), "cumulative counts must not shrink");
        let no_inf = "# HELP h x\n# TYPE h histogram\n\
             h_bucket{le=\"2\"} 1\nh_sum 1\nh_count 1\n";
        assert!(lint(no_inf).is_err(), "buckets must end at +Inf");
        let mismatch = "# HELP h x\n# TYPE h histogram\n\
             h_bucket{le=\"+Inf\"} 3\nh_sum 1\nh_count 4\n";
        assert!(lint(mismatch).is_err(), "_count must equal the +Inf bucket");
    }

    #[test]
    fn empty_histogram_snapshot_is_still_a_valid_family() {
        let mut w = PromWriter::new();
        w.histogram("bb_empty", "Never recorded.", &snap(vec![], 0, 0));
        let doc = w.finish();
        lint(&doc).unwrap();
        assert!(doc.contains("bb_empty_bucket{le=\"+Inf\"} 0"));
        assert!(doc.contains("bb_empty_count 0"));
    }
}
