//! A bounded ring of rendered event lines — the flight-recorder backing
//! store.
//!
//! The serve daemon keeps one ring per in-flight job: every forwarded
//! `bb-obs` event is rendered once and pushed here, the oldest entries are
//! dropped when the ring is full, and the whole ring is dumped when a job
//! dies (fails, is cancelled, or ends inconclusive). A ring never blocks
//! or allocates beyond its capacity, so a chatty job costs a bounded
//! amount of memory no matter how long it runs.

use std::collections::VecDeque;

/// One recorded line: a monotone per-ring sequence number, a caller-chosen
/// timestamp (µs since the recorder's epoch), and the rendered payload.
#[derive(Debug, Clone)]
pub struct RingEntry {
    /// 1-based position in the ring's full history (survives drops).
    pub seq: u64,
    /// Caller-supplied timestamp in µs.
    pub t_us: u64,
    /// The rendered event line (no trailing newline).
    pub line: String,
}

/// A bounded FIFO of [`RingEntry`] values that drops its oldest entry on
/// overflow and counts how many were dropped.
#[derive(Debug)]
pub struct RingBuffer {
    cap: usize,
    next_seq: u64,
    dropped: u64,
    entries: VecDeque<RingEntry>,
}

impl RingBuffer {
    /// An empty ring holding at most `cap` entries (`cap` ≥ 1 enforced).
    pub fn new(cap: usize) -> RingBuffer {
        RingBuffer {
            cap: cap.max(1),
            next_seq: 0,
            dropped: 0,
            entries: VecDeque::new(),
        }
    }

    /// Appends `line`, evicting the oldest entry if the ring is full.
    pub fn push(&mut self, t_us: u64, line: String) {
        if self.entries.len() == self.cap {
            self.entries.pop_front();
            self.dropped += 1;
        }
        self.next_seq += 1;
        self.entries.push_back(RingEntry { seq: self.next_seq, t_us, line });
    }

    /// Entries currently held, oldest first.
    pub fn entries(&self) -> impl Iterator<Item = &RingEntry> {
        self.entries.iter()
    }

    /// Number of entries currently held.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the ring holds no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Entries evicted to make room since the ring was created.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Total entries ever pushed (held + dropped).
    pub fn total(&self) -> u64 {
        self.next_seq
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keeps_the_newest_entries_and_counts_drops() {
        let mut ring = RingBuffer::new(3);
        for i in 1..=5u64 {
            ring.push(i * 10, format!("line {i}"));
        }
        assert_eq!(ring.len(), 3);
        assert_eq!(ring.dropped(), 2);
        assert_eq!(ring.total(), 5);
        let held: Vec<_> = ring.entries().map(|e| (e.seq, e.line.as_str())).collect();
        assert_eq!(held, vec![(3, "line 3"), (4, "line 4"), (5, "line 5")]);
    }

    #[test]
    fn zero_capacity_is_clamped_to_one() {
        let mut ring = RingBuffer::new(0);
        ring.push(1, "a".into());
        ring.push(2, "b".into());
        assert_eq!(ring.len(), 1);
        assert_eq!(ring.entries().next().unwrap().line, "b");
    }
}
