//! The differential equivalence harness: the headline correctness tool of
//! the reduction subsystem.
//!
//! For a given algorithm, bound and mode, [`differential_check`] builds the
//! state space twice — unreduced and reduced — and checks that
//!
//! 1. the two LTSs are **divergence-sensitive branching bisimilar**
//!    (`≈div`, the exact equivalence every verification theorem of the
//!    paper is stated up to), and
//! 2. every verdict of the verification pipeline (linearizability via
//!    branching-bisimulation quotients + trace refinement, lock-freedom via
//!    the divergence check) is **identical** on both.
//!
//! A reduction layer with an unsound annotation (a footprint that is not
//! hereditary, a `rename_threads` that moves observable data) shows up here
//! as a `≈div` mismatch long before it could corrupt a verdict.

use crate::mode::ReduceMode;
use crate::reducer::{explore_reduced, ReduceStats};
use bb_core::{
    verify_case_governed_with, verify_case_lts, GovernedConfig, GovernedReport, VerifyConfig,
};
use bb_lts::budget::{Exhausted, Watchdog};
use bb_lts::{ExploreOptions, Jobs};
use bb_sim::{explore_system_with, AtomicSpec, Bound, ObjectAlgorithm, SequentialSpec};

/// Outcome of one differential run.
#[derive(Debug, Clone)]
pub struct DifferentialReport {
    /// Algorithm name.
    pub name: &'static str,
    /// Reduction mode under test.
    pub mode: ReduceMode,
    /// Client bound.
    pub bound: Bound,
    /// States / transitions of the unreduced implementation LTS.
    pub full_states: usize,
    /// Transitions of the unreduced implementation LTS.
    pub full_transitions: usize,
    /// States of the reduced implementation LTS.
    pub reduced_states: usize,
    /// Transitions of the reduced implementation LTS.
    pub reduced_transitions: usize,
    /// Whether reduced ≈div full, for both implementation and spec.
    pub equivalent: bool,
    /// Whether the pipeline verdicts agree on both state spaces.
    pub verdicts_match: bool,
    /// Linearizability verdict on the unreduced pair.
    pub full_linearizable: bool,
    /// Linearizability verdict on the reduced pair.
    pub reduced_linearizable: bool,
    /// Lock-freedom verdict on the unreduced pair, when checked.
    pub full_lock_free: Option<bool>,
    /// Lock-freedom verdict on the reduced pair, when checked.
    pub reduced_lock_free: Option<bool>,
    /// Reducer counters from the implementation exploration.
    pub stats: ReduceStats,
}

impl DifferentialReport {
    /// `true` when the reduced state space is a sound stand-in: `≈div`
    /// holds and every verdict agrees.
    pub fn passed(&self) -> bool {
        self.equivalent && self.verdicts_match
    }

    /// State-count reduction factor (`≥ 1.0` when the reduction shrinks).
    pub fn reduction_factor(&self) -> f64 {
        self.full_states as f64 / (self.reduced_states.max(1)) as f64
    }

    /// One-line rendering for sweep output.
    pub fn render(&self) -> String {
        format!(
            "{:<32} {:<4} {}-{}: full {}/{} reduced {}/{} ({:.2}x) ≈div {} verdicts {} [{}]",
            self.name,
            self.mode,
            self.bound.threads,
            self.bound.ops_per_thread,
            self.full_states,
            self.full_transitions,
            self.reduced_states,
            self.reduced_transitions,
            self.reduction_factor(),
            if self.equivalent { "ok" } else { "MISMATCH" },
            if self.verdicts_match { "ok" } else { "MISMATCH" },
            self.stats
        )
    }
}

/// Runs the differential check for `alg` against `spec` at `bound`.
///
/// # Errors
///
/// Returns [`Exhausted`] when a budget axis trips during either
/// exploration (the watchdog is unlimited here; explosion is only possible
/// through the explorer's internal caps).
pub fn differential_check<A, S>(
    alg: &A,
    spec: &AtomicSpec<S>,
    bound: Bound,
    mode: ReduceMode,
    jobs: Jobs,
    check_lock_freedom: bool,
) -> Result<DifferentialReport, Exhausted>
where
    A: ObjectAlgorithm,
    S: SequentialSpec,
{
    let wd = Watchdog::unlimited();
    let opts = ExploreOptions::governed(&wd).with_jobs(jobs);

    let full_imp = explore_system_with(alg, bound, &opts)?;
    let full_spec = explore_system_with(spec, bound, &opts)?;
    let (red_imp, stats) = explore_reduced(alg, bound, mode, &opts)?;
    let (red_spec, _) = explore_reduced(spec, bound, mode, &opts)?;

    let equivalent = bb_bisim::bisimilar(&full_imp, &red_imp, bb_bisim::Equivalence::BranchingDiv)
        && bb_bisim::bisimilar(&full_spec, &red_spec, bb_bisim::Equivalence::BranchingDiv);

    let mut config = VerifyConfig::new(bound).with_jobs(jobs);
    if !check_lock_freedom {
        config = config.linearizability_only();
    }
    let full_report = verify_case_lts(alg.name(), config, &full_imp, &full_spec);
    let red_report = verify_case_lts(alg.name(), config, &red_imp, &red_spec);

    let full_lock_free = full_report.lock_freedom.as_ref().map(|r| r.lock_free);
    let reduced_lock_free = red_report.lock_freedom.as_ref().map(|r| r.lock_free);
    let verdicts_match = full_report.linearizable() == red_report.linearizable()
        && full_lock_free == reduced_lock_free;

    Ok(DifferentialReport {
        name: alg.name(),
        mode,
        bound,
        full_states: full_imp.num_states(),
        full_transitions: full_imp.num_transitions(),
        reduced_states: red_imp.num_states(),
        reduced_transitions: red_imp.num_transitions(),
        equivalent,
        verdicts_match,
        full_linearizable: full_report.linearizable(),
        reduced_linearizable: red_report.linearizable(),
        full_lock_free,
        reduced_lock_free,
        stats,
    })
}

/// [`bb_core::verify_case_governed`] over the *reduced* state spaces: the
/// same budget ladder, rungs and verdict scoping, with every exploration
/// replaced by the reducer. Sound because the reduced systems are `≈div`
/// the unreduced ones, and `≈div` preserves and reflects every checked
/// property (Theorems 5.3/5.9 of the paper).
pub fn verify_case_reduced_governed<A, S>(
    alg: &A,
    spec: &AtomicSpec<S>,
    mode: ReduceMode,
    config: &GovernedConfig,
) -> GovernedReport
where
    A: ObjectAlgorithm,
    S: SequentialSpec,
{
    let explorer = |bound: Bound, wd: &Watchdog| {
        let opts = ExploreOptions::governed(wd).with_jobs(config.jobs);
        let (imp, _) = explore_reduced(alg, bound, mode, &opts)?;
        let (sp, _) = explore_reduced(spec, bound, mode, &opts)?;
        Ok((imp, sp))
    };
    verify_case_governed_with(alg.name(), config, &explorer)
}
