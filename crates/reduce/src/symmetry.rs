//! Thread-symmetry canonicalization.
//!
//! The most general client makes threads interchangeable: thread identity
//! appears in action labels and in per-thread slots of the shared state,
//! but never in the algorithm's logic. Whenever two threads are in
//! **identical** local states (same [`ThreadStatus`], including frame and
//! remaining-operation count), swapping their per-thread shared data yields
//! a state with the *same* future visible behavior — the permuted state and
//! the original are divergence-sensitive branching bisimilar with identical
//! labels — so both may be represented by one canonical element of the
//! orbit.
//!
//! Restricting permutations to identical-status threads is what keeps the
//! quotient label-preserving: permuting threads in *different* local states
//! would relabel their future call/ret actions, which plain `≈div` does not
//! absorb. A corollary checked by the property tests: canonicalization
//! never changes the status vector, so states with different visible
//! pending operations are never merged.

use bb_sim::{ObjectAlgorithm, SysState, System, ThreadPerm, ThreadStatus};

/// Orbit-size cap: states whose identical-status groups span more than this
/// many composite permutations skip canonicalization (deterministically, so
/// the reduced LTS is still a pure function of the input system).
const MAX_ORBIT: usize = 64;

/// What [`canonicalize_symmetry`] did to the state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum SymOutcome {
    /// No two threads shared a status; the state was already canonical.
    Identity,
    /// The orbit exceeded [`MAX_ORBIT`]; the state was left untouched.
    Skipped,
    /// The orbit was searched; `changed` says whether a non-identity
    /// representative replaced the input.
    Canonical {
        /// Whether the representative differs from the input state.
        changed: bool,
    },
}

/// Replaces `st` by the canonical representative of its thread-symmetry
/// orbit: the lexicographically least (by `Debug` rendering of the shared
/// state) among all permutations of identical-status threads, re-run
/// through the heap canonicalizer. Deterministic and constant on orbits.
pub(crate) fn canonicalize_symmetry<A: ObjectAlgorithm>(
    system: &System<'_, A>,
    st: &mut SysState<A::Shared, A::Frame>,
) -> SymOutcome {
    let n = st.threads.len();
    // Group thread indices by identical status.
    let mut groups: Vec<Vec<usize>> = Vec::new();
    for i in 0..n {
        match groups
            .iter_mut()
            .find(|g| st.threads[g[0]] == st.threads[i])
        {
            Some(g) => g.push(i),
            None => groups.push(vec![i]),
        }
    }
    if groups.iter().all(|g| g.len() == 1) {
        return SymOutcome::Identity;
    }
    let mut orbit = 1usize;
    for g in &groups {
        orbit = orbit.saturating_mul(factorial(g.len()));
        if orbit > MAX_ORBIT {
            return SymOutcome::Skipped;
        }
    }
    bb_obs::hot::ORBIT_SIZE.record(orbit as u64);

    // Enumerate every composite permutation (cartesian product of in-group
    // permutations) as a ThreadPerm map.
    let mut maps: Vec<Vec<u8>> = vec![(1..=n as u8).collect()];
    for g in &groups {
        if g.len() == 1 {
            continue;
        }
        let perms = permutations(g.len());
        let mut next = Vec::with_capacity(maps.len() * perms.len());
        for base in &maps {
            for p in &perms {
                let mut m = base.clone();
                for (slot, &src) in p.iter().enumerate() {
                    // Old thread g[src] takes the id of thread g[slot].
                    m[g[src]] = g[slot] as u8 + 1;
                }
                next.push(m);
            }
        }
        maps = next;
    }

    #[allow(clippy::type_complexity)]
    let mut best: Option<(String, SysState<A::Shared, A::Frame>)> = None;
    let original = format!("{:?}", st.shared);
    for map in maps {
        let perm = ThreadPerm::new(map);
        let mut cand = st.clone();
        {
            let SysState { shared, threads } = &mut cand;
            let mut frames: Vec<&mut A::Frame> = threads
                .iter_mut()
                .filter_map(|t| match t {
                    ThreadStatus::Running { frame, .. } => Some(frame),
                    ThreadStatus::Idle { .. } => None,
                })
                .collect();
            system.algorithm().rename_threads(shared, &mut frames, &perm);
        }
        // Relocated slots may change heap root order; re-canonicalize so
        // orbit elements that denote the same abstract state coincide.
        system.canonicalize_state(&mut cand);
        debug_assert_eq!(
            cand.threads, st.threads,
            "symmetry permutation must not move thread statuses"
        );
        let key = format!("{:?}", cand.shared);
        let better = match &best {
            None => true,
            Some((k, _)) => key < *k,
        };
        if better {
            best = Some((key, cand));
        }
    }
    let (key, cand) = best.expect("orbit contains at least the identity");
    let changed = key != original;
    if changed {
        *st = cand;
    }
    SymOutcome::Canonical { changed }
}

fn factorial(k: usize) -> usize {
    (1..=k).product::<usize>().max(1)
}

/// All permutations of `0..k`, in a deterministic order.
fn permutations(k: usize) -> Vec<Vec<usize>> {
    let mut out = Vec::new();
    let mut items: Vec<usize> = (0..k).collect();
    permute(&mut items, 0, &mut out);
    out
}

fn permute(items: &mut Vec<usize>, at: usize, out: &mut Vec<Vec<usize>>) {
    if at == items.len() {
        out.push(items.clone());
        return;
    }
    for i in at..items.len() {
        items.swap(at, i);
        permute(items, at + 1, out);
        items.swap(at, i);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn permutation_enumeration_is_complete() {
        assert_eq!(permutations(1).len(), 1);
        assert_eq!(permutations(3).len(), 6);
        let mut seen = permutations(3);
        seen.sort();
        seen.dedup();
        assert_eq!(seen.len(), 6);
    }

    #[test]
    fn factorials() {
        assert_eq!(factorial(0), 1);
        assert_eq!(factorial(4), 24);
    }
}
