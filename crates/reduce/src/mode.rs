//! Reduction mode selection (`--reduce {none,sym,por,full}`).

use std::fmt;
use std::str::FromStr;

/// Which reduction layers to apply during exploration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ReduceMode {
    /// No reduction: the reduced system is the plain most general client.
    #[default]
    None,
    /// Thread-symmetry canonicalization only.
    Sym,
    /// Ample-set partial-order reduction only.
    Por,
    /// Both layers.
    Full,
}

impl ReduceMode {
    /// Whether thread-symmetry canonicalization is on.
    pub fn sym(self) -> bool {
        matches!(self, ReduceMode::Sym | ReduceMode::Full)
    }

    /// Whether ample-set partial-order reduction is on.
    pub fn por(self) -> bool {
        matches!(self, ReduceMode::Por | ReduceMode::Full)
    }

    /// Every mode, in increasing strength.
    pub const ALL: [ReduceMode; 4] = [
        ReduceMode::None,
        ReduceMode::Sym,
        ReduceMode::Por,
        ReduceMode::Full,
    ];
}

impl fmt::Display for ReduceMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            ReduceMode::None => "none",
            ReduceMode::Sym => "sym",
            ReduceMode::Por => "por",
            ReduceMode::Full => "full",
        })
    }
}

impl FromStr for ReduceMode {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "none" => Ok(ReduceMode::None),
            "sym" => Ok(ReduceMode::Sym),
            "por" => Ok(ReduceMode::Por),
            "full" => Ok(ReduceMode::Full),
            other => Err(format!(
                "unknown reduction mode `{other}` (expected none|sym|por|full)"
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_roundtrip() {
        for m in ReduceMode::ALL {
            assert_eq!(m.to_string().parse::<ReduceMode>().unwrap(), m);
        }
        assert!("por2".parse::<ReduceMode>().is_err());
    }

    #[test]
    fn layer_flags() {
        assert!(!ReduceMode::None.sym() && !ReduceMode::None.por());
        assert!(ReduceMode::Sym.sym() && !ReduceMode::Sym.por());
        assert!(!ReduceMode::Por.sym() && ReduceMode::Por.por());
        assert!(ReduceMode::Full.sym() && ReduceMode::Full.por());
    }
}
