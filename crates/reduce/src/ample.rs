//! Ample-set partial-order reduction for τ-steps.
//!
//! At each state the selector looks for a **designated step**: the
//! lowest-indexed running thread whose next move is (C2) a single,
//! deterministic, invisible τ and (C1) carries a non-[`Footprint::Global`]
//! independence class — a hereditary promise that no co-enabled step of
//! another thread conflicts with it (see [`Footprint`]). When such a step
//! exists and the **chain-termination proviso** below holds, the state's
//! ample set is that singleton (C0) and exploration follows only it.
//!
//! Such a step is an *inert* τ: it commutes with every step of every other
//! thread, so its source and target are divergence-sensitive branching
//! bisimilar, and pruning the siblings preserves `≈div` (τ-confluence
//! reduction in the sense of Groote & van de Pol).
//!
//! **Chain-termination proviso (C3, divergence sensitivity).** Prioritizing
//! τ-steps around a cycle could postpone the other threads forever and,
//! worse, erase a divergence distinction. Before accepting a designated
//! step the selector chases the chain of designated steps it starts: if the
//! chain revisits a state or exceeds [`CHAIN_CAP`] the candidate is
//! rejected and the state fully expanded. The chase is a pure function of
//! the state — independent of exploration order — so the reduced LTS is
//! identical on the serial and parallel engines at any worker count, and
//! the decision is *consistent along the chain*: if a state accepts its
//! designated step, every state the chain passes through accepts its own,
//! and the chain ends in a fully-expanded state.

use bb_lts::{Action, ActionKind, ThreadId};
use bb_sim::{Footprint, ObjectAlgorithm, SysState, System, ThreadStatus};
use std::collections::HashSet;

/// Maximum designated-chain length chased by the proviso before giving up
/// (and falling back to full expansion).
const CHAIN_CAP: usize = 256;

/// The designated ample candidate of `state`, if any: action plus target
/// (heap-canonicalized by `thread_successors`, not yet symmetry-reduced).
#[allow(clippy::type_complexity)]
pub(crate) fn candidate<A: ObjectAlgorithm>(
    system: &System<'_, A>,
    state: &SysState<A::Shared, A::Frame>,
) -> Option<(Action, SysState<A::Shared, A::Frame>)> {
    let mut buf = Vec::new();
    for ti in 0..state.threads.len() {
        let ThreadStatus::Running { frame, .. } = &state.threads[ti] else {
            continue;
        };
        let t = ThreadId(ti as u8 + 1);
        if system.algorithm().footprint(&state.shared, frame, t) == Footprint::Global {
            continue;
        }
        buf.clear();
        system.thread_successors(state, ti, &mut buf);
        // C2: exactly one outcome, and it is internal. A branching or
        // visible step is ineligible; later threads may still qualify.
        if buf.len() == 1 && buf[0].0.kind == ActionKind::Tau {
            return buf.pop();
        }
    }
    None
}

/// Chases the chain of designated steps starting at `first_target`,
/// canonicalizing each state with `canon` exactly as the explorer interns
/// them. Returns `true` when the chain reaches a state with no designated
/// step within [`CHAIN_CAP`] hops; `false` on a revisit (τ-cycle of
/// designated steps) or cap overflow.
pub(crate) fn chain_terminates<A: ObjectAlgorithm>(
    system: &System<'_, A>,
    first_target: &SysState<A::Shared, A::Frame>,
    canon: impl Fn(&mut SysState<A::Shared, A::Frame>),
) -> bool {
    let mut cur = first_target.clone();
    canon(&mut cur);
    let mut visited: HashSet<SysState<A::Shared, A::Frame>> = HashSet::new();
    for _ in 0..CHAIN_CAP {
        if !visited.insert(cur.clone()) {
            return false;
        }
        match candidate(system, &cur) {
            None => return true,
            Some((_, next)) => {
                cur = next;
                canon(&mut cur);
            }
        }
    }
    false
}
