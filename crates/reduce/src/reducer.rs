//! The reduced semantics: a [`Semantics`] wrapper over the most general
//! client applying thread-symmetry canonicalization and ample-set
//! partial-order reduction on the fly.

use crate::ample::{candidate, chain_terminates};
use crate::mode::ReduceMode;
use crate::symmetry::{canonicalize_symmetry, SymOutcome};
use bb_lts::budget::Exhausted;
use bb_lts::{explore_with, Action, ExploreOptions, Lts, Semantics};
use bb_sim::{Bound, ObjectAlgorithm, SysState, System};
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

/// Counters describing what the reducer did during one exploration.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReduceStats {
    /// States expanded through a single designated (ample) step.
    pub ample_states: u64,
    /// States fully expanded (no designated step, or proviso rejection).
    pub expanded_states: u64,
    /// Designated candidates rejected by the chain-termination proviso.
    pub proviso_fallbacks: u64,
    /// Successor states replaced by a different symmetry representative.
    pub sym_merges: u64,
    /// States whose symmetry orbit exceeded the cap and was skipped.
    pub sym_skips: u64,
}

impl fmt::Display for ReduceStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "ample {} / expanded {} (proviso fallbacks {}), sym merges {} (skips {})",
            self.ample_states,
            self.expanded_states,
            self.proviso_fallbacks,
            self.sym_merges,
            self.sym_skips
        )
    }
}

/// The most general client of an algorithm with reduction layers applied.
///
/// Implements [`Semantics`], so any explorer —
/// [`bb_lts::explore_with`] on either engine — unfolds the *reduced* LTS.
/// Successor computation is a pure function of the state (the ample chase
/// and the symmetry orbit search are exploration-order independent), so the
/// reduced LTS is bit-identical at any worker count, exactly like the
/// unreduced system.
#[derive(Debug)]
pub struct ReducedSystem<'a, A: ObjectAlgorithm> {
    system: System<'a, A>,
    mode: ReduceMode,
    ample_states: AtomicU64,
    expanded_states: AtomicU64,
    proviso_fallbacks: AtomicU64,
    sym_merges: AtomicU64,
    sym_skips: AtomicU64,
}

impl<'a, A: ObjectAlgorithm> ReducedSystem<'a, A> {
    /// Wraps the most general client of `alg` under `bound` with the
    /// reduction layers of `mode`.
    pub fn new(alg: &'a A, bound: Bound, mode: ReduceMode) -> Self {
        ReducedSystem {
            system: System::new(alg, bound),
            mode,
            ample_states: AtomicU64::new(0),
            expanded_states: AtomicU64::new(0),
            proviso_fallbacks: AtomicU64::new(0),
            sym_merges: AtomicU64::new(0),
            sym_skips: AtomicU64::new(0),
        }
    }

    /// The active reduction mode.
    pub fn mode(&self) -> ReduceMode {
        self.mode
    }

    /// The wrapped most general client.
    pub fn system(&self) -> &System<'a, A> {
        &self.system
    }

    /// Snapshot of the reduction counters.
    pub fn stats(&self) -> ReduceStats {
        ReduceStats {
            ample_states: self.ample_states.load(Ordering::Relaxed),
            expanded_states: self.expanded_states.load(Ordering::Relaxed),
            proviso_fallbacks: self.proviso_fallbacks.load(Ordering::Relaxed),
            sym_merges: self.sym_merges.load(Ordering::Relaxed),
            sym_skips: self.sym_skips.load(Ordering::Relaxed),
        }
    }

    /// Applies the symmetry layer (when enabled) to a state about to be
    /// handed to the explorer.
    fn canon(&self, st: &mut SysState<A::Shared, A::Frame>) {
        if !self.mode.sym() {
            return;
        }
        match canonicalize_symmetry(&self.system, st) {
            SymOutcome::Identity => {}
            SymOutcome::Skipped => {
                self.sym_skips.fetch_add(1, Ordering::Relaxed);
                bb_obs::hot::SYM_SKIPS.incr();
            }
            SymOutcome::Canonical { changed } => {
                if changed {
                    self.sym_merges.fetch_add(1, Ordering::Relaxed);
                    bb_obs::hot::SYM_MERGES.incr();
                }
            }
        }
    }
}

impl<A: ObjectAlgorithm> Semantics for ReducedSystem<'_, A> {
    type State = SysState<A::Shared, A::Frame>;

    fn initial_state(&self) -> Self::State {
        let mut st = self.system.initial_state();
        self.canon(&mut st);
        st
    }

    fn successors(&self, state: &Self::State, out: &mut Vec<(Action, Self::State)>) {
        if self.mode.por() {
            if let Some((action, mut target)) = candidate(&self.system, state) {
                if chain_terminates(&self.system, &target, |st| self.canon(st)) {
                    self.ample_states.fetch_add(1, Ordering::Relaxed);
                    bb_obs::hot::AMPLE_HITS.incr();
                    self.canon(&mut target);
                    out.push((action, target));
                    return;
                }
                self.proviso_fallbacks.fetch_add(1, Ordering::Relaxed);
                bb_obs::hot::AMPLE_FALLBACKS.incr();
            }
        }
        self.expanded_states.fetch_add(1, Ordering::Relaxed);
        bb_obs::hot::AMPLE_MISSES.incr();
        let base = out.len();
        self.system.successors(state, out);
        if self.mode.sym() {
            for (_, target) in out[base..].iter_mut() {
                self.canon(target);
            }
            // Symmetry can collapse two sibling successors onto the same
            // representative; keep the first occurrence of each pair so the
            // reduced LTS has no duplicate transitions.
            let mut i = base;
            while i < out.len() {
                if out[base..i].contains(&out[i]) {
                    out.remove(i);
                } else {
                    i += 1;
                }
            }
        }
    }
}

/// Unfolds the reduced most general client of `alg` under `bound` into an
/// explicit LTS, returning the reduction counters alongside.
///
/// # Errors
///
/// Returns [`Exhausted`] (stage `explore`) when any budget axis trips.
pub fn explore_reduced<A: ObjectAlgorithm>(
    alg: &A,
    bound: Bound,
    mode: ReduceMode,
    opts: &ExploreOptions<'_>,
) -> Result<(Lts, ReduceStats), Exhausted> {
    let span = bb_obs::span("reduce")
        .with("object", alg.name())
        .with("mode", format!("{mode:?}"));
    let reduced = ReducedSystem::new(alg, bound, mode);
    let lts = explore_with(&reduced, opts)?;
    let stats = reduced.stats();
    span.record("ample_states", stats.ample_states);
    span.record("expanded_states", stats.expanded_states);
    span.record("proviso_fallbacks", stats.proviso_fallbacks);
    span.record("sym_merges", stats.sym_merges);
    span.record("sym_skips", stats.sym_skips);
    span.record("reduced_states", lts.num_states());
    Ok((lts, stats))
}
