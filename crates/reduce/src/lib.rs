//! On-the-fly state-space reduction preserving `≈div`.
//!
//! Exploration under the most general client enumerates every interleaving,
//! but the paper's verification theorems (5.2/5.3/5.8/5.9) only need the
//! object LTS *up to divergence-sensitive branching bisimilarity*. This
//! crate exploits that slack with two composable layers applied during
//! exploration, both packaged as a [`Semantics`](bb_lts::Semantics) wrapper
//! ([`ReducedSystem`]) so either exploration engine unfolds the reduced LTS
//! directly:
//!
//! * **Thread-symmetry canonicalization** — states differing only by a
//!   permutation of per-thread shared data among threads in *identical*
//!   local states are merged onto one orbit representative (see
//!   [`bb_sim::ObjectAlgorithm::rename_threads`]).
//! * **Ample-set partial-order reduction** — when a thread's next step is a
//!   single invisible τ whose [`bb_sim::Footprint`] promises hereditary
//!   independence, only that step is explored; a chain-termination proviso
//!   keeps the reduction divergence-sensitive.
//!
//! Every annotation feeding the reducer is cross-checked by the
//! [`differential_check`] harness: the reduced LTS must be `≈div` the full
//! one and produce identical pipeline verdicts. Run it from the CLI with
//! `bbv reduce-check <algorithm|all>`.

mod ample;
mod differential;
mod mode;
mod reducer;
pub mod scratch;
mod symmetry;

pub use differential::{differential_check, verify_case_reduced_governed, DifferentialReport};
pub use mode::ReduceMode;
pub use reducer::{explore_reduced, ReduceStats, ReducedSystem};

use bb_sim::{ObjectAlgorithm, SysState, System};

/// Replaces `st` by the canonical representative of its thread-symmetry
/// orbit (exposed for the property tests; [`ReducedSystem`] applies it
/// automatically when the mode enables symmetry).
pub fn canonical_state<A: ObjectAlgorithm>(
    system: &System<'_, A>,
    st: &mut SysState<A::Shared, A::Frame>,
) {
    symmetry::canonicalize_symmetry(system, st);
}

#[cfg(test)]
mod tests {
    use super::scratch::ScratchPad;
    use super::*;
    use bb_lts::{ExploreOptions, Jobs, Semantics, ThreadId};
    use bb_sim::{explore_system_with, AtomicSpec, Bound, ThreadPerm, ThreadStatus};

    #[test]
    fn scratch_pad_reduces_and_stays_equivalent() {
        let alg = ScratchPad::new(&[1, 2], 2);
        let bound = Bound::new(2, 1);
        let full = explore_system_with(&alg, bound, &ExploreOptions::new()).unwrap();
        for mode in ReduceMode::ALL {
            let (red, stats) =
                explore_reduced(&alg, bound, mode, &ExploreOptions::new()).unwrap();
            assert!(
                bb_bisim::bisimilar(&full, &red, bb_bisim::Equivalence::BranchingDiv),
                "{mode}: reduced LTS must stay ≈div the full one"
            );
            if mode == ReduceMode::Full {
                assert!(
                    red.num_states() < full.num_states(),
                    "full reduction must shrink the scratch pad ({} vs {})",
                    red.num_states(),
                    full.num_states()
                );
                assert!(stats.ample_states > 0, "ample steps must fire");
                assert!(stats.sym_merges > 0, "symmetry merges must fire");
            }
        }
    }

    #[test]
    fn mode_none_is_the_identity() {
        let alg = ScratchPad::new(&[1, 2], 2);
        let bound = Bound::new(2, 1);
        let full = explore_system_with(&alg, bound, &ExploreOptions::new()).unwrap();
        let (red, stats) =
            explore_reduced(&alg, bound, ReduceMode::None, &ExploreOptions::new()).unwrap();
        assert_eq!(bb_lts::to_aut(&full), bb_lts::to_aut(&red));
        assert_eq!(stats.ample_states, 0);
        assert_eq!(stats.sym_merges, 0);
    }

    #[test]
    fn reduction_is_deterministic_across_worker_counts() {
        let alg = ScratchPad::new(&[1, 2], 3);
        let bound = Bound::new(3, 1);
        let (base, _) =
            explore_reduced(&alg, bound, ReduceMode::Full, &ExploreOptions::new()).unwrap();
        for jobs in [2, 4] {
            let (par, _) = explore_reduced(
                &alg,
                bound,
                ReduceMode::Full,
                &ExploreOptions::new().with_jobs(Jobs::new(jobs)),
            )
            .unwrap();
            assert_eq!(
                bb_lts::to_aut(&base),
                bb_lts::to_aut(&par),
                "{jobs} jobs must produce the identical reduced LTS"
            );
        }
    }

    #[test]
    fn differential_harness_passes_on_scratch_pad_spec() {
        // The scratch pad has no sequential spec; run the harness on a spec
        // object against itself instead (reduction is a sound no-op there).
        let spec = AtomicSpec::new(ScratchSpec);
        let r = differential_check(
            &spec,
            &AtomicSpec::new(ScratchSpec),
            Bound::new(2, 1),
            ReduceMode::Full,
            Jobs::serial(),
            false,
        )
        .unwrap();
        assert!(r.passed(), "{}", r.render());
    }

    /// Minimal sequential spec for the differential smoke test.
    #[derive(Debug, Clone, PartialEq, Eq, Hash)]
    struct ScratchSpec;

    bb_sim::impl_pack!(struct ScratchSpec {});

    impl bb_sim::SequentialSpec for ScratchSpec {
        fn name(&self) -> &'static str {
            "scratch spec"
        }

        fn methods(&self) -> Vec<bb_sim::MethodSpec> {
            vec![bb_sim::MethodSpec::no_arg("nop")]
        }

        fn apply(&self, _method: bb_sim::MethodId, _arg: Option<i64>) -> (Self, Option<i64>) {
            (ScratchSpec, None)
        }
    }

    #[test]
    fn canonical_state_constant_on_orbit() {
        // Put the two threads in identical statuses with different residue,
        // permute the slots, and check both canonicalize identically.
        let alg = ScratchPad::new(&[1, 2], 2);
        let system = System::new(&alg, Bound::new(2, 1));
        let mut a = Semantics::initial_state(&system);
        a.shared.slots = vec![1, 2];
        for t in a.threads.iter_mut() {
            *t = ThreadStatus::Idle { remaining: 0 };
        }
        let mut b = a.clone();
        ThreadPerm::new(vec![2, 1]).apply_vec(&mut b.shared.slots);
        assert_ne!(a, b);
        canonical_state(&system, &mut a);
        canonical_state(&system, &mut b);
        assert_eq!(a, b, "orbit elements must share one representative");
        let _ = ThreadId(1);
    }
}
