//! A synthetic workload exercising both reduction layers.
//!
//! Each thread owns one write-only scratch slot: `put(v)` performs a single
//! internal step writing `v` into the caller's slot and returns. Slot
//! contents are **never read**, so the residue a finished operation leaves
//! behind is invisible — states differing only by a permutation of slots
//! among identical-status threads are genuinely equivalent, which makes
//! this the sharpest test of thread-symmetry canonicalization (real
//! algorithms rarely keep invisible residue around). The private write is
//! likewise an ideal ample step for the partial-order layer.

use bb_lts::ThreadId;
use bb_sim::{Footprint, MethodId, MethodSpec, ObjectAlgorithm, Outcome, ThreadPerm, Value};

/// The scratch-pad object: per-thread write-only slots.
#[derive(Debug, Clone)]
pub struct ScratchPad {
    threads: u8,
    domain: Vec<Value>,
}

impl ScratchPad {
    /// Scratch pad for `threads` client threads writing values of `domain`.
    pub fn new(domain: &[Value], threads: u8) -> Self {
        ScratchPad {
            threads,
            domain: domain.to_vec(),
        }
    }
}

/// Shared state: one slot per thread (0 initially; never read).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Shared {
    /// Per-thread scratch slots.
    pub slots: Vec<Value>,
}

bb_sim::impl_pack!(struct Shared { slots });

/// Per-invocation frames.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Frame {
    /// About to write the argument into the caller's slot.
    Write {
        /// Value to write.
        v: Value,
    },
    /// Method complete.
    Done,
}

bb_sim::impl_pack!(enum Frame { 0 => Write { v }, 1 => Done });

impl ObjectAlgorithm for ScratchPad {
    type Shared = Shared;
    type Frame = Frame;

    fn name(&self) -> &'static str {
        "scratch pad"
    }

    fn methods(&self) -> Vec<MethodSpec> {
        vec![MethodSpec::with_args("put", &self.domain)]
    }

    fn initial_shared(&self) -> Shared {
        Shared {
            slots: vec![0; self.threads as usize],
        }
    }

    fn begin(&self, _method: MethodId, arg: Option<Value>, _t: ThreadId) -> Frame {
        Frame::Write {
            v: arg.expect("put takes a value"),
        }
    }

    fn step(
        &self,
        shared: &Shared,
        frame: &Frame,
        t: ThreadId,
        out: &mut Vec<Outcome<Shared, Frame>>,
    ) {
        match frame {
            Frame::Write { v } => {
                let mut s = shared.clone();
                s.slots[(t.0 - 1) as usize] = *v;
                out.push(Outcome::Tau {
                    shared: s,
                    frame: Frame::Done,
                    tag: "W1",
                });
            }
            Frame::Done => out.push(Outcome::Ret {
                shared: shared.clone(),
                val: None,
                tag: "",
            }),
        }
    }

    fn footprint(&self, _shared: &Shared, frame: &Frame, _t: ThreadId) -> Footprint {
        match frame {
            // The slot is written by its owner alone and never read.
            Frame::Write { .. } => Footprint::Private,
            Frame::Done => Footprint::Global,
        }
    }

    fn rename_threads(&self, shared: &mut Shared, _frames: &mut [&mut Frame], perm: &ThreadPerm) {
        perm.apply_vec(&mut shared.slots);
    }
}
