//! Bounded trace enumeration (test and teaching aid).

use bb_lts::{Lts, Observation, StateId};
use std::collections::BTreeSet;

/// Enumerates all traces of `lts` of length at most `max_len`.
///
/// Intended for small systems in tests and examples; the result grows
/// exponentially with `max_len`. Traces are returned as a sorted set so
/// equality comparisons between systems are stable.
pub fn enumerate_traces(lts: &Lts, max_len: usize) -> BTreeSet<Vec<Observation>> {
    let mut out = BTreeSet::new();
    out.insert(Vec::new());
    // DFS over (state, trace-so-far) with visited-set per trace length to
    // tame τ-cycles: we track (state, length) pairs already expanded with
    // the same residual budget.
    let mut seen: BTreeSet<(StateId, usize)> = BTreeSet::new();
    let mut stack: Vec<(StateId, Vec<Observation>)> = vec![(lts.initial(), Vec::new())];
    while let Some((s, trace)) = stack.pop() {
        if !seen.insert((s, trace.len())) {
            continue;
        }
        for t in lts.successors(s) {
            match lts.action(t.action).observation() {
                None => stack.push((t.target, trace.clone())),
                Some(obs) => {
                    if trace.len() < max_len {
                        let mut next = trace.clone();
                        next.push(obs);
                        out.insert(next.clone());
                        stack.push((t.target, next));
                    }
                }
            }
        }
    }
    out
}

/// Renders a trace in the paper's history notation.
pub fn trace_to_string(trace: &[Observation]) -> String {
    trace
        .iter()
        .map(|o| o.to_string())
        .collect::<Vec<_>>()
        .join("  ")
}

#[cfg(test)]
mod tests {
    use super::*;
    use bb_lts::{Action, LtsBuilder, ThreadId};

    #[test]
    fn traces_of_a_choice() {
        let mut b = LtsBuilder::new();
        let s0 = b.add_state();
        let s1 = b.add_state();
        let s2 = b.add_state();
        let x = b.intern_action(Action::call(ThreadId(1), "x", None));
        let y = b.intern_action(Action::call(ThreadId(1), "y", None));
        b.add_transition(s0, x, s1);
        b.add_transition(s0, y, s2);
        let lts = b.build(s0);
        let traces = enumerate_traces(&lts, 3);
        assert_eq!(traces.len(), 3); // ε, x, y
    }

    #[test]
    fn tau_cycles_do_not_hang() {
        let mut b = LtsBuilder::new();
        let s0 = b.add_state();
        let s1 = b.add_state();
        let tau = b.intern_action(Action::tau(ThreadId(1)));
        let x = b.intern_action(Action::call(ThreadId(1), "x", None));
        b.add_transition(s0, tau, s0);
        b.add_transition(s0, x, s1);
        let lts = b.build(s0);
        let traces = enumerate_traces(&lts, 2);
        assert_eq!(traces.len(), 2); // ε, x
    }

    #[test]
    fn bounded_length() {
        let mut b = LtsBuilder::new();
        let s0 = b.add_state();
        let x = b.intern_action(Action::call(ThreadId(1), "x", None));
        b.add_transition(s0, x, s0);
        let lts = b.build(s0);
        let traces = enumerate_traces(&lts, 4);
        assert_eq!(traces.len(), 5); // ε, x, xx, xxx, xxxx
    }

    #[test]
    fn render() {
        let obs = Action::call(ThreadId(2), "Enq", Some(10)).observation().unwrap();
        let obs2 = Action::ret(ThreadId(2), "Enq", None).observation().unwrap();
        assert_eq!(trace_to_string(&[obs, obs2]), "t2.call.Enq(10)  t2.ret.Enq");
    }
}
