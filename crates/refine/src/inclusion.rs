//! Antichain-based trace inclusion between two LTSs.

use bb_lts::budget::{Exhausted, Stage, Watchdog};
use bb_lts::{tau_closure_from, ActionId, Lts, Observation, StateId};
use std::collections::HashMap;

/// A refinement violation: a shortest history of the implementation that the
/// specification cannot produce.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// The offending trace; its last observation is the step the
    /// specification cannot match.
    pub trace: Vec<Observation>,
}

impl Violation {
    /// Renders the trace in the paper's history notation.
    pub fn to_pretty(&self) -> String {
        self.trace
            .iter()
            .map(|o| o.to_string())
            .collect::<Vec<_>>()
            .join("  ")
    }
}

/// Outcome of a [`trace_refines`] check.
#[derive(Debug, Clone)]
pub struct RefinementResult {
    /// `true` iff every trace of the implementation is a trace of the spec.
    pub holds: bool,
    /// A shortest counterexample when `holds` is `false`.
    pub violation: Option<Violation>,
    /// Number of product states explored (diagnostic/benchmark metric).
    pub product_states: usize,
}

/// Interned store of specification state subsets.
#[derive(Default)]
struct SubsetStore {
    ids: HashMap<Vec<StateId>, u32>,
    sets: Vec<Vec<StateId>>,
}

impl SubsetStore {
    fn intern(&mut self, set: Vec<StateId>) -> u32 {
        if let Some(&id) = self.ids.get(&set) {
            return id;
        }
        let id = self.sets.len() as u32;
        self.sets.push(set.clone());
        self.ids.insert(set, id);
        id
    }
}

/// Checks `imp ⊑tr spec` (Definition 2.2): every trace of `imp` is a trace
/// of `spec`.
///
/// The specification is determinized on the fly by a τ-closed subset
/// construction; the breadth-first product search is pruned by an antichain
/// (a product node `(s, D)` is skipped when some `(s, D')` with `D' ⊆ D` was
/// already visited), which preserves both soundness and the minimality of
/// the returned counterexample.
///
/// ```
/// use bb_lts::{Action, LtsBuilder, ThreadId};
/// use bb_refine::trace_refines;
///
/// let mut b = LtsBuilder::new();
/// let s0 = b.add_state();
/// let s1 = b.add_state();
/// let a = b.intern_action(Action::call(ThreadId(1), "m", None));
/// b.add_transition(s0, a, s1);
/// let one_step = b.build(s0);
///
/// let mut b = LtsBuilder::new();
/// let s0 = b.add_state();
/// let empty = b.build(s0);
///
/// assert!(trace_refines(&empty, &one_step).holds);
/// let r = trace_refines(&one_step, &empty);
/// assert!(!r.holds);
/// assert_eq!(r.violation.unwrap().to_pretty(), "t1.call.m");
/// ```
pub fn trace_refines(imp: &Lts, spec: &Lts) -> RefinementResult {
    trace_refines_with(imp, spec, RefineOptions::default())
}

/// Tuning knobs for [`trace_refines_with`] (ablation studies).
#[derive(Debug, Clone, Copy)]
pub struct RefineOptions {
    /// Prune the product by the subset antichain (default). Disabling it
    /// falls back to exact `(state, subset)` memoization — the ablation
    /// measured in `benches/lin_check.rs`.
    pub antichain: bool,
}

impl Default for RefineOptions {
    fn default() -> Self {
        RefineOptions { antichain: true }
    }
}

/// [`trace_refines`] with explicit [`RefineOptions`].
pub fn trace_refines_with(imp: &Lts, spec: &Lts, options: RefineOptions) -> RefinementResult {
    trace_refines_governed(imp, spec, options, &Watchdog::unlimited())
        .expect("an unlimited watchdog never trips")
}

/// Budget-governed [`trace_refines_with`]: every product node counts
/// against the state cap, every scanned implementation edge against the
/// transition cap, and interned specification subsets against the memory
/// cap; the deadline and cancellation token are observed from the product
/// BFS loop (stage [`Stage::Refine`]).
///
/// # Errors
///
/// Returns [`Exhausted`] when the budget trips before the search concludes;
/// an aborted search proves neither refinement nor violation.
pub fn trace_refines_governed(
    imp: &Lts,
    spec: &Lts,
    options: RefineOptions,
    wd: &Watchdog,
) -> Result<RefinementResult, Exhausted> {
    let span = bb_obs::span("refine")
        .with("imp_states", imp.num_states())
        .with("spec_states", spec.num_states());
    let mut meter = wd.meter(Stage::Refine);
    // Spec observation index: observation -> spec action ids.
    let spec_index = spec.observation_index();
    // Implementation action -> optional observation (None = τ).
    let imp_obs: Vec<Option<Observation>> =
        imp.actions().iter().map(|a| a.observation()).collect();

    let mut subsets = SubsetStore::default();
    let init_subset = subsets.intern(tau_closure_from(spec, &[spec.initial()]));
    meter.add_state()?;
    meter.add_memory(subset_bytes(&subsets.sets[init_subset as usize]))?;

    /// A node of the BFS forest, remembering how it was reached.
    struct Node {
        imp_state: StateId,
        subset: u32,
        parent: Option<(usize, Option<u32>)>, // (node idx, imp action idx if visible)
    }

    let mut nodes: Vec<Node> = vec![Node {
        imp_state: imp.initial(),
        subset: init_subset,
        parent: None,
    }];
    // Antichain of minimal subsets per implementation state.
    let mut visited: HashMap<StateId, Vec<u32>> = HashMap::new();
    visited.insert(imp.initial(), vec![init_subset]);

    let mut cursor = 0usize;
    while cursor < nodes.len() {
        let (s, subset_id) = (nodes[cursor].imp_state, nodes[cursor].subset);
        for t in imp.successors(s) {
            meter.add_transition()?;
            match &imp_obs[t.action.index()] {
                None => {
                    // τ-step: spec subset unchanged.
                    let before = nodes.len();
                    try_push(
                        &mut nodes,
                        &mut visited,
                        &subsets,
                        t.target,
                        subset_id,
                        (cursor, None),
                        options.antichain,
                    );
                    if nodes.len() > before {
                        meter.add_state()?;
                    }
                }
                Some(obs) => {
                    let next = spec_step(spec, &subsets.sets[subset_id as usize], &spec_index, obs);
                    if next.is_empty() {
                        // Violation: reconstruct the trace.
                        let mut rev: Vec<Observation> = vec![obs.clone()];
                        let mut at = cursor;
                        loop {
                            let node = &nodes[at];
                            match node.parent {
                                None => break,
                                Some((p, via)) => {
                                    if let Some(aid) = via {
                                        let a = imp.action(ActionId(aid));
                                        rev.push(
                                            a.observation()
                                                .expect("recorded actions are visible"),
                                        );
                                    }
                                    at = p;
                                }
                            }
                        }
                        rev.reverse();
                        span.record("holds", 0u64);
                        span.record("product_states", nodes.len());
                        span.record("spec_subsets", subsets.sets.len());
                        bb_obs::hot::REFINE_PRODUCT_STATES.add(nodes.len() as u64);
                        bb_obs::hot::REFINE_SUBSETS.add(subsets.sets.len() as u64);
                        return Ok(RefinementResult {
                            holds: false,
                            violation: Some(Violation { trace: rev }),
                            product_states: nodes.len(),
                        });
                    }
                    let next_id = {
                        let stored = subsets.sets.len();
                        let mut store_next = next;
                        store_next.sort_unstable();
                        store_next.dedup();
                        let id = subsets.intern(store_next);
                        if subsets.sets.len() > stored {
                            meter.add_memory(subset_bytes(&subsets.sets[id as usize]))?;
                        }
                        id
                    };
                    let before = nodes.len();
                    try_push(
                        &mut nodes,
                        &mut visited,
                        &subsets,
                        t.target,
                        next_id,
                        (cursor, Some(t.action.0)),
                        options.antichain,
                    );
                    if nodes.len() > before {
                        meter.add_state()?;
                    }
                }
            }
        }
        cursor += 1;
    }

    #[allow(clippy::too_many_arguments)]
    fn try_push(
        nodes: &mut Vec<Node>,
        visited: &mut HashMap<StateId, Vec<u32>>,
        subsets: &SubsetStore,
        imp_state: StateId,
        subset: u32,
        parent: (usize, Option<u32>),
        antichain: bool,
    ) {
        let entry = visited.entry(imp_state).or_default();
        if !antichain {
            // Exact memoization only.
            if entry.contains(&subset) {
                return;
            }
            entry.push(subset);
            nodes.push(Node {
                imp_state,
                subset,
                parent: Some(parent),
            });
            return;
        }
        let set = &subsets.sets[subset as usize];
        // Skip if a visited subset is contained in `set`.
        for &v in entry.iter() {
            if is_subset(&subsets.sets[v as usize], set) {
                return;
            }
        }
        // Maintain the antichain: drop visited supersets of `set`.
        entry.retain(|&v| !is_subset(set, &subsets.sets[v as usize]));
        entry.push(subset);
        nodes.push(Node {
            imp_state,
            subset,
            parent: Some(parent),
        });
    }

    span.record("holds", 1u64);
    span.record("product_states", nodes.len());
    span.record("spec_subsets", subsets.sets.len());
    bb_obs::hot::REFINE_PRODUCT_STATES.add(nodes.len() as u64);
    bb_obs::hot::REFINE_SUBSETS.add(subsets.sets.len() as u64);
    Ok(RefinementResult {
        holds: true,
        violation: None,
        product_states: nodes.len(),
    })
}

/// Approximate heap footprint of one interned specification subset: the two
/// copies (set list and id map key) plus hash-map bookkeeping.
fn subset_bytes(set: &[StateId]) -> usize {
    2 * set.len() * std::mem::size_of::<StateId>() + 48
}

/// Sorted-slice subset test: is `a ⊆ b`?
fn is_subset(a: &[StateId], b: &[StateId]) -> bool {
    if a.len() > b.len() {
        return false;
    }
    let mut i = 0;
    for x in b {
        if i == a.len() {
            return true;
        }
        if a[i] == *x {
            i += 1;
        } else if a[i] < *x {
            return false;
        }
    }
    i == a.len()
}

/// One determinized step of the specification: from subset `set`, perform
/// observation `obs` and take the τ-closure of the result.
fn spec_step(
    spec: &Lts,
    set: &[StateId],
    index: &HashMap<Observation, Vec<ActionId>>,
    obs: &Observation,
) -> Vec<StateId> {
    let Some(action_ids) = index.get(obs) else {
        return Vec::new();
    };
    let mut targets = Vec::new();
    for &s in set {
        for t in spec.successors(s) {
            if action_ids.contains(&t.action) {
                targets.push(t.target);
            }
        }
    }
    if targets.is_empty() {
        return targets;
    }
    tau_closure_from(spec, &targets)
}

/// Checks mutual trace refinement (`trace(a) = trace(b)`).
///
/// Used for the lock-freedom shortcut at the end of Section V-B: if the
/// quotient is trace-equivalent to the (divergence-free) specification, it
/// is lock-free.
pub fn trace_equivalent(a: &Lts, b: &Lts) -> bool {
    trace_refines(a, b).holds && trace_refines(b, a).holds
}

#[cfg(test)]
mod tests {
    use super::*;
    use bb_lts::{Action, LtsBuilder, ThreadId};

    fn seq(labels: &[&str]) -> Lts {
        let mut b = LtsBuilder::new();
        let mut prev = b.add_state();
        let init = prev;
        for l in labels {
            let next = b.add_state();
            let a = b.intern_action(Action::call(ThreadId(1), l, None));
            b.add_transition(prev, a, next);
            prev = next;
        }
        b.build(init)
    }

    #[test]
    fn identical_systems_refine() {
        let a = seq(&["x", "y"]);
        let b = seq(&["x", "y"]);
        assert!(trace_refines(&a, &b).holds);
        assert!(trace_equivalent(&a, &b));
    }

    #[test]
    fn prefix_refines_extension() {
        let short = seq(&["x"]);
        let long = seq(&["x", "y"]);
        assert!(trace_refines(&short, &long).holds);
        assert!(!trace_refines(&long, &short).holds);
        assert!(!trace_equivalent(&short, &long));
    }

    #[test]
    fn counterexample_is_shortest() {
        let imp = seq(&["x", "y", "z"]);
        let spec = seq(&["x", "q"]);
        let r = trace_refines(&imp, &spec);
        assert!(!r.holds);
        let v = r.violation.unwrap();
        assert_eq!(v.trace.len(), 2);
        assert_eq!(&*v.trace[1].method, "y");
    }

    #[test]
    fn tau_steps_are_invisible() {
        // imp: x then τ then y; spec: x then y.
        let mut b = LtsBuilder::new();
        let s0 = b.add_state();
        let s1 = b.add_state();
        let s2 = b.add_state();
        let s3 = b.add_state();
        let x = b.intern_action(Action::call(ThreadId(1), "x", None));
        let tau = b.intern_action(Action::tau(ThreadId(1)));
        let y = b.intern_action(Action::call(ThreadId(1), "y", None));
        b.add_transition(s0, x, s1);
        b.add_transition(s1, tau, s2);
        b.add_transition(s2, y, s3);
        let imp = b.build(s0);
        let spec = seq(&["x", "y"]);
        assert!(trace_equivalent(&imp, &spec));
    }

    #[test]
    fn nondeterministic_spec_accepts_both_branches() {
        // spec: x.(y + z) as two nondeterministic x-branches.
        let mut b = LtsBuilder::new();
        let s0 = b.add_state();
        let l = b.add_state();
        let r = b.add_state();
        let e1 = b.add_state();
        let e2 = b.add_state();
        let x = b.intern_action(Action::call(ThreadId(1), "x", None));
        let y = b.intern_action(Action::call(ThreadId(1), "y", None));
        let z = b.intern_action(Action::call(ThreadId(1), "z", None));
        b.add_transition(s0, x, l);
        b.add_transition(s0, x, r);
        b.add_transition(l, y, e1);
        b.add_transition(r, z, e2);
        let spec = b.build(s0);

        let imp_y = seq(&["x", "y"]);
        let imp_z = seq(&["x", "z"]);
        assert!(trace_refines(&imp_y, &spec).holds);
        assert!(trace_refines(&imp_z, &spec).holds);
        let imp_bad = seq(&["x", "x"]);
        assert!(!trace_refines(&imp_bad, &spec).holds);
    }

    #[test]
    fn spec_with_tau_choice() {
        // spec: τ.x + τ.y — both x and y must be accepted as first letters.
        let mut b = LtsBuilder::new();
        let s0 = b.add_state();
        let l = b.add_state();
        let r = b.add_state();
        let e1 = b.add_state();
        let e2 = b.add_state();
        let tau = b.intern_action(Action::tau(ThreadId(1)));
        let x = b.intern_action(Action::call(ThreadId(1), "x", None));
        let y = b.intern_action(Action::call(ThreadId(1), "y", None));
        b.add_transition(s0, tau, l);
        b.add_transition(s0, tau, r);
        b.add_transition(l, x, e1);
        b.add_transition(r, y, e2);
        let spec = b.build(s0);
        assert!(trace_refines(&seq(&["x"]), &spec).holds);
        assert!(trace_refines(&seq(&["y"]), &spec).holds);
        assert!(!trace_refines(&seq(&["x", "x"]), &spec).holds);
    }

    #[test]
    fn cyclic_implementation_terminates() {
        // imp: loop on x; spec: loop on x.
        let mut b = LtsBuilder::new();
        let s0 = b.add_state();
        let x = b.intern_action(Action::call(ThreadId(1), "x", None));
        b.add_transition(s0, x, s0);
        let imp = b.build(s0);
        let mut b = LtsBuilder::new();
        let s0 = b.add_state();
        let s1 = b.add_state();
        let x = b.intern_action(Action::call(ThreadId(1), "x", None));
        b.add_transition(s0, x, s1);
        b.add_transition(s1, x, s0);
        let spec = b.build(s0);
        assert!(trace_equivalent(&imp, &spec));
    }

    #[test]
    fn antichain_and_exact_memoization_agree() {
        use bb_lts::{random_lts, RandomLtsConfig};
        for seed in 0..25u64 {
            let a = random_lts(seed, RandomLtsConfig::default());
            let b = random_lts(seed + 1000, RandomLtsConfig::default());
            let with = trace_refines_with(&a, &b, RefineOptions { antichain: true });
            let without = trace_refines_with(&a, &b, RefineOptions { antichain: false });
            assert_eq!(with.holds, without.holds, "seed {seed}");
            // The antichain can only shrink the explored product.
            assert!(with.product_states <= without.product_states, "seed {seed}");
        }
    }

    #[test]
    fn value_mismatch_is_caught() {
        let mut b = LtsBuilder::new();
        let s0 = b.add_state();
        let s1 = b.add_state();
        let a = b.intern_action(Action::ret(ThreadId(1), "deq", Some(1)));
        b.add_transition(s0, a, s1);
        let imp = b.build(s0);
        let mut b = LtsBuilder::new();
        let s0 = b.add_state();
        let s1 = b.add_state();
        let a = b.intern_action(Action::ret(ThreadId(1), "deq", Some(2)));
        b.add_transition(s0, a, s1);
        let spec = b.build(s0);
        let r = trace_refines(&imp, &spec);
        assert!(!r.holds);
        assert_eq!(r.violation.unwrap().trace.len(), 1);
    }
}
