//! Trace refinement and trace equivalence of object systems.
//!
//! Linearizability of an object system `Δ` w.r.t. its linearizable
//! specification `Θsp` is exactly trace refinement `Δ ⊑tr Θsp`
//! (Definition 2.2, Theorem 2.3), and it suffices to check refinement
//! between the branching-bisimulation quotients (Theorem 5.3). This crate
//! decides trace inclusion by determinizing the specification on the fly
//! (τ-closed subset construction) and searching the product with the
//! implementation, pruned by an antichain over the subset component. A
//! failure yields a *shortest* non-conforming history, which is the
//! bug-hunting counterexample of Section VI-F.

mod inclusion;
mod traces;

pub use inclusion::{
    trace_equivalent, trace_refines, trace_refines_governed, trace_refines_with, RefineOptions,
    RefinementResult, Violation,
};
pub use traces::{enumerate_traces, trace_to_string};
