//! Linearizable specifications: sequential objects lifted to atomic-block
//! object programs (Section II-C).

use crate::algorithm::{MethodId, MethodSpec, ObjectAlgorithm, Outcome};
use crate::Value;
use bb_lts::ThreadId;
use std::fmt::Debug;
use std::hash::Hash;

/// A sequential (functional) specification of an object: queue, stack, set,
/// register…
///
/// The specification is deterministic: applying a method to a state yields
/// exactly one successor state and return value.
pub trait SequentialSpec: Clone + Eq + Hash + Debug + Send + Sync + crate::Pack {
    /// Name used in reports.
    fn name(&self) -> &'static str;
    /// The object's methods (must match the concrete implementation's
    /// methods for refinement checking).
    fn methods(&self) -> Vec<MethodSpec>;
    /// Applies `method(arg)` atomically, returning the new state and the
    /// return value.
    fn apply(&self, method: MethodId, arg: Option<Value>) -> (Self, Option<Value>);
}

/// The linearizable specification `Θsp` of a sequential object: every method
/// body is a single atomic block, so each method execution is exactly
/// `(t, call, m(n)) · τ · (t, ret(n'), m)`.
#[derive(Debug, Clone)]
pub struct AtomicSpec<S: SequentialSpec> {
    initial: S,
}

impl<S: SequentialSpec> AtomicSpec<S> {
    /// Wraps a sequential object into its linearizable specification.
    pub fn new(initial: S) -> Self {
        AtomicSpec { initial }
    }
}

/// Frame of an atomic-block method execution.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum SpecFrame {
    /// The atomic block has not executed yet.
    Pending {
        /// Invoked method.
        method: MethodId,
        /// Invocation argument.
        arg: Option<Value>,
    },
    /// The atomic block has executed; the return value is latched.
    Done {
        /// Value to return.
        val: Option<Value>,
    },
}

crate::impl_pack!(enum SpecFrame {
    0 => Pending { method, arg },
    1 => Done { val },
});

impl<S: SequentialSpec> ObjectAlgorithm for AtomicSpec<S> {
    type Shared = S;
    type Frame = SpecFrame;

    fn name(&self) -> &'static str {
        self.initial.name()
    }

    fn methods(&self) -> Vec<MethodSpec> {
        self.initial.methods()
    }

    fn initial_shared(&self) -> S {
        self.initial.clone()
    }

    fn begin(&self, method: MethodId, arg: Option<Value>, _t: ThreadId) -> SpecFrame {
        SpecFrame::Pending { method, arg }
    }

    fn step(&self, shared: &S, frame: &SpecFrame, _t: ThreadId, out: &mut Vec<Outcome<S, SpecFrame>>) {
        match frame {
            SpecFrame::Pending { method, arg } => {
                let (next, val) = shared.apply(*method, *arg);
                out.push(Outcome::Tau {
                    shared: next,
                    frame: SpecFrame::Done { val },
                    tag: "atomic",
                });
            }
            SpecFrame::Done { val } => out.push(Outcome::Ret {
                shared: shared.clone(),
                val: *val,
                tag: "",
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::{explore_system, Bound};
    use bb_lts::ExploreLimits;

    /// Bounded sequential queue used as a specification.
    #[derive(Debug, Clone, PartialEq, Eq, Hash)]
    struct SeqQueue {
        items: Vec<Value>,
    }

    crate::impl_pack!(struct SeqQueue { items });

    impl SequentialSpec for SeqQueue {
        fn name(&self) -> &'static str {
            "queue-spec"
        }
        fn methods(&self) -> Vec<MethodSpec> {
            vec![
                MethodSpec::with_args("Enq", &[1, 2]),
                MethodSpec::no_arg("Deq"),
            ]
        }
        fn apply(&self, method: MethodId, arg: Option<Value>) -> (Self, Option<Value>) {
            let mut next = self.clone();
            match method {
                0 => {
                    next.items.push(arg.expect("Enq takes a value"));
                    (next, None)
                }
                _ => {
                    if next.items.is_empty() {
                        (next, Some(crate::EMPTY))
                    } else {
                        let v = next.items.remove(0);
                        (next, Some(v))
                    }
                }
            }
        }
    }

    #[test]
    fn spec_methods_are_three_step() {
        let spec = AtomicSpec::new(SeqQueue { items: vec![] });
        let lts = explore_system(&spec, Bound::new(1, 1), ExploreLimits::default()).unwrap();
        // Single thread, single op: each maximal path is call-τ-ret.
        // Paths: Enq(1), Enq(2), Deq → 3 calls from init.
        let init_succs = lts.successors(lts.initial());
        assert_eq!(init_succs.len(), 3);
        for t in init_succs {
            assert!(lts.action(t.action).kind == bb_lts::ActionKind::Call);
        }
    }

    #[test]
    fn empty_queue_deq_returns_empty() {
        let spec = AtomicSpec::new(SeqQueue { items: vec![] });
        let lts = explore_system(&spec, Bound::new(1, 1), ExploreLimits::default()).unwrap();
        assert!(lts.actions().iter().any(|a| {
            a.kind == bb_lts::ActionKind::Ret
                && a.method.as_deref() == Some("Deq")
                && a.value == Some(crate::EMPTY)
        }));
    }

    #[test]
    fn fifo_order_in_spec() {
        let spec = AtomicSpec::new(SeqQueue { items: vec![] });
        let lts = explore_system(&spec, Bound::new(1, 3), ExploreLimits::default()).unwrap();
        // Sequential execution can return 1 and 2 from Deq, but never
        // returns 2 before any Enq(2)... sanity: both values appear.
        let ret_vals: std::collections::BTreeSet<_> = lts
            .actions()
            .iter()
            .filter(|a| a.kind == bb_lts::ActionKind::Ret && a.method.as_deref() == Some("Deq"))
            .map(|a| a.value)
            .collect();
        assert!(ret_vals.contains(&Some(1)));
        assert!(ret_vals.contains(&Some(2)));
        assert!(ret_vals.contains(&Some(crate::EMPTY)));
    }
}
