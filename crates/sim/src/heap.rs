//! Canonical abstract heap.

use crate::ptr::Ptr;
use std::hash::Hash;

/// A node type storable in a [`Heap`]: it must expose its outgoing pointers
/// so that garbage collection and canonical renaming can traverse and
/// rewrite them.
pub trait HeapNode: Clone + Eq + Hash + std::fmt::Debug {
    /// Appends the node's outgoing pointers to `out`.
    fn collect_refs(&self, out: &mut Vec<Ptr>);
    /// Rewrites each outgoing pointer in place.
    fn map_refs(&mut self, f: &mut dyn FnMut(Ptr) -> Ptr);
}

/// An arena of abstract nodes with canonical renaming.
///
/// After [`Heap::canonicalize`], live nodes occupy a dense prefix of the
/// arena in root-traversal order, so two isomorphic heaps compare equal —
/// the symmetry reduction described in the crate docs.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Heap<N: HeapNode> {
    nodes: Vec<Option<N>>,
}

impl<N: HeapNode> Default for Heap<N> {
    fn default() -> Self {
        Heap { nodes: Vec::new() }
    }
}

impl<N: HeapNode + crate::Pack> crate::Pack for Heap<N> {
    // Canonicalized heaps are a dense prefix of live nodes, but the arena
    // representation is encoded faithfully (free slots as `None`) so the
    // round-trip holds for every heap, canonical or not.
    fn pack(&self, w: &mut crate::PackWriter<'_>) {
        self.nodes.pack(w);
    }
    fn unpack(r: &mut crate::PackReader<'_>) -> Option<Self> {
        Some(Heap {
            nodes: crate::Pack::unpack(r)?,
        })
    }
    fn heap_bytes(&self) -> usize {
        self.nodes.heap_bytes()
    }
}

/// The renaming produced by [`Heap::canonicalize`]; apply it to every
/// pointer stored outside the heap (shared variables, thread frames).
#[derive(Debug, Clone)]
pub struct Renaming {
    map: Vec<Ptr>,
}

impl Renaming {
    /// Rewrites a pointer: live nodes get their canonical name, reclaimed or
    /// unreachable targets become [`Ptr::DANGLING`], sentinels are kept.
    pub fn apply(&self, p: Ptr) -> Ptr {
        if !p.is_node() {
            return p;
        }
        self.map.get(p.0 as usize).copied().unwrap_or(Ptr::DANGLING)
    }
}

impl<N: HeapNode> Heap<N> {
    /// Creates an empty heap.
    pub fn new() -> Self {
        Self::default()
    }

    /// Allocates a fresh node, returning its pointer.
    pub fn alloc(&mut self, node: N) -> Ptr {
        // Reuse a free slot if any (identity is canonicalized away anyway).
        if let Some(i) = self.nodes.iter().position(Option::is_none) {
            self.nodes[i] = Some(node);
            return Ptr(i as u32);
        }
        let i = self.nodes.len();
        self.nodes.push(Some(node));
        Ptr(i as u32)
    }

    /// Explicitly reclaims a node (hazard-pointer style `free`). Pointers to
    /// it become dangling at the next canonicalization.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not a live node.
    pub fn free(&mut self, p: Ptr) {
        let slot = &mut self.nodes[p.index()];
        assert!(slot.is_some(), "double free of {p:?}");
        *slot = None;
    }

    /// Shared read access; `None` for freed/dangling/null pointers.
    pub fn get(&self, p: Ptr) -> Option<&N> {
        if !p.is_node() {
            return None;
        }
        self.nodes.get(p.0 as usize).and_then(Option::as_ref)
    }

    /// Mutable access; `None` for freed/dangling/null pointers.
    pub fn get_mut(&mut self, p: Ptr) -> Option<&mut N> {
        if !p.is_node() {
            return None;
        }
        self.nodes.get_mut(p.0 as usize).and_then(Option::as_mut)
    }

    /// Dereferences a pointer that the caller knows is live.
    ///
    /// # Panics
    ///
    /// Panics on null, dangling or freed pointers — in a verified model such
    /// a dereference is a modeling error, not a runtime condition.
    pub fn node(&self, p: Ptr) -> &N {
        self.get(p).unwrap_or_else(|| panic!("dereferenced dead pointer {p:?}"))
    }

    /// Mutable variant of [`Heap::node`].
    ///
    /// # Panics
    ///
    /// Panics on null, dangling or freed pointers.
    pub fn node_mut(&mut self, p: Ptr) -> &mut N {
        self.get_mut(p)
            .unwrap_or_else(|| panic!("dereferenced dead pointer {p:?}"))
    }

    /// Is `p` a live node of this heap?
    pub fn is_live(&self, p: Ptr) -> bool {
        self.get(p).is_some()
    }

    /// Number of live nodes.
    pub fn len(&self) -> usize {
        self.nodes.iter().filter(|n| n.is_some()).count()
    }

    /// Whether the heap holds no live nodes.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Garbage-collects and canonically renames the heap.
    ///
    /// Live nodes reachable from `roots` are renumbered densely in
    /// first-visit (root order, then BFS) order; everything else is
    /// dropped. Returns the [`Renaming`] to apply to all external pointers.
    ///
    /// ```
    /// use bb_sim::{Heap, HeapNode, Ptr};
    ///
    /// #[derive(Debug, Clone, PartialEq, Eq, Hash)]
    /// struct Cell(i64, Ptr);
    /// impl HeapNode for Cell {
    ///     fn collect_refs(&self, out: &mut Vec<Ptr>) { out.push(self.1); }
    ///     fn map_refs(&mut self, f: &mut dyn FnMut(Ptr) -> Ptr) { self.1 = f(self.1); }
    /// }
    ///
    /// let mut h: Heap<Cell> = Heap::new();
    /// let garbage = h.alloc(Cell(9, Ptr::NULL));
    /// let a = h.alloc(Cell(1, Ptr::NULL));
    /// let ren = h.canonicalize(&[a]);
    /// assert_eq!(h.len(), 1);                  // garbage collected
    /// assert_eq!(ren.apply(a), Ptr(0));        // canonical name
    /// assert_eq!(ren.apply(garbage), Ptr::DANGLING);
    /// ```
    pub fn canonicalize(&mut self, roots: &[Ptr]) -> Renaming {
        let mut map: Vec<Ptr> = vec![Ptr::DANGLING; self.nodes.len()];
        let mut order: Vec<u32> = Vec::new(); // old indices in canonical order
        let mut queue = std::collections::VecDeque::new();

        let visit = |p: Ptr,
                         map: &mut Vec<Ptr>,
                         order: &mut Vec<u32>,
                         queue: &mut std::collections::VecDeque<u32>,
                         nodes: &[Option<N>]| {
            if !p.is_node() {
                return;
            }
            let Some(slot) = nodes.get(p.0 as usize) else {
                return;
            };
            if slot.is_none() || map[p.0 as usize] != Ptr::DANGLING {
                return;
            }
            map[p.0 as usize] = Ptr(order.len() as u32);
            order.push(p.0);
            queue.push_back(p.0);
        };

        for &r in roots {
            visit(r, &mut map, &mut order, &mut queue, &self.nodes);
        }
        let mut refs = Vec::new();
        while let Some(old) = queue.pop_front() {
            refs.clear();
            self.nodes[old as usize]
                .as_ref()
                .expect("queued nodes are live")
                .collect_refs(&mut refs);
            for &p in &refs {
                visit(p, &mut map, &mut order, &mut queue, &self.nodes);
            }
        }

        let renaming = Renaming { map };
        let mut new_nodes: Vec<Option<N>> = Vec::with_capacity(order.len());
        for &old in &order {
            let mut node = self.nodes[old as usize]
                .take()
                .expect("ordered nodes are live");
            node.map_refs(&mut |p| renaming.apply(p));
            new_nodes.push(Some(node));
        }
        self.nodes = new_nodes;
        renaming
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A singly linked node carrying a value.
    #[derive(Debug, Clone, PartialEq, Eq, Hash)]
    struct Cell {
        val: i64,
        next: Ptr,
    }

    impl HeapNode for Cell {
        fn collect_refs(&self, out: &mut Vec<Ptr>) {
            out.push(self.next);
        }
        fn map_refs(&mut self, f: &mut dyn FnMut(Ptr) -> Ptr) {
            self.next = f(self.next);
        }
    }

    fn cell(val: i64, next: Ptr) -> Cell {
        Cell { val, next }
    }

    #[test]
    fn alloc_get_free() {
        let mut h: Heap<Cell> = Heap::new();
        let a = h.alloc(cell(1, Ptr::NULL));
        assert_eq!(h.node(a).val, 1);
        assert!(h.is_live(a));
        h.free(a);
        assert!(!h.is_live(a));
        assert!(h.get(a).is_none());
    }

    #[test]
    #[should_panic(expected = "double free")]
    fn double_free_panics() {
        let mut h: Heap<Cell> = Heap::new();
        let a = h.alloc(cell(1, Ptr::NULL));
        h.free(a);
        h.free(a);
    }

    #[test]
    fn canonicalization_merges_isomorphic_heaps() {
        // Heap 1: allocate a then b, list b -> a.
        let mut h1: Heap<Cell> = Heap::new();
        let a1 = h1.alloc(cell(1, Ptr::NULL));
        let b1 = h1.alloc(cell(2, a1));
        let r1 = h1.canonicalize(&[b1]);

        // Heap 2: same list but allocated in opposite slot order.
        let mut h2: Heap<Cell> = Heap::new();
        let x = h2.alloc(cell(9, Ptr::NULL)); // garbage, freed below
        let a2 = h2.alloc(cell(1, Ptr::NULL));
        h2.free(x);
        let b2 = h2.alloc(cell(2, a2));
        let r2 = h2.canonicalize(&[b2]);

        assert_eq!(h1, h2);
        assert_eq!(r1.apply(b1), r2.apply(b2));
    }

    #[test]
    fn unreachable_nodes_are_collected() {
        let mut h: Heap<Cell> = Heap::new();
        let a = h.alloc(cell(1, Ptr::NULL));
        let _garbage = h.alloc(cell(2, Ptr::NULL));
        let _ = h.canonicalize(&[a]);
        assert_eq!(h.len(), 1);
    }

    #[test]
    fn dangling_pointers_are_canonical() {
        let mut h: Heap<Cell> = Heap::new();
        let a = h.alloc(cell(1, Ptr::NULL));
        let b = h.alloc(cell(2, Ptr::NULL));
        h.free(a);
        let ren = h.canonicalize(&[b, a]);
        assert_eq!(ren.apply(a), Ptr::DANGLING);
        assert_eq!(ren.apply(b), Ptr(0));
        assert_eq!(ren.apply(Ptr::NULL), Ptr::NULL);
    }

    #[test]
    fn cyclic_structures_survive() {
        let mut h: Heap<Cell> = Heap::new();
        let a = h.alloc(cell(1, Ptr::NULL));
        let b = h.alloc(cell(2, a));
        h.node_mut(a).next = b;
        let ren = h.canonicalize(&[a]);
        assert_eq!(h.len(), 2);
        let na = ren.apply(a);
        let nb = ren.apply(b);
        assert_eq!(h.node(na).next, nb);
        assert_eq!(h.node(nb).next, na);
    }

    #[test]
    fn root_order_determines_names() {
        let mut h: Heap<Cell> = Heap::new();
        let a = h.alloc(cell(1, Ptr::NULL));
        let b = h.alloc(cell(2, Ptr::NULL));
        let ren = h.canonicalize(&[b, a]);
        assert_eq!(ren.apply(b), Ptr(0));
        assert_eq!(ren.apply(a), Ptr(1));
    }
}
