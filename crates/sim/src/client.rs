//! The most general client (Section II-B) and system-level semantics.

use crate::algorithm::{MethodId, MethodSpec, ObjectAlgorithm, Outcome};
use crate::pack::{Pack, PackReader, PackWriter};
use bb_lts::budget::{Exhausted, Watchdog};
use bb_lts::{
    explore, explore_baseline_with_sink, explore_compact_with_sink, explore_with, Action,
    CodecSemantics, ExploreError, ExploreLimits, ExploreOptions, ExploreReport, Jobs, Lts,
    Semantics, ThreadId,
};
use std::fmt::Debug;
use std::hash::Hash;

/// Bounds making the state space finite: a fixed number of client threads,
/// each performing at most `ops_per_thread` operations. This is the
/// "restrict the number of operations a thread can perform" option chosen
/// in Section VI-B of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Bound {
    /// Number of concurrent client threads (`#Th.` in the tables).
    pub threads: u8,
    /// Operations each thread may perform (`#Op.` in the tables).
    pub ops_per_thread: u32,
}

impl Bound {
    /// Convenience constructor matching the paper's `#Th.-#Op.` notation.
    pub fn new(threads: u8, ops_per_thread: u32) -> Self {
        Bound {
            threads,
            ops_per_thread,
        }
    }
}

/// Status of one client thread.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum ThreadStatus<F> {
    /// Between operations; may start `remaining` more.
    Idle {
        /// Operations this thread may still invoke.
        remaining: u32,
    },
    /// Inside a method body.
    Running {
        /// The invoked method.
        method: MethodId,
        /// Local continuation of the method body.
        frame: F,
        /// Operations remaining *after* this one completes.
        remaining: u32,
    },
}

impl<F: Pack> Pack for ThreadStatus<F> {
    /// `remaining` and the idle/running discriminant fuse into a single
    /// varint (`remaining << 1 | is_running`), so the common idle status
    /// costs one byte; a running status additionally packs the method index
    /// and the frame.
    fn pack(&self, w: &mut PackWriter<'_>) {
        match self {
            ThreadStatus::Idle { remaining } => w.put_u64(u64::from(*remaining) << 1),
            ThreadStatus::Running {
                method,
                frame,
                remaining,
            } => {
                w.put_u64(u64::from(*remaining) << 1 | 1);
                w.put_u64(*method as u64);
                frame.pack(w);
            }
        }
    }

    fn unpack(r: &mut PackReader<'_>) -> Option<Self> {
        let fused = r.take_u64()?;
        let remaining = u32::try_from(fused >> 1).ok()?;
        if fused & 1 == 0 {
            Some(ThreadStatus::Idle { remaining })
        } else {
            let method = usize::try_from(r.take_u64()?).ok()?;
            let frame = F::unpack(r)?;
            Some(ThreadStatus::Running {
                method,
                frame,
                remaining,
            })
        }
    }

    fn heap_bytes(&self) -> usize {
        match self {
            ThreadStatus::Idle { .. } => 0,
            ThreadStatus::Running { frame, .. } => frame.heap_bytes(),
        }
    }
}

/// Global state of the most general client: shared object state plus every
/// thread's status.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct SysState<S, F> {
    /// The object's shared state.
    pub shared: S,
    /// Per-thread status, indexed by thread number − 1.
    pub threads: Vec<ThreadStatus<F>>,
}

/// The most general client driving an [`ObjectAlgorithm`]: `threads`
/// concurrent threads repeatedly invoke arbitrary methods with arbitrary
/// parameters, up to the bound. Implements [`Semantics`], so
/// [`bb_lts::explore`] (or [`explore_system`]) unfolds it into the object
/// LTS of Definition 2.1.
#[derive(Debug, Clone)]
pub struct System<'a, A: ObjectAlgorithm> {
    alg: &'a A,
    bound: Bound,
    methods: Vec<MethodSpec>,
}

impl<'a, A: ObjectAlgorithm> System<'a, A> {
    /// Creates the most general client for `alg` under `bound`.
    pub fn new(alg: &'a A, bound: Bound) -> Self {
        System {
            alg,
            bound,
            methods: alg.methods(),
        }
    }

    /// The wrapped algorithm.
    pub fn algorithm(&self) -> &'a A {
        self.alg
    }

    /// The client bound.
    pub fn bound(&self) -> Bound {
        self.bound
    }

    /// Canonicalizes a system state in place (heap GC + pointer renaming
    /// across the shared state and every live frame). Exposed so reduction
    /// layers can re-canonicalize after transforming a state.
    pub fn canonicalize_state(&self, st: &mut SysState<A::Shared, A::Frame>) {
        let SysState { shared, threads } = st;
        let mut frames: Vec<&mut A::Frame> = threads
            .iter_mut()
            .filter_map(|t| match t {
                ThreadStatus::Running { frame, .. } => Some(frame),
                ThreadStatus::Idle { .. } => None,
            })
            .collect();
        self.alg.canonicalize(shared, &mut frames);
    }

    fn canonicalize(&self, st: &mut SysState<A::Shared, A::Frame>) {
        self.canonicalize_state(st);
    }

    /// Appends the outgoing steps contributed by thread `ti` (0-based) in
    /// `state` — the building block [`Semantics::successors`] loops over,
    /// exposed so the ample-set selector in `bb-reduce` can expand a single
    /// thread without enumerating the whole state.
    #[allow(clippy::type_complexity)]
    pub fn thread_successors(
        &self,
        state: &SysState<A::Shared, A::Frame>,
        ti: usize,
        out: &mut Vec<(Action, SysState<A::Shared, A::Frame>)>,
    ) {
        let t = ThreadId(ti as u8 + 1);
        match &state.threads[ti] {
            ThreadStatus::Idle { remaining } => {
                if *remaining == 0 {
                    return;
                }
                for (mid, spec) in self.methods.iter().enumerate() {
                    for &arg in &spec.args {
                        let mut next = state.clone();
                        next.threads[ti] = ThreadStatus::Running {
                            method: mid,
                            frame: self.alg.begin(mid, arg, t),
                            remaining: remaining - 1,
                        };
                        self.canonicalize(&mut next);
                        out.push((Action::call(t, spec.name, arg), next));
                    }
                }
            }
            ThreadStatus::Running {
                method,
                frame,
                remaining,
            } => {
                let mut outcomes = Vec::new();
                self.alg.step(&state.shared, frame, t, &mut outcomes);
                for oc in outcomes {
                    match oc {
                        Outcome::Tau { shared, frame, tag } => {
                            let mut next = state.clone();
                            next.shared = shared;
                            next.threads[ti] = ThreadStatus::Running {
                                method: *method,
                                frame,
                                remaining: *remaining,
                            };
                            self.canonicalize(&mut next);
                            let action = if tag.is_empty() {
                                Action::tau(t)
                            } else {
                                Action::tau_tagged(t, tag)
                            };
                            out.push((action, next));
                        }
                        Outcome::Ret { shared, val, tag: _ } => {
                            let mut next = state.clone();
                            next.shared = shared;
                            next.threads[ti] = ThreadStatus::Idle {
                                remaining: *remaining,
                            };
                            self.canonicalize(&mut next);
                            out.push((Action::ret(t, self.methods[*method].name, val), next));
                        }
                    }
                }
            }
        }
    }
}

impl<A: ObjectAlgorithm> Semantics for System<'_, A>
where
    A::Shared: Debug + Clone + Eq + Hash,
    A::Frame: Debug + Clone + Eq + Hash,
{
    type State = SysState<A::Shared, A::Frame>;

    fn initial_state(&self) -> Self::State {
        let mut st = SysState {
            shared: self.alg.initial_shared(),
            threads: vec![
                ThreadStatus::Idle {
                    remaining: self.bound.ops_per_thread,
                };
                self.bound.threads as usize
            ],
        };
        self.canonicalize(&mut st);
        st
    }

    fn successors(&self, state: &Self::State, out: &mut Vec<(Action, Self::State)>) {
        for ti in 0..state.threads.len() {
            self.thread_successors(state, ti, out);
        }
    }
}

impl<A: ObjectAlgorithm> CodecSemantics for System<'_, A>
where
    A::Shared: Debug + Clone + Eq + Hash,
    A::Frame: Debug + Clone + Eq + Hash,
{
    /// The canonical system encoding: the shared state, then every thread's
    /// status in thread order. No length prefix is needed — `threads` always
    /// has exactly `bound.threads` entries, so the layout is derived from
    /// the [`Bound`] at decode time.
    fn encode_state(&self, state: &Self::State, out: &mut Vec<u8>) {
        let mut w = PackWriter::new(out);
        state.shared.pack(&mut w);
        for t in &state.threads {
            t.pack(&mut w);
        }
    }

    fn decode_state(&self, bytes: &[u8]) -> Self::State {
        let mut r = PackReader::new(bytes);
        let shared = A::Shared::unpack(&mut r).expect("corrupt shared-state encoding");
        let threads = (0..self.bound.threads)
            .map(|_| ThreadStatus::unpack(&mut r).expect("corrupt thread-status encoding"))
            .collect();
        debug_assert!(r.finished(), "trailing bytes after state encoding");
        SysState { shared, threads }
    }

    fn state_heap_bytes(&self, state: &Self::State) -> usize {
        state.shared.heap_bytes()
            + state.threads.capacity() * std::mem::size_of::<ThreadStatus<A::Frame>>()
            + state.threads.iter().map(Pack::heap_bytes).sum::<usize>()
    }
}

/// Unfolds the most general client of `alg` under `bound` into an explicit
/// LTS, with budget and worker count chosen by `opts`.
///
/// This is the single entry point behind every `explore_system*` variant;
/// it is also where reduction layers (`bb-reduce`) plug in, by wrapping the
/// [`System`] semantics before handing it to [`bb_lts::explore_with`].
///
/// # Errors
///
/// Returns [`Exhausted`] (stage `explore`) when any budget axis trips.
pub fn explore_system_with<A: ObjectAlgorithm>(
    alg: &A,
    bound: Bound,
    opts: &ExploreOptions<'_>,
) -> Result<Lts, Exhausted> {
    let _span = bb_obs::span("explore.system")
        .with("object", alg.name())
        .with("threads", bound.threads as u64)
        .with("ops", bound.ops_per_thread as u64);
    let system = System::new(alg, bound);
    if opts.compact() {
        explore_compact_with_sink(&system, opts, None).map(|(lts, _)| lts)
    } else {
        explore_with(&system, opts)
    }
}

/// [`explore_system_with`] returning the seen-set's [`ExploreReport`]
/// (exploration stats plus store footprint/compression metrics) alongside
/// the LTS — the entry point benchmarks use to compare the compact and
/// rich-struct engines truthfully.
///
/// The engine is picked by [`ExploreOptions::with_compact`]: compact (the
/// default) interns canonical bit-packed encodings in an arena with an
/// optional disk-spill tier, the baseline stores the rich states in a
/// hash map. Both produce bit-identical LTSs.
///
/// # Errors
///
/// Returns [`Exhausted`] (stage `explore`) when any budget axis trips.
pub fn explore_system_report<A: ObjectAlgorithm>(
    alg: &A,
    bound: Bound,
    opts: &ExploreOptions<'_>,
) -> Result<(Lts, ExploreReport), Exhausted> {
    let _span = bb_obs::span("explore.system")
        .with("object", alg.name())
        .with("threads", bound.threads as u64)
        .with("ops", bound.ops_per_thread as u64);
    let system = System::new(alg, bound);
    if opts.compact() {
        explore_compact_with_sink(&system, opts, None)
    } else {
        explore_baseline_with_sink(&system, opts, None)
    }
}

/// Fused variant of [`explore_system_with`]: streams the exploration's
/// deterministic transition order through an [`bb_lts::InDegreeSink`] and
/// returns the reverse adjacency alongside the LTS, so a downstream
/// incremental refinement skips its predecessor-counting pass
/// (`--fuse`). The LTS is byte-identical to [`explore_system_with`] and the
/// table is byte-identical to [`Lts::predecessor_table`].
///
/// # Errors
///
/// Returns [`Exhausted`] (stage `explore`) when any budget axis trips.
pub fn explore_system_fused<A: ObjectAlgorithm>(
    alg: &A,
    bound: Bound,
    opts: &ExploreOptions<'_>,
) -> Result<(Lts, bb_lts::PredecessorTable), Exhausted> {
    let _span = bb_obs::span("explore.system")
        .with("object", alg.name())
        .with("threads", bound.threads as u64)
        .with("ops", bound.ops_per_thread as u64)
        .with("fused", 1u64);
    let system = System::new(alg, bound);
    let mut sink = bb_lts::InDegreeSink::new();
    let lts = if opts.compact() {
        explore_compact_with_sink(&system, opts, Some(&mut sink))?.0
    } else {
        bb_lts::explore_with_sink(&system, opts, Some(&mut sink))?
    };
    let preds = sink.into_table(&lts);
    Ok((lts, preds))
}

/// Unfolds the most general client of `alg` under `bound` into an explicit
/// LTS.
///
/// Shorthand for [`explore_system_with`] with a plain [`ExploreLimits`]
/// budget on the serial engine.
///
/// # Errors
///
/// Returns [`ExploreError`] if the state space exceeds `limits`.
pub fn explore_system<A: ObjectAlgorithm>(
    alg: &A,
    bound: Bound,
    limits: ExploreLimits,
) -> Result<Lts, ExploreError> {
    let system = System::new(alg, bound);
    explore(&system, limits)
}

/// Budget-governed [`explore_system`]: the unfolding is metered against the
/// full [`Watchdog`] budget (deadline, caps, memory, cancellation).
///
/// # Errors
///
/// Returns [`Exhausted`] (stage `explore`) when any budget axis trips.
#[deprecated(note = "use `explore_system_with(alg, bound, &ExploreOptions::governed(wd))`")]
pub fn explore_system_governed<A: ObjectAlgorithm>(
    alg: &A,
    bound: Bound,
    wd: &Watchdog,
) -> Result<Lts, Exhausted> {
    explore_system_with(alg, bound, &ExploreOptions::governed(wd))
}

/// [`explore_system`] on the parallel exploration engine: the frontier of
/// the most general client is fanned out to `jobs` workers with a
/// deterministic merge, so the resulting LTS is bit-identical to the
/// sequential unfolding at any worker count.
///
/// # Errors
///
/// Returns [`ExploreError`] if the state space exceeds `limits`.
#[deprecated(
    note = "use `explore_system_with(alg, bound, &ExploreOptions::limits(l).with_jobs(jobs))`"
)]
pub fn explore_system_jobs<A: ObjectAlgorithm>(
    alg: &A,
    bound: Bound,
    limits: ExploreLimits,
    jobs: Jobs,
) -> Result<Lts, ExploreError> {
    explore_system_with(alg, bound, &ExploreOptions::limits(limits).with_jobs(jobs))
        .map_err(ExploreError::from)
}

/// [`explore_system_governed`] on the parallel exploration engine (see
/// [`explore_system_jobs`] for the determinism contract).
///
/// # Errors
///
/// Returns [`Exhausted`] (stage `explore`) when any budget axis trips.
#[deprecated(
    note = "use `explore_system_with(alg, bound, &ExploreOptions::governed(wd).with_jobs(jobs))`"
)]
pub fn explore_system_governed_jobs<A: ObjectAlgorithm>(
    alg: &A,
    bound: Bound,
    wd: &Watchdog,
    jobs: Jobs,
) -> Result<Lts, Exhausted> {
    explore_system_with(alg, bound, &ExploreOptions::governed(wd).with_jobs(jobs))
}

#[cfg(test)]
pub(crate) fn tests_no_cycle_helper(lts: &bb_lts::Lts) -> bool {
    // τ-cycle detection via the τ-SCC condensation.
    let cond = bb_lts::condensation(lts, |_, a, _| !lts.is_visible(a));
    cond.cyclic.iter().all(|c| !c)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithm::{MethodSpec, Outcome};
    use crate::Value;

    /// A register with an atomic write and a two-step (read then publish)
    /// increment, to exercise interleavings.
    struct TestCounter;

    #[derive(Debug, Clone, PartialEq, Eq, Hash)]
    enum Frame {
        IncStart,
        IncGot(Value),
        Read,
    }

    crate::impl_pack!(enum Frame { 0 => IncStart, 1 => IncGot(v), 2 => Read });

    impl ObjectAlgorithm for TestCounter {
        type Shared = Value;
        type Frame = Frame;

        fn name(&self) -> &'static str {
            "test-counter"
        }

        fn methods(&self) -> Vec<MethodSpec> {
            vec![MethodSpec::no_arg("inc"), MethodSpec::no_arg("read")]
        }

        fn initial_shared(&self) -> Value {
            0
        }

        fn begin(&self, method: MethodId, _arg: Option<Value>, _t: ThreadId) -> Frame {
            match method {
                0 => Frame::IncStart,
                _ => Frame::Read,
            }
        }

        fn step(
            &self,
            shared: &Value,
            frame: &Frame,
            _t: ThreadId,
            out: &mut Vec<Outcome<Value, Frame>>,
        ) {
            match frame {
                Frame::IncStart => out.push(Outcome::Tau {
                    shared: *shared,
                    frame: Frame::IncGot(*shared),
                    tag: "L1",
                }),
                Frame::IncGot(v) => out.push(Outcome::Ret {
                    shared: v + 1,
                    val: None,
                    tag: "L2",
                }),
                Frame::Read => out.push(Outcome::Ret {
                    shared: *shared,
                    val: Some(*shared),
                    tag: "L3",
                }),
            }
        }
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_shims_match_options_entry_point() {
        let bound = Bound::new(2, 1);
        let limits = ExploreLimits::default();
        let base = explore_system_with(&TestCounter, bound, &ExploreOptions::limits(limits))
            .unwrap();
        let wd = Watchdog::new(limits.into());
        let gov = explore_system_governed(&TestCounter, bound, &wd).unwrap();
        let jobs = explore_system_jobs(&TestCounter, bound, limits, Jobs::new(2)).unwrap();
        let gov_jobs =
            explore_system_governed_jobs(&TestCounter, bound, &wd, Jobs::new(2)).unwrap();
        for other in [&gov, &jobs, &gov_jobs] {
            assert_eq!(bb_lts::to_aut(&base), bb_lts::to_aut(other));
        }
    }

    #[test]
    fn fused_exploration_matches_staged_and_its_table_is_exact() {
        // The fused explorer must build the byte-identical LTS (the sink
        // only observes the deterministic merge stream) and its in-degree
        // accumulation must reproduce `Lts::predecessor_table` exactly, at
        // any worker count.
        let bound = Bound::new(2, 2);
        let opts = ExploreOptions::limits(ExploreLimits::default());
        let staged = explore_system_with(&TestCounter, bound, &opts).unwrap();
        let reference = staged.predecessor_table();
        for jobs in [Jobs::serial(), Jobs::new(4)] {
            let opts = ExploreOptions::limits(ExploreLimits::default()).with_jobs(jobs);
            let (fused, preds) = explore_system_fused(&TestCounter, bound, &opts).unwrap();
            assert_eq!(
                bb_lts::snapshot::encode_lts(&staged),
                bb_lts::snapshot::encode_lts(&fused),
                "fused LTS differs at {jobs:?}"
            );
            for s in 0..fused.num_states() {
                let s = bb_lts::StateId(s as u32);
                assert_eq!(
                    reference.of(s),
                    preds.of(s),
                    "streamed reverse adjacency differs at state {s:?} ({jobs:?})"
                );
            }
        }
    }

    #[test]
    fn thread_successors_partitions_successors() {
        // Union of per-thread successor sets == the Semantics::successors set.
        let system = System::new(&TestCounter, Bound::new(2, 1));
        let init = Semantics::initial_state(&system);
        let mut whole = Vec::new();
        Semantics::successors(&system, &init, &mut whole);
        let mut pieces = Vec::new();
        for ti in 0..init.threads.len() {
            system.thread_successors(&init, ti, &mut pieces);
        }
        assert_eq!(format!("{whole:?}"), format!("{pieces:?}"));
    }

    #[test]
    fn single_thread_is_sequential() {
        let lts = explore_system(&TestCounter, Bound::new(1, 1), ExploreLimits::default())
            .unwrap();
        // 1 thread, 1 op: call inc (τ, ret) or call read (ret).
        // States: init, inc-running(2 states), read-running(1), done-after
        // variants... just sanity-check shape.
        assert!(lts.num_states() > 3);
        assert!(lts
            .actions()
            .iter()
            .any(|a| a.method.as_deref() == Some("inc")));
    }

    #[test]
    fn lost_update_is_observable_with_two_threads() {
        // With two concurrent incs and a final... actually verify that the
        // LTS contains a path where both incs read 0 (lost update) — i.e.
        // some read after two incs can still return 1.
        let lts = explore_system(&TestCounter, Bound::new(2, 2), ExploreLimits::default())
            .unwrap();
        let has_ret_1 = lts
            .actions()
            .iter()
            .any(|a| a.kind == bb_lts::ActionKind::Ret && a.value == Some(1));
        assert!(has_ret_1);
    }

    #[test]
    fn respects_ops_bound() {
        let lts = explore_system(&TestCounter, Bound::new(1, 2), ExploreLimits::default())
            .unwrap();
        // No trace can contain three calls; check max reads returned ≤ 2.
        assert!(lts
            .actions()
            .iter()
            .all(|a| a.value.unwrap_or(0) <= 2));
    }

    /// A one-slot lock object: threads block (no transitions) while the
    /// lock is held by another thread.
    struct TestLock;

    #[derive(Debug, Clone, PartialEq, Eq, Hash)]
    enum LockFrame {
        Acquire,
        Release,
    }

    crate::impl_pack!(enum LockFrame { 0 => Acquire, 1 => Release });

    impl ObjectAlgorithm for TestLock {
        type Shared = Option<ThreadId>;
        type Frame = LockFrame;

        fn name(&self) -> &'static str {
            "test-lock"
        }
        fn methods(&self) -> Vec<MethodSpec> {
            vec![MethodSpec::no_arg("work")]
        }
        fn initial_shared(&self) -> Option<ThreadId> {
            None
        }
        fn begin(&self, _m: MethodId, _a: Option<Value>, _t: ThreadId) -> LockFrame {
            LockFrame::Acquire
        }
        fn step(
            &self,
            shared: &Option<ThreadId>,
            frame: &LockFrame,
            t: ThreadId,
            out: &mut Vec<Outcome<Option<ThreadId>, LockFrame>>,
        ) {
            match frame {
                LockFrame::Acquire => {
                    if shared.is_none() {
                        out.push(Outcome::Tau {
                            shared: Some(t),
                            frame: LockFrame::Release,
                            tag: "lock",
                        });
                    } // else: blocked — no outcome.
                }
                LockFrame::Release => out.push(Outcome::Ret {
                    shared: None,
                    val: None,
                    tag: "",
                }),
            }
        }
    }

    #[test]
    fn blocked_threads_have_no_transitions_but_system_progresses() {
        let lts = explore_system(&TestLock, Bound::new(2, 2), ExploreLimits::default()).unwrap();
        // Mutual exclusion never deadlocks here: from every reachable
        // non-terminal state there is at least one transition, and the
        // system has no τ-cycles (blocking is not spinning).
        assert!(lts.iter_transitions().count() > 0);
        // Terminal states are exactly the all-budget-spent states; verify
        // at least one exists (the run can always finish).
        let terminal = lts
            .states()
            .filter(|s| lts.successors(*s).is_empty())
            .count();
        assert!(terminal >= 1);
        // No divergence: a blocked thread contributes no self-loop.
        let p = crate::client::tests_no_cycle_helper(&lts);
        assert!(p, "lock blocking must not create τ-cycles");
    }

    #[test]
    fn system_encoding_round_trips_and_is_deterministic() {
        // decode(encode(s)) == s and re-encoding is byte-stable for every
        // reachable state of the test objects.
        let system = System::new(&TestCounter, Bound::new(2, 2));
        let lts = explore_system(&TestCounter, Bound::new(2, 2), ExploreLimits::default())
            .unwrap();
        assert!(lts.num_states() > 10);
        // Walk the reachable set again via Semantics (the LTS doesn't keep
        // rich states) and round-trip each one.
        let mut seen = std::collections::HashSet::new();
        let mut frontier = vec![Semantics::initial_state(&system)];
        let mut buf = Vec::new();
        let mut buf2 = Vec::new();
        while let Some(st) = frontier.pop() {
            buf.clear();
            system.encode_state(&st, &mut buf);
            if !seen.insert(buf.clone()) {
                continue;
            }
            let back = system.decode_state(&buf);
            assert_eq!(back, st, "decode(encode(s)) != s");
            buf2.clear();
            system.encode_state(&back, &mut buf2);
            assert_eq!(buf, buf2, "re-encoding is not deterministic");
            let mut succ = Vec::new();
            Semantics::successors(&system, &st, &mut succ);
            frontier.extend(succ.into_iter().map(|(_, s)| s));
        }
        assert_eq!(seen.len(), lts.num_states());
    }

    #[test]
    fn compact_engine_is_bit_identical_to_rich_engine() {
        // The compact (packed-arena) seen-set must reproduce the
        // HashMap engine's `.aut` bytes exactly, at any worker count,
        // staged and fused.
        let bound = Bound::new(2, 2);
        let rich_opts = ExploreOptions::limits(ExploreLimits::default()).with_compact(false);
        let rich = explore_system_with(&TestCounter, bound, &rich_opts).unwrap();
        let (rich_fused, rich_preds) = explore_system_fused(&TestCounter, bound, &rich_opts)
            .unwrap();
        assert_eq!(bb_lts::to_aut(&rich), bb_lts::to_aut(&rich_fused));
        for jobs in [Jobs::serial(), Jobs::new(4)] {
            let opts = ExploreOptions::limits(ExploreLimits::default()).with_jobs(jobs);
            assert!(opts.compact(), "compact engine must be the default");
            let lts = explore_system_with(&TestCounter, bound, &opts).unwrap();
            assert_eq!(
                bb_lts::to_aut(&rich),
                bb_lts::to_aut(&lts),
                "compact LTS differs at {jobs:?}"
            );
            let (fused, preds) = explore_system_fused(&TestCounter, bound, &opts).unwrap();
            assert_eq!(bb_lts::to_aut(&rich), bb_lts::to_aut(&fused));
            for s in 0..fused.num_states() {
                let s = bb_lts::StateId(s as u32);
                assert_eq!(rich_preds.of(s), preds.of(s));
            }
            let (reported, report) = explore_system_report(&TestCounter, bound, &opts).unwrap();
            assert_eq!(bb_lts::to_aut(&rich), bb_lts::to_aut(&reported));
            assert!(report.store.raw_bytes > 0);
            // Tiny encodings may not amortize the 2-byte entry header, but
            // compression must never cost more than that header per state.
            assert!(
                report.store.stored_bytes
                    <= report.store.raw_bytes + 2 * report.stats.states as u64
            );
            assert!(report.store_bytes_peak > 0);
        }
    }

    #[test]
    fn tau_tags_are_recorded() {
        let lts = explore_system(&TestCounter, Bound::new(1, 1), ExploreLimits::default())
            .unwrap();
        assert!(lts
            .actions()
            .iter()
            .any(|a| a.tag.as_deref() == Some("L1")));
    }
}
