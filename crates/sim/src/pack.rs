//! Compact byte encodings for system states (the `bb-compact` pipeline).
//!
//! Every [`ObjectAlgorithm`](crate::ObjectAlgorithm) state component packs
//! itself into a canonical, prefix-deterministic byte string: small integers
//! as LEB128 varints, signed values zig-zag folded, pointers remapped so the
//! common sentinels cost one byte, enum frames as a one-byte program counter
//! followed by their fields. The encoding — not the rich struct — is what
//! the compact exploration engine hashes, stores, and compares, so two
//! states are equal **iff** their encodings are byte-equal.
//!
//! The contract every implementation must keep:
//!
//! * **Round-trip**: `unpack(pack(x)) == x`.
//! * **Injectivity**: equal encodings ⇒ equal values (derived `Eq` agrees
//!   with byte equality). The macro-generated impls get this for free from
//!   field-wise packing with explicit variant tags.
//! * **Self-delimiting**: `unpack` consumes exactly the bytes `pack` wrote,
//!   so encodings concatenate (the system encoder packs one thread status
//!   after another with no separators — the layout is derived from the
//!   [`Bound`](crate::Bound), which fixes the thread count).
//!
//! Bump [`STATE_ENCODING_VERSION`] whenever any encoding changes shape;
//! the version is folded into persistent cache and checkpoint fingerprints
//! so stale entries self-invalidate instead of colliding.

use crate::ptr::Ptr;
use bb_lts::ThreadId;

/// Version of the packed state encoding. Part of every persistent cache
/// key and checkpoint fingerprint that covers packed exploration results.
pub const STATE_ENCODING_VERSION: u32 = 1;

// ---------------------------------------------------------------------------
// Writer / reader
// ---------------------------------------------------------------------------

/// Append-only sink for packed bytes.
pub struct PackWriter<'a> {
    buf: &'a mut Vec<u8>,
}

impl<'a> PackWriter<'a> {
    /// Wraps `buf`; packed bytes are appended (the buffer is not cleared).
    pub fn new(buf: &'a mut Vec<u8>) -> Self {
        PackWriter { buf }
    }

    /// One raw byte.
    #[inline]
    pub fn put_u8(&mut self, b: u8) {
        self.buf.push(b);
    }

    /// LEB128 varint: 1 byte for values < 128, the dominant case.
    #[inline]
    pub fn put_u64(&mut self, mut v: u64) {
        while v >= 0x80 {
            self.buf.push((v as u8) | 0x80);
            v >>= 7;
        }
        self.buf.push(v as u8);
    }

    /// Zig-zag folded varint: small magnitudes of either sign stay short.
    #[inline]
    pub fn put_i64(&mut self, v: i64) {
        self.put_u64(((v << 1) ^ (v >> 63)) as u64);
    }
}

/// Bounds-checked cursor over a packed byte string.
pub struct PackReader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> PackReader<'a> {
    pub fn new(bytes: &'a [u8]) -> Self {
        PackReader { bytes, pos: 0 }
    }

    /// One raw byte; `None` past the end.
    #[inline]
    pub fn take_u8(&mut self) -> Option<u8> {
        let b = *self.bytes.get(self.pos)?;
        self.pos += 1;
        Some(b)
    }

    /// LEB128 varint; `None` on truncation or overflow.
    #[inline]
    pub fn take_u64(&mut self) -> Option<u64> {
        let mut v = 0u64;
        let mut shift = 0u32;
        loop {
            let b = self.take_u8()?;
            if shift >= 63 && b > 1 {
                return None;
            }
            v |= u64::from(b & 0x7f) << shift;
            if b & 0x80 == 0 {
                return Some(v);
            }
            shift += 7;
        }
    }

    /// Zig-zag folded varint.
    #[inline]
    pub fn take_i64(&mut self) -> Option<i64> {
        let v = self.take_u64()?;
        Some(((v >> 1) as i64) ^ -((v & 1) as i64))
    }

    /// True once every byte has been consumed.
    pub fn finished(&self) -> bool {
        self.pos == self.bytes.len()
    }
}

// ---------------------------------------------------------------------------
// The trait
// ---------------------------------------------------------------------------

/// A value with a canonical, self-delimiting byte encoding (see the module
/// docs for the contract). Implement with [`impl_pack!`] for plain structs
/// and enums; hand-written impls are only needed for generic containers.
pub trait Pack: Sized {
    /// Appends the canonical encoding of `self`.
    fn pack(&self, w: &mut PackWriter<'_>);

    /// Decodes one value, consuming exactly the bytes `pack` wrote.
    /// Returns `None` on any malformed input (never panics).
    fn unpack(r: &mut PackReader<'_>) -> Option<Self>;

    /// Heap bytes owned by `self` beyond its inline size — what the rich
    /// (unpacked) representation really costs, used by the truthful memory
    /// accounting of the baseline seen-set. Inline-only types report 0.
    fn heap_bytes(&self) -> usize {
        0
    }
}

// ---------------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------------

macro_rules! pack_unsigned {
    ($($t:ty),*) => {$(
        impl Pack for $t {
            #[inline]
            fn pack(&self, w: &mut PackWriter<'_>) {
                w.put_u64(*self as u64);
            }
            #[inline]
            fn unpack(r: &mut PackReader<'_>) -> Option<Self> {
                <$t>::try_from(r.take_u64()?).ok()
            }
        }
    )*};
}

pack_unsigned!(u8, u16, u32, u64, usize);

impl Pack for i64 {
    #[inline]
    fn pack(&self, w: &mut PackWriter<'_>) {
        w.put_i64(*self);
    }
    #[inline]
    fn unpack(r: &mut PackReader<'_>) -> Option<Self> {
        r.take_i64()
    }
}

impl Pack for i32 {
    #[inline]
    fn pack(&self, w: &mut PackWriter<'_>) {
        w.put_i64(i64::from(*self));
    }
    #[inline]
    fn unpack(r: &mut PackReader<'_>) -> Option<Self> {
        i32::try_from(r.take_i64()?).ok()
    }
}

impl Pack for bool {
    #[inline]
    fn pack(&self, w: &mut PackWriter<'_>) {
        w.put_u8(u8::from(*self));
    }
    #[inline]
    fn unpack(r: &mut PackReader<'_>) -> Option<Self> {
        match r.take_u8()? {
            0 => Some(false),
            1 => Some(true),
            _ => None,
        }
    }
}

impl Pack for ThreadId {
    #[inline]
    fn pack(&self, w: &mut PackWriter<'_>) {
        w.put_u8(self.0);
    }
    #[inline]
    fn unpack(r: &mut PackReader<'_>) -> Option<Self> {
        r.take_u8().map(ThreadId)
    }
}

impl Pack for Ptr {
    /// Sentinels first so NULL and DANGLING cost one byte and node indices
    /// stay dense: NULL → 0, DANGLING → 1, node `i` → `i + 2`.
    #[inline]
    fn pack(&self, w: &mut PackWriter<'_>) {
        if *self == Ptr::NULL {
            w.put_u64(0);
        } else if *self == Ptr::DANGLING {
            w.put_u64(1);
        } else {
            w.put_u64(u64::from(self.0) + 2);
        }
    }
    #[inline]
    fn unpack(r: &mut PackReader<'_>) -> Option<Self> {
        match r.take_u64()? {
            0 => Some(Ptr::NULL),
            1 => Some(Ptr::DANGLING),
            v => u32::try_from(v - 2).ok().map(Ptr),
        }
    }
}

impl<T: Pack> Pack for Option<T> {
    #[inline]
    fn pack(&self, w: &mut PackWriter<'_>) {
        match self {
            None => w.put_u8(0),
            Some(v) => {
                w.put_u8(1);
                v.pack(w);
            }
        }
    }
    #[inline]
    fn unpack(r: &mut PackReader<'_>) -> Option<Self> {
        match r.take_u8()? {
            0 => Some(None),
            1 => Some(Some(T::unpack(r)?)),
            _ => None,
        }
    }
    fn heap_bytes(&self) -> usize {
        self.as_ref().map_or(0, Pack::heap_bytes)
    }
}

impl<T: Pack> Pack for Vec<T> {
    #[inline]
    fn pack(&self, w: &mut PackWriter<'_>) {
        w.put_u64(self.len() as u64);
        for v in self {
            v.pack(w);
        }
    }
    #[inline]
    fn unpack(r: &mut PackReader<'_>) -> Option<Self> {
        let n = usize::try_from(r.take_u64()?).ok()?;
        // Sanity bound: no state in this workspace packs below 1 byte per
        // element, so a length beyond the remaining input is malformed.
        if n > r.bytes.len().saturating_sub(r.pos).saturating_add(1) * 8 {
            return None;
        }
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(T::unpack(r)?);
        }
        Some(out)
    }
    fn heap_bytes(&self) -> usize {
        self.capacity() * std::mem::size_of::<T>()
            + self.iter().map(Pack::heap_bytes).sum::<usize>()
    }
}

// ---------------------------------------------------------------------------
// Derive-style macro
// ---------------------------------------------------------------------------

/// Generates a [`Pack`] impl for a plain struct or enum.
///
/// Structs list their fields in declaration order; enum variants carry an
/// **explicit, stable** tag (part of the persistent encoding — never renumber
/// without bumping [`STATE_ENCODING_VERSION`]):
///
/// ```
/// use bb_sim::{impl_pack, Value};
/// struct Node { val: Value, weight: u32 }
/// enum Op { Idle, Store { v: Value }, Pair(Value, Value) }
/// impl_pack!(struct Node { val, weight });
/// impl_pack!(enum Op { 0 => Idle, 1 => Store { v }, 2 => Pair(a, b) });
/// ```
///
/// Tuple-variant elements are named by arbitrary placeholders (`a`, `b`);
/// only their count and order matter.
#[macro_export]
macro_rules! impl_pack {
    (struct $name:ident { $($f:ident),* $(,)? }) => {
        impl $crate::Pack for $name {
            fn pack(&self, w: &mut $crate::PackWriter<'_>) {
                $( $crate::Pack::pack(&self.$f, w); )*
            }
            fn unpack(r: &mut $crate::PackReader<'_>) -> Option<Self> {
                $( let $f = $crate::Pack::unpack(r)?; )*
                Some($name { $($f),* })
            }
            fn heap_bytes(&self) -> usize {
                0usize $( + $crate::Pack::heap_bytes(&self.$f) )*
            }
        }
    };
    (enum $name:ident {
        $( $tag:literal => $v:ident
            $( { $($f:ident),* $(,)? } )?
            $( ( $($e:ident),* $(,)? ) )?
        ),* $(,)?
    }) => {
        impl $crate::Pack for $name {
            fn pack(&self, w: &mut $crate::PackWriter<'_>) {
                match self {
                    $( $name::$v $( { $($f),* } )? $( ( $($e),* ) )? => {
                        w.put_u8($tag);
                        $($( $crate::Pack::pack($f, w); )*)?
                        $($( $crate::Pack::pack($e, w); )*)?
                    } )*
                }
            }
            fn unpack(r: &mut $crate::PackReader<'_>) -> Option<Self> {
                match r.take_u8()? {
                    $( $tag => Some($name::$v
                        $( { $($f: $crate::Pack::unpack(r)?),* } )?
                        $( ( $( $crate::impl_pack!(@elem $e r) ),* ) )?
                    ), )*
                    _ => None,
                }
            }
            fn heap_bytes(&self) -> usize {
                match self {
                    $( $name::$v $( { $($f),* } )? $( ( $($e),* ) )? => {
                        0usize
                            $($( + $crate::Pack::heap_bytes($f) )*)?
                            $($( + $crate::Pack::heap_bytes($e) )*)?
                    } )*
                }
            }
        }
    };
    (@elem $e:ident $r:ident) => { $crate::Pack::unpack($r)? };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rt<T: Pack + PartialEq + std::fmt::Debug>(v: T) {
        let mut buf = Vec::new();
        v.pack(&mut PackWriter::new(&mut buf));
        let mut r = PackReader::new(&buf);
        assert_eq!(T::unpack(&mut r).unwrap(), v);
        assert!(r.finished(), "encoding must be self-delimiting");
    }

    #[test]
    fn varint_round_trips() {
        for v in [0u64, 1, 127, 128, 300, u64::from(u32::MAX), u64::MAX] {
            rt(v);
        }
        for v in [0i64, 1, -1, 63, -64, 64, i64::MAX, i64::MIN] {
            rt(v);
        }
    }

    #[test]
    fn sentinel_pointers_cost_one_byte() {
        for (p, expect) in [(Ptr::NULL, 0u8), (Ptr::DANGLING, 1), (Ptr(0), 2)] {
            let mut buf = Vec::new();
            p.pack(&mut PackWriter::new(&mut buf));
            assert_eq!(buf, vec![expect]);
            rt(p);
        }
        rt(Ptr(1_000_000));
    }

    #[test]
    fn containers_round_trip() {
        rt(Option::<i64>::None);
        rt(Some(-5i64));
        rt(vec![1u32, 2, 300]);
        rt(vec![Some(ThreadId(3)), None]);
    }

    #[test]
    fn truncated_input_is_rejected() {
        let mut buf = Vec::new();
        0xdead_beefu64.pack(&mut PackWriter::new(&mut buf));
        for cut in 0..buf.len() {
            assert_eq!(u64::unpack(&mut PackReader::new(&buf[..cut])), None);
        }
        // Over-long varint (would overflow 64 bits).
        let bad = [0xffu8; 11];
        assert_eq!(u64::unpack(&mut PackReader::new(&bad)), None);
        // Absurd vector length.
        let mut buf = Vec::new();
        PackWriter::new(&mut buf).put_u64(u64::MAX);
        assert_eq!(Vec::<u8>::unpack(&mut PackReader::new(&buf)), None);
    }

    #[derive(Debug, Clone, PartialEq, Eq)]
    struct S {
        a: u32,
        b: Option<i64>,
    }
    #[derive(Debug, Clone, PartialEq, Eq)]
    enum E {
        Unit,
        Fields { x: u32, p: Ptr },
        Tuple(ThreadId, i64),
    }
    impl_pack!(struct S { a, b });
    impl_pack!(enum E { 0 => Unit, 1 => Fields { x, p }, 2 => Tuple(a, b) });

    #[test]
    fn macro_generated_impls_round_trip() {
        rt(S { a: 7, b: Some(-9) });
        rt(E::Unit);
        rt(E::Fields {
            x: 42,
            p: Ptr::NULL,
        });
        rt(E::Tuple(ThreadId(2), -1));
        // Unknown tag is rejected, not misparsed.
        assert_eq!(E::unpack(&mut PackReader::new(&[9])), None);
    }

    #[test]
    fn vec_heap_bytes_counts_capacity() {
        let v: Vec<u64> = Vec::with_capacity(8);
        assert_eq!(v.heap_bytes(), 64);
    }
}
