//! The object-algorithm trait: one small-step state machine per method body.

use crate::Value;
use bb_lts::ThreadId;
use std::fmt::Debug;
use std::hash::Hash;

/// Index of a method within an algorithm's [`MethodSpec`] list.
pub type MethodId = usize;

/// Description of one object method for the most general client.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MethodSpec {
    /// Method name as it appears in call/return actions.
    pub name: &'static str,
    /// The (finite) argument domain: one entry per possible invocation.
    /// `None` models a method without parameters.
    pub args: Vec<Option<Value>>,
}

impl MethodSpec {
    /// A method without parameters.
    pub fn no_arg(name: &'static str) -> Self {
        MethodSpec {
            name,
            args: vec![None],
        }
    }

    /// A method invoked with every value of `domain`.
    pub fn with_args(name: &'static str, domain: &[Value]) -> Self {
        MethodSpec {
            name,
            args: domain.iter().map(|&v| Some(v)).collect(),
        }
    }
}

/// One possible outcome of a single internal step of a method body.
#[derive(Debug, Clone)]
pub enum Outcome<Shared, Frame> {
    /// The method performs an internal step (one shared-memory access),
    /// staying inside its body. `tag` names the source line (e.g. `"L28"`)
    /// for the τ-labels of Figures 6/7.
    Tau {
        /// Updated shared state.
        shared: Shared,
        /// Updated local continuation.
        frame: Frame,
        /// Source-line tag carried on the τ action.
        tag: &'static str,
    },
    /// The method completes, returning `val`.
    Ret {
        /// Updated shared state.
        shared: Shared,
        /// Return value (`None` for `void` methods).
        val: Option<Value>,
        /// Source-line tag (recorded for diagnostics only — the visible
        /// return action itself is labeled by method and value).
        tag: &'static str,
    },
}

/// A concurrent object algorithm in small-step operational style.
///
/// Implementations model each shared-memory access (read, write, CAS, lock
/// acquisition…) as one internal step, mirroring the interleaving
/// granularity of the paper's LNT models. Blocking primitives (a lock held
/// by another thread) are modeled by producing *no* outcome: the thread
/// simply has no transition until the lock is released.
///
/// The `Sync`/`Send` bounds let the most general client run on the parallel
/// exploration engine ([`bb_lts::explore_governed_jobs`]); algorithm states
/// are plain data everywhere, so the bounds cost implementors nothing.
pub trait ObjectAlgorithm: Sync {
    /// The shared portion of the object state (heap, top/head pointers,
    /// hazard-pointer slots, locks…).
    type Shared: Clone + Eq + Hash + Debug + Send + Sync;
    /// The per-invocation local state: program counter plus registers.
    type Frame: Clone + Eq + Hash + Debug + Send + Sync;

    /// Human-readable algorithm name (used in reports and benches).
    fn name(&self) -> &'static str;

    /// The object's methods, in [`MethodId`] order.
    fn methods(&self) -> Vec<MethodSpec>;

    /// The initial shared state.
    fn initial_shared(&self) -> Self::Shared;

    /// Builds the frame for a fresh invocation of `method` with `arg` by
    /// thread `t` (the visible call action itself is produced by the most
    /// general client).
    fn begin(&self, method: MethodId, arg: Option<Value>, t: ThreadId) -> Self::Frame;

    /// Enumerates every possible next step of thread `t` executing `frame`.
    ///
    /// An empty `out` means the thread is blocked in this state.
    fn step(
        &self,
        shared: &Self::Shared,
        frame: &Self::Frame,
        t: ThreadId,
        out: &mut Vec<Outcome<Self::Shared, Self::Frame>>,
    );

    /// Canonicalizes the shared state together with all live frames
    /// (garbage collection + renaming of heap pointers). The default is a
    /// no-op for algorithms without a heap.
    fn canonicalize(&self, _shared: &mut Self::Shared, _frames: &mut [&mut Self::Frame]) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn method_spec_constructors() {
        let m = MethodSpec::no_arg("pop");
        assert_eq!(m.args, vec![None]);
        let m = MethodSpec::with_args("push", &[1, 2]);
        assert_eq!(m.args, vec![Some(1), Some(2)]);
    }
}
