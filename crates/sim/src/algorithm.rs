//! The object-algorithm trait: one small-step state machine per method body.

use crate::Value;
use bb_lts::ThreadId;
use std::fmt::Debug;
use std::hash::Hash;

/// Index of a method within an algorithm's [`MethodSpec`] list.
pub type MethodId = usize;

/// Description of one object method for the most general client.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MethodSpec {
    /// Method name as it appears in call/return actions.
    pub name: &'static str,
    /// The (finite) argument domain: one entry per possible invocation.
    /// `None` models a method without parameters.
    pub args: Vec<Option<Value>>,
}

impl MethodSpec {
    /// A method without parameters.
    pub fn no_arg(name: &'static str) -> Self {
        MethodSpec {
            name,
            args: vec![None],
        }
    }

    /// A method invoked with every value of `domain`.
    pub fn with_args(name: &'static str, domain: &[Value]) -> Self {
        MethodSpec {
            name,
            args: domain.iter().map(|&v| Some(v)).collect(),
        }
    }
}

/// One possible outcome of a single internal step of a method body.
#[derive(Debug, Clone)]
pub enum Outcome<Shared, Frame> {
    /// The method performs an internal step (one shared-memory access),
    /// staying inside its body. `tag` names the source line (e.g. `"L28"`)
    /// for the τ-labels of Figures 6/7.
    Tau {
        /// Updated shared state.
        shared: Shared,
        /// Updated local continuation.
        frame: Frame,
        /// Source-line tag carried on the τ action.
        tag: &'static str,
    },
    /// The method completes, returning `val`.
    Ret {
        /// Updated shared state.
        shared: Shared,
        /// Return value (`None` for `void` methods).
        val: Option<Value>,
        /// Source-line tag (recorded for diagnostics only — the visible
        /// return action itself is labeled by method and value).
        tag: &'static str,
    },
}

/// Independence class of one thread's *next* internal step, as exposed to
/// the ample-set partial-order reduction in `bb-reduce`.
///
/// The classification must be **hereditary**: it describes not just the
/// immediate memory accesses of the step but a promise about every way the
/// touched locations can be accessed for as long as the step stays enabled.
/// That is what makes prioritizing the step sound for divergence-sensitive
/// branching bisimilarity (condition C1 of the ample conditions — no action
/// of another thread that *conflicts* with the step can occur before it).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Footprint {
    /// The step touches only data no other thread can ever access while the
    /// step is pending: thread-private registers, a freshly allocated heap
    /// node that has not been published, or reads of locations that are
    /// immutable once reachable (e.g. a published list node's `next` field
    /// in a stack whose nodes are written only before publication).
    Private,
    /// The step touches only data protected by an exclusive lock the thread
    /// currently holds, **including the release step itself**. Sound
    /// because no co-enabled step of another thread can read or write the
    /// protected data (contenders are blocked), and every future accessor
    /// is ordered after the release in every interleaving anyway.
    Owned,
    /// Anything else — reads or writes of shared locations that another
    /// thread's step may conflict with. Never prioritized. This is the
    /// (always sound) default.
    Global,
}

/// A permutation of client thread ids, passed to
/// [`ObjectAlgorithm::rename_threads`] by the thread-symmetry
/// canonicalization in `bb-reduce`.
///
/// Maps the 1-based [`ThreadId`]s `1..=n` onto themselves.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ThreadPerm {
    /// `map[i]` is the new 1-based id of thread `i + 1`.
    map: Vec<u8>,
}

impl ThreadPerm {
    /// Builds a permutation from `map`, where `map[i]` is the new 1-based
    /// id of thread `i + 1`. Panics if `map` is not a permutation of
    /// `1..=map.len()`.
    pub fn new(map: Vec<u8>) -> Self {
        let n = map.len();
        let mut seen = vec![false; n];
        for &m in &map {
            assert!(
                (1..=n as u8).contains(&m) && !std::mem::replace(&mut seen[m as usize - 1], true),
                "not a permutation of 1..={n}: {map:?}"
            );
        }
        ThreadPerm { map }
    }

    /// The identity permutation on `n` threads.
    pub fn identity(n: u8) -> Self {
        ThreadPerm {
            map: (1..=n).collect(),
        }
    }

    /// Number of threads the permutation acts on.
    pub fn arity(&self) -> usize {
        self.map.len()
    }

    /// Whether this is the identity permutation.
    pub fn is_identity(&self) -> bool {
        self.map.iter().enumerate().all(|(i, &m)| m == i as u8 + 1)
    }

    /// The image of thread `t` (ids outside `1..=n` are fixed).
    pub fn apply(&self, t: ThreadId) -> ThreadId {
        match self.map.get(t.0.wrapping_sub(1) as usize) {
            Some(&m) => ThreadId(m),
            None => t,
        }
    }

    /// Permutes a per-thread vector `v` (indexed by thread number − 1) so
    /// that the entry of old thread `t` moves to index `apply(t) − 1`.
    /// A no-op when `v` is shorter than the permutation.
    pub fn apply_vec<T: Clone>(&self, v: &mut [T]) {
        if v.len() < self.map.len() {
            return;
        }
        let old: Vec<T> = v[..self.map.len()].to_vec();
        for (i, entry) in old.into_iter().enumerate() {
            v[self.map[i] as usize - 1] = entry;
        }
    }
}

/// A concurrent object algorithm in small-step operational style.
///
/// Implementations model each shared-memory access (read, write, CAS, lock
/// acquisition…) as one internal step, mirroring the interleaving
/// granularity of the paper's LNT models. Blocking primitives (a lock held
/// by another thread) are modeled by producing *no* outcome: the thread
/// simply has no transition until the lock is released.
///
/// The `Sync`/`Send` bounds let the most general client run on the parallel
/// exploration engine (a parallel [`bb_lts::ExploreOptions`]); algorithm states
/// are plain data everywhere, so the bounds cost implementors nothing.
pub trait ObjectAlgorithm: Sync {
    /// The shared portion of the object state (heap, top/head pointers,
    /// hazard-pointer slots, locks…). The [`Pack`](crate::Pack) bound gives
    /// every state a canonical byte encoding, which is what the compact
    /// exploration engine hashes and stores (see `crate::pack`).
    type Shared: Clone + Eq + Hash + Debug + Send + Sync + crate::Pack;
    /// The per-invocation local state: program counter plus registers.
    type Frame: Clone + Eq + Hash + Debug + Send + Sync + crate::Pack;

    /// Human-readable algorithm name (used in reports and benches).
    fn name(&self) -> &'static str;

    /// The object's methods, in [`MethodId`] order.
    fn methods(&self) -> Vec<MethodSpec>;

    /// The initial shared state.
    fn initial_shared(&self) -> Self::Shared;

    /// Builds the frame for a fresh invocation of `method` with `arg` by
    /// thread `t` (the visible call action itself is produced by the most
    /// general client).
    fn begin(&self, method: MethodId, arg: Option<Value>, t: ThreadId) -> Self::Frame;

    /// Enumerates every possible next step of thread `t` executing `frame`.
    ///
    /// An empty `out` means the thread is blocked in this state.
    fn step(
        &self,
        shared: &Self::Shared,
        frame: &Self::Frame,
        t: ThreadId,
        out: &mut Vec<Outcome<Self::Shared, Self::Frame>>,
    );

    /// Canonicalizes the shared state together with all live frames
    /// (garbage collection + renaming of heap pointers). The default is a
    /// no-op for algorithms without a heap.
    fn canonicalize(&self, _shared: &mut Self::Shared, _frames: &mut [&mut Self::Frame]) {}

    /// Independence class of thread `t`'s next step when executing `frame`
    /// in `shared` — metadata for the ample-set partial-order reduction.
    ///
    /// The default, [`Footprint::Global`], is always sound and disables
    /// reduction for the step. Override only where the hereditary promise
    /// documented on [`Footprint`] genuinely holds; the differential
    /// harness in `bb-reduce` cross-checks every annotation by comparing
    /// reduced and full state spaces up to divergence-sensitive branching
    /// bisimilarity.
    fn footprint(&self, _shared: &Self::Shared, _frame: &Self::Frame, _t: ThreadId) -> Footprint {
        Footprint::Global
    }

    /// Applies a thread-id permutation to every [`ThreadId`]-dependent part
    /// of the shared state and the live frames (per-thread slot arrays,
    /// lock-owner fields…), for the thread-symmetry canonicalization in
    /// `bb-reduce`.
    ///
    /// The default no-op is sound for algorithms whose shared state never
    /// mentions thread ids (symmetry then reduces to the already-canonical
    /// status vector). Implementations must only relocate per-thread data —
    /// an entry owned by thread `t` moves to `perm.apply(t)` — and must be
    /// observably symmetric: permuting the slots of threads with identical
    /// local frames must not change any future visible behavior.
    fn rename_threads(
        &self,
        _shared: &mut Self::Shared,
        _frames: &mut [&mut Self::Frame],
        _perm: &ThreadPerm,
    ) {
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn method_spec_constructors() {
        let m = MethodSpec::no_arg("pop");
        assert_eq!(m.args, vec![None]);
        let m = MethodSpec::with_args("push", &[1, 2]);
        assert_eq!(m.args, vec![Some(1), Some(2)]);
    }
}
