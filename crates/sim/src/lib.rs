//! Operational semantics for concurrent object programs.
//!
//! This crate plays the role of the LNT modeling language and CADP state
//! space generator in the paper: an algorithm is a small-step state machine
//! per thread ([`ObjectAlgorithm`]) over an explicitly modeled shared state,
//! and the *most general client* ([`System`]) drives a bounded number of
//! threads that repeatedly invoke the object's methods with every possible
//! parameter (Section II-B). Unfolding a [`System`] with
//! [`bb_lts::explore`] yields the object LTS of Definition 2.1: call and
//! return actions are visible, every program step is an internal τ tagged
//! with its source line for diagnostics.
//!
//! Linked data structures use the canonical [`Heap`]: node identities are
//! abstract, and after every step the heap is garbage-collected and renamed
//! canonically from the roots. This is a symmetry reduction — action labels
//! never mention node identities, so the reduced system is strongly
//! bisimilar to the unreduced one — and it gives the model perfect-GC
//! semantics, matching the paper's LNT models (no spurious ABA on recycled
//! addresses).
//!
//! Sequential specifications ([`SequentialSpec`]) are lifted to coarse
//! "one atomic block per method" object programs ([`AtomicSpec`]) — the
//! linearizable specifications Θsp of Section II-C.

mod algorithm;
mod client;
mod heap;
mod pack;
mod ptr;
mod spec;

pub use algorithm::{Footprint, MethodId, MethodSpec, ObjectAlgorithm, Outcome, ThreadPerm};
#[allow(deprecated)]
pub use client::{explore_system_governed, explore_system_governed_jobs, explore_system_jobs};
pub use client::{
    explore_system, explore_system_fused, explore_system_report, explore_system_with, Bound,
    SysState, System, ThreadStatus,
};
pub use heap::{Heap, HeapNode, Renaming};
pub use pack::{Pack, PackReader, PackWriter, STATE_ENCODING_VERSION};
pub use ptr::Ptr;
pub use spec::{AtomicSpec, SequentialSpec};

/// Values exchanged with object methods (arguments and return values).
pub type Value = i64;

/// Conventional return value standing for `EMPTY` (queue/stack empty…).
pub const EMPTY: Value = -1;

/// Conventional return value standing for boolean `true`.
pub const TRUE: Value = 1;

/// Conventional return value standing for boolean `false`.
pub const FALSE: Value = 0;
