//! Abstract heap pointers.

use std::fmt;

/// An abstract pointer into a [`Heap`](crate::Heap).
///
/// Two sentinels exist: [`Ptr::NULL`] (the null pointer of the modeled
/// program) and [`Ptr::DANGLING`] (a pointer whose node has been reclaimed —
/// all dangling pointers are canonically identified because the modeled
/// algorithms only ever compare them against live pointers or null).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Ptr(pub u32);

impl Ptr {
    /// The null pointer.
    pub const NULL: Ptr = Ptr(u32::MAX);
    /// A pointer to reclaimed memory (canonical representative).
    pub const DANGLING: Ptr = Ptr(u32::MAX - 1);

    /// Is this the null pointer?
    #[inline]
    pub fn is_null(self) -> bool {
        self == Ptr::NULL
    }

    /// Does this pointer possibly refer to a heap node (not null, not
    /// dangling)?
    #[inline]
    pub fn is_node(self) -> bool {
        self != Ptr::NULL && self != Ptr::DANGLING
    }

    /// Index into the heap arena.
    ///
    /// # Panics
    ///
    /// Panics if the pointer is null or dangling.
    #[inline]
    pub fn index(self) -> usize {
        assert!(self.is_node(), "dereferenced {self:?}");
        self.0 as usize
    }
}

impl fmt::Debug for Ptr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if *self == Ptr::NULL {
            write!(f, "null")
        } else if *self == Ptr::DANGLING {
            write!(f, "dangling")
        } else {
            write!(f, "n{}", self.0)
        }
    }
}

impl fmt::Display for Ptr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sentinels() {
        assert!(Ptr::NULL.is_null());
        assert!(!Ptr::NULL.is_node());
        assert!(!Ptr::DANGLING.is_node());
        assert!(!Ptr::DANGLING.is_null());
        assert!(Ptr(0).is_node());
    }

    #[test]
    #[should_panic(expected = "dereferenced")]
    fn null_index_panics() {
        let _ = Ptr::NULL.index();
    }

    #[test]
    fn debug_forms() {
        assert_eq!(format!("{:?}", Ptr::NULL), "null");
        assert_eq!(format!("{:?}", Ptr::DANGLING), "dangling");
        assert_eq!(format!("{:?}", Ptr(3)), "n3");
    }
}
