//! State-space reduction under ≈-quotienting (the Fig. 10 experiment in
//! miniature): fix 2 threads, vary operations, and watch the quotient stay
//! orders of magnitude smaller than the object system. Each row also shows
//! the *on-the-fly* reduction (`--reduce full`: ample-set POR +
//! thread-symmetry), which shrinks the LTS **before** quotienting without
//! changing any verdict.
//!
//! ```sh
//! cargo run --release --example state_space [max_ops]
//! ```

use bbverify::algorithms::{ms_queue::MsQueue, treiber::Treiber, treiber_hp::TreiberHp};
use bbverify::bisim::{partition, quotient, Equivalence};
use bbverify::lts::ExploreOptions;
use bbverify::reduce::{explore_reduced, ReduceMode};
use bbverify::sim::{explore_system_with, Bound, ObjectAlgorithm};

fn sweep<A: ObjectAlgorithm>(name: &str, alg: &A, max_ops: u32) {
    println!("{name}: 2 threads, 1..={max_ops} ops");
    println!(
        "{:>5} {:>12} {:>12} {:>10} {:>10}  reduction counters",
        "#op", "|Δ|", "|Δ reduced|", "|Δ/≈|", "factor"
    );
    for ops in 1..=max_ops {
        let bound = Bound::new(2, ops);
        let opts = ExploreOptions::new();
        let lts = match explore_system_with(alg, bound, &opts) {
            Ok(lts) => lts,
            Err(e) => {
                println!("{ops:>5} (exploration aborted: {e})");
                break;
            }
        };
        let (reduced, stats) = match explore_reduced(alg, bound, ReduceMode::Full, &opts) {
            Ok(r) => r,
            Err(e) => {
                println!("{ops:>5} (reduced exploration aborted: {e})");
                break;
            }
        };
        let p = partition(&lts, Equivalence::Branching);
        let q = quotient(&lts, &p);
        println!(
            "{ops:>5} {:>12} {:>12} {:>10} {:>10.1}  {stats}",
            lts.num_states(),
            reduced.num_states(),
            q.lts.num_states(),
            lts.num_states() as f64 / q.lts.num_states() as f64
        );
    }
    println!();
}

fn main() {
    let max_ops: u32 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(4);
    sweep("Treiber stack", &Treiber::new(&[1]), max_ops);
    sweep("Treiber stack + HP", &TreiberHp::new(&[1], 2), max_ops);
    sweep("MS lock-free queue", &MsQueue::new(&[1]), max_ops);
    println!("The ≈-quotient factor grows with the number of operations —");
    println!("the trend behind Fig. 10 of the paper. The on-the-fly column is");
    println!("computed *during* exploration (sound up to ≈div; see DESIGN.md).");
}
