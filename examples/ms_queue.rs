//! The MS lock-free queue walk-through of Section VI-D:
//!
//! 1. generate the object LTS under the most general client,
//! 2. compute the branching-bisimulation quotient and show that the only
//!    internal steps surviving in it are the key statements of Fig. 5
//!    (lines 8, 20, 21, 28) — the linearization-point analysis,
//! 3. verify linearizability on the quotients (Theorem 5.3),
//! 4. verify lock-freedom automatically (Theorem 5.9) and via the abstract
//!    queue of Fig. 8 (Theorem 5.8),
//! 5. show the diagnostic for the non-fixed LP: the quotient of the queue
//!    is *not* branching bisimilar to the quotient of its specification,
//!    and print a distinguishing explanation (cf. Fig. 7).
//!
//! ```sh
//! cargo run --release --example ms_queue
//! ```

use bbverify::algorithms::abstracts::AbsQueue;
use bbverify::algorithms::{ms_queue::MsQueue, specs::SeqQueue};
use bbverify::bisim::{partition, quotient, BisimCheck, Equivalence};
use bbverify::core::{
    verify_linearizability, verify_lock_freedom, verify_lock_freedom_via_abstraction,
};
use bbverify::lts::ExploreLimits;
use bbverify::sim::{explore_system, AtomicSpec, Bound};
use std::collections::BTreeSet;

fn main() -> Result<(), bbverify::lts::ExploreError> {
    let bound = Bound::new(2, 3);
    let limits = ExploreLimits::default();

    println!("== 1. state-space generation ==");
    let imp = explore_system(&MsQueue::new(&[1]), bound, limits)?;
    let spec = explore_system(&AtomicSpec::new(SeqQueue::new(&[1])), bound, limits)?;
    println!("Δ_MS  : {} states, {} transitions", imp.num_states(), imp.num_transitions());
    println!("Θsp   : {} states", spec.num_states());

    println!("\n== 2. quotient analysis (linearization points for free) ==");
    let p = partition(&imp, Equivalence::Branching);
    let q = quotient(&imp, &p);
    println!("Δ/≈   : {} states (reduction ×{:.0})",
        q.lts.num_states(),
        imp.num_states() as f64 / q.lts.num_states() as f64);
    let surviving: BTreeSet<&str> = q
        .lts
        .iter_transitions()
        .filter(|(_, a, _)| !q.lts.is_visible(*a))
        .filter_map(|(_, a, _)| q.lts.action(a).tag.as_deref())
        .collect();
    println!("internal steps surviving in the quotient: {surviving:?}");
    println!("(the effective statements; the paper reports lines 8, 20, 21, 28)");

    println!("\n== 3. linearizability via Theorem 5.3 ==");
    let lin = verify_linearizability(&imp, &spec);
    println!(
        "Δ/≈ ⊑tr Θsp/≈ : {}   ({} vs {} quotient states, {:?})",
        lin.linearizable, lin.impl_quotient_states, lin.spec_quotient_states, lin.time
    );

    println!("\n== 4. lock-freedom ==");
    let lf = verify_lock_freedom(&imp);
    println!(
        "Theorem 5.9 (automatic): lock-free = {}   (Δ ≈div Δ/≈: {})",
        lf.lock_free, lf.div_bisimilar_to_quotient
    );
    let abs = explore_system(&AbsQueue::new(&[1]), bound, limits)?;
    let via_abs = verify_lock_freedom_via_abstraction(&imp, &abs);
    println!(
        "Theorem 5.8 (abstract queue of Fig. 8): Δ ≈div ΔAbs = {}, ΔAbs lock-free = {} ⇒ lock-free = {:?}",
        via_abs.div_bisimilar, via_abs.abstract_lock_free, via_abs.concrete_lock_free
    );
    println!(
        "|ΔAbs| = {} (vs |Δ| = {})",
        via_abs.abstract_states, via_abs.impl_states
    );

    println!("\n== 5. the non-fixed linearization point (cf. Fig. 7) ==");
    let check = BisimCheck::run(&imp, &spec, Equivalence::Branching);
    println!("Δ ≈ Θsp : {}", check.equivalent);
    if let Some(formula) = check.diagnosis() {
        println!("distinguishing explanation (Δ satisfies, Θsp does not):");
        println!("  {formula}");
        println!("(the one-block spec cannot mirror the Deq interleaving of lines 20/21/28)");
    }
    Ok(())
}
