//! Verifying your own algorithm: implement [`ObjectAlgorithm`] for a
//! counter, watch the naive read–then–write increment fail linearizability
//! (the classic lost update), then fix it with a CAS loop and verify.
//!
//! ```sh
//! cargo run --release --example custom_object
//! ```

use bbverify::core::{verify_case, VerifyConfig};
use bbverify::lts::ThreadId;
use bbverify::sim::{
    AtomicSpec, Bound, MethodId, MethodSpec, ObjectAlgorithm, Outcome, SequentialSpec, Value,
};

/// Sequential specification: a counter with `inc` (returns the old value)
/// and `read`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct SeqCounter(Value);


// Tuple structs are outside `impl_pack!`'s derive grammar, so pack by hand.
impl bb_sim::Pack for SeqCounter {
    fn pack(&self, w: &mut bb_sim::PackWriter<'_>) {
        self.0.pack(w);
    }
    fn unpack(r: &mut bb_sim::PackReader<'_>) -> Option<Self> {
        bb_sim::Pack::unpack(r).map(SeqCounter)
    }
}

impl SequentialSpec for SeqCounter {
    fn name(&self) -> &'static str {
        "counter-spec"
    }
    fn methods(&self) -> Vec<MethodSpec> {
        vec![MethodSpec::no_arg("inc"), MethodSpec::no_arg("read")]
    }
    fn apply(&self, method: MethodId, _arg: Option<Value>) -> (Self, Option<Value>) {
        match method {
            0 => (SeqCounter(self.0 + 1), Some(self.0)),
            _ => (self.clone(), Some(self.0)),
        }
    }
}

/// The broken implementation: `inc` reads, then writes `read+1` in a second
/// step — two concurrent increments can both observe the same value.
#[derive(Debug, Clone)]
struct NaiveCounter;

#[derive(Debug, Clone, PartialEq, Eq, Hash)]
enum NaiveFrame {
    IncRead,
    IncWrite(Value),
    Read,
    Done(Value),
}

bb_sim::impl_pack!(enum NaiveFrame { 0 => IncRead, 1 => IncWrite(a), 2 => Read, 3 => Done(a) });

impl ObjectAlgorithm for NaiveCounter {
    type Shared = Value;
    type Frame = NaiveFrame;

    fn name(&self) -> &'static str {
        "naive counter (read; write)"
    }
    fn methods(&self) -> Vec<MethodSpec> {
        vec![MethodSpec::no_arg("inc"), MethodSpec::no_arg("read")]
    }
    fn initial_shared(&self) -> Value {
        0
    }
    fn begin(&self, method: MethodId, _arg: Option<Value>, _t: ThreadId) -> NaiveFrame {
        if method == 0 {
            NaiveFrame::IncRead
        } else {
            NaiveFrame::Read
        }
    }
    fn step(
        &self,
        shared: &Value,
        frame: &NaiveFrame,
        _t: ThreadId,
        out: &mut Vec<Outcome<Value, NaiveFrame>>,
    ) {
        match frame {
            NaiveFrame::IncRead => out.push(Outcome::Tau {
                shared: *shared,
                frame: NaiveFrame::IncWrite(*shared),
                tag: "read",
            }),
            NaiveFrame::IncWrite(seen) => out.push(Outcome::Tau {
                shared: seen + 1, // blind write: the lost update
                frame: NaiveFrame::Done(*seen),
                tag: "write",
            }),
            NaiveFrame::Read => out.push(Outcome::Tau {
                shared: *shared,
                frame: NaiveFrame::Done(*shared),
                tag: "read",
            }),
            NaiveFrame::Done(v) => out.push(Outcome::Ret {
                shared: *shared,
                val: Some(*v),
                tag: "",
            }),
        }
    }
}

/// The fix: retry with CAS until the increment takes effect atomically.
#[derive(Debug, Clone)]
struct CasCounter;

#[derive(Debug, Clone, PartialEq, Eq, Hash)]
enum CasFrame {
    IncRead,
    IncCas(Value),
    Read,
    Done(Value),
}

bb_sim::impl_pack!(enum CasFrame { 0 => IncRead, 1 => IncCas(a), 2 => Read, 3 => Done(a) });

impl ObjectAlgorithm for CasCounter {
    type Shared = Value;
    type Frame = CasFrame;

    fn name(&self) -> &'static str {
        "CAS counter"
    }
    fn methods(&self) -> Vec<MethodSpec> {
        vec![MethodSpec::no_arg("inc"), MethodSpec::no_arg("read")]
    }
    fn initial_shared(&self) -> Value {
        0
    }
    fn begin(&self, method: MethodId, _arg: Option<Value>, _t: ThreadId) -> CasFrame {
        if method == 0 {
            CasFrame::IncRead
        } else {
            CasFrame::Read
        }
    }
    fn step(
        &self,
        shared: &Value,
        frame: &CasFrame,
        _t: ThreadId,
        out: &mut Vec<Outcome<Value, CasFrame>>,
    ) {
        match frame {
            CasFrame::IncRead => out.push(Outcome::Tau {
                shared: *shared,
                frame: CasFrame::IncCas(*shared),
                tag: "read",
            }),
            CasFrame::IncCas(seen) => {
                if shared == seen {
                    out.push(Outcome::Tau {
                        shared: seen + 1,
                        frame: CasFrame::Done(*seen),
                        tag: "cas",
                    });
                } else {
                    out.push(Outcome::Tau {
                        shared: *shared,
                        frame: CasFrame::IncRead,
                        tag: "cas",
                    });
                }
            }
            CasFrame::Read => out.push(Outcome::Tau {
                shared: *shared,
                frame: CasFrame::Done(*shared),
                tag: "read",
            }),
            CasFrame::Done(v) => out.push(Outcome::Ret {
                shared: *shared,
                val: Some(*v),
                tag: "",
            }),
        }
    }
}

fn main() -> Result<(), bbverify::lts::ExploreError> {
    let spec = AtomicSpec::new(SeqCounter(0));
    let config = VerifyConfig::new(Bound::new(2, 2));

    println!("== naive counter (read; write) ==");
    let report = verify_case(&NaiveCounter, &spec, config)?;
    println!("linearizable: {}", report.linearizable());
    if let Some(v) = &report.linearizability.violation {
        println!("counterexample (two incs observe the same value):");
        println!("  {}", v.to_pretty());
    }
    assert!(!report.linearizable());

    println!("\n== CAS counter ==");
    let report = verify_case(&CasCounter, &spec, config)?;
    println!("linearizable: {}", report.linearizable());
    println!("lock-free   : {}", report.lock_free());
    assert!(report.linearizable() && report.lock_free());
    Ok(())
}
