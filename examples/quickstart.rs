//! Quickstart: verify linearizability and lock-freedom of the Treiber
//! stack in a dozen lines.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use bbverify::algorithms::{specs::SeqStack, treiber::Treiber};
use bbverify::core::{verify_case, VerifyConfig};
use bbverify::sim::{AtomicSpec, Bound};

fn main() -> Result<(), bbverify::lts::ExploreError> {
    // The object under test: Treiber's lock-free stack, clients pushing 1/2.
    let algorithm = Treiber::new(&[1, 2]);
    // Its linearizable specification: a sequential stack, one atomic block
    // per method (Section II-C of the paper).
    let spec = AtomicSpec::new(SeqStack::new(&[1, 2]));

    // Most general client: 2 threads × 2 operations each.
    let config = VerifyConfig::new(Bound::new(2, 2));
    let report = verify_case(&algorithm, &spec, config)?;

    println!("algorithm        : {}", report.name);
    println!(
        "bound            : {} threads × {} ops",
        report.bound.threads, report.bound.ops_per_thread
    );
    println!("|Δ|              : {}", report.linearizability.impl_states);
    println!(
        "|Δ/≈|            : {}  (reduction ×{:.1})",
        report.linearizability.impl_quotient_states,
        report.linearizability.reduction_factor()
    );
    println!("linearizable     : {}", report.linearizable());
    println!("lock-free        : {}", report.lock_free());
    assert!(report.linearizable() && report.lock_free());
    Ok(())
}
