//! Automatic bug hunting (Section VI-F): the three violations the paper's
//! technique finds, each with a machine-generated counterexample.
//!
//! * HW queue — the dequeue loop diverges (lock-freedom, Table V, Fig. 9);
//! * Treiber stack + revised hazard pointers (Fu et al.) — the *new* bug:
//!   the reclaiming thread waits on another thread's hazard pointer
//!   forever (lock-freedom);
//! * HM lock-free list, first printing — the *known* bug: two concurrent
//!   `remove(k)` both return `true` (linearizability).
//!
//! ```sh
//! cargo run --release --example bug_hunt
//! ```

use bbverify::algorithms::{
    hm_list::HmList, hw_queue::HwQueue, specs::{SeqQueue, SeqSet, SeqStack},
    treiber_hp_fu::TreiberHpFu,
};
use bbverify::core::{verify_case, VerifyConfig};
use bbverify::lts::{ExploreLimits, Lts};
use bbverify::sim::{explore_system, AtomicSpec, Bound};

/// Renders a divergence lasso in the CADP style of Fig. 9.
fn print_lasso(lts: &Lts, lasso: &bbverify::bisim::Lasso) {
    for line in bbverify::core::format_lasso(lts, lasso).lines() {
        println!("   {line}");
    }
}

fn main() -> Result<(), bbverify::lts::ExploreError> {
    println!("=== bug 1: HW queue is not lock-free (3 threads, 1 op) ===");
    let bound = Bound::new(3, 1);
    let hw = HwQueue::for_bound(&[1], 3, 1);
    let report = verify_case(
        &hw,
        &AtomicSpec::new(SeqQueue::new(&[1])),
        VerifyConfig::new(bound),
    )?;
    println!("linearizable: {}", report.linearizable());
    let lf = report.lock_freedom.as_ref().unwrap();
    println!("lock-free   : {}", lf.lock_free);
    if let Some(lasso) = &lf.divergence {
        let lts = explore_system(&hw, bound, ExploreLimits::default())?;
        print_lasso(&lts, lasso);
    }

    println!("\n=== bug 2 (new): Treiber + HP, revised reclamation (2 threads) ===");
    let bound = Bound::new(2, 2);
    let fu = TreiberHpFu::new(&[1], 2);
    let report = verify_case(
        &fu,
        &AtomicSpec::new(SeqStack::new(&[1])),
        VerifyConfig::new(bound),
    )?;
    println!("linearizable: {}", report.linearizable());
    let lf = report.lock_freedom.as_ref().unwrap();
    println!("lock-free   : {}", lf.lock_free);
    if let Some(lasso) = &lf.divergence {
        let lts = explore_system(&fu, bound, ExploreLimits::default())?;
        println!("the error path ends in a self-loop re-reading the other");
        println!("thread's hazard pointer (tag F7):");
        print_lasso(&lts, lasso);
    }

    println!("\n=== bug 3 (known): HM lock-free list, first printing (2 threads) ===");
    let report = verify_case(
        &HmList::buggy(&[1]),
        &AtomicSpec::new(SeqSet::new(&[1])),
        VerifyConfig::new(Bound::new(2, 2)),
    )?;
    println!("linearizable: {}", report.linearizable());
    if let Some(v) = &report.linearizability.violation {
        println!("shortest non-linearizable history (removes the same item twice):");
        println!("   {}", v.to_pretty());
    }

    println!("\nAll counterexamples were generated with two or three threads,");
    println!("demonstrating the bug-hunting potential of the approach.");
    Ok(())
}
