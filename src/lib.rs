//! **bbverify** — verifying linearizability and lock-freedom of concurrent
//! objects via branching bisimulation.
//!
//! A from-scratch Rust reproduction of *"Branching Bisimulation and
//! Concurrent Object Verification"* (Yang, Liu, Katoen, Lin, Wu — DSN
//! 2018). This umbrella crate re-exports the workspace:
//!
//! * [`lts`] — labeled transition systems, exploration, graph analyses.
//! * [`bisim`] — branching / divergence-sensitive / weak bisimulation,
//!   quotients, divergence witnesses, diagnostics.
//! * [`refine`] — trace refinement (linearizability's semantic core).
//! * [`ktrace`] — the k-trace equivalence hierarchy of Definition 3.1.
//! * [`ltl`] — next-free LTL model checking (progress properties).
//! * [`sim`] — operational semantics + most general client.
//! * [`algorithms`] — the 14 benchmark data structures, their sequential
//!   specifications and abstract programs.
//! * [`core`] — the two verification methods of Fig. 1.
//! * [`reduce`] — on-the-fly partial-order + thread-symmetry reduction
//!   with a differential `≈div` equivalence harness.
//! * [`serve`] — verification-as-a-service: the shared job runner and the
//!   `bbv serve` daemon (queue, journal, cache-backed admission, live
//!   progress streaming).
//!
//! # Quickstart
//!
//! ```
//! use bbverify::algorithms::{specs::SeqStack, treiber::Treiber};
//! use bbverify::core::{verify_case, VerifyConfig};
//! use bbverify::sim::{AtomicSpec, Bound};
//!
//! let report = verify_case(
//!     &Treiber::new(&[1]),
//!     &AtomicSpec::new(SeqStack::new(&[1])),
//!     VerifyConfig::new(Bound::new(2, 1)),
//! )?;
//! assert!(report.linearizable());
//! assert!(report.lock_free());
//! # Ok::<(), bbverify::lts::ExploreError>(())
//! ```

pub use bb_algorithms as algorithms;
pub use bb_bisim as bisim;
pub use bb_core as core;
pub use bb_ktrace as ktrace;
pub use bb_lts as lts;
pub use bb_ltl as ltl;
pub use bb_reduce as reduce;
pub use bb_refine as refine;
pub use bb_serve as serve;
pub use bb_sim as sim;
