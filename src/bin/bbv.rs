//! `bbv` — command-line front end for the branching-bisimulation verifier.
//!
//! ```sh
//! bbv list
//! bbv verify ms-queue --threads 2 --ops 2
//! bbv verify ms-queue --threads 3 --ops 3 --timeout 30s --max-states 1e6
//! bbv verify hm-list-buggy --threads 2 --ops 2      # shows the counterexample
//! bbv quotient treiber --threads 2 --ops 1 --dot out.dot
//! bbv check hw-queue --formula "G F (ret | done)"   # arbitrary next-free LTL
//! bbv verify ms-queue --ops 3 --timeout 1h --checkpoint ckpt/   # crash-safe
//! bbv resume ckpt/                                  # continue a killed run
//! bbv verify treiber --cache .bbv-cache             # memoize the verdict
//! bbv cache stats .bbv-cache
//! ```
//!
//! Exit codes: `0` every checked property was proved, `1` a property was
//! refuted, `2` the verification was inconclusive (budget exhausted or an
//! internal fault), `3` usage or parse error.

use bbverify::algorithms::{
    ccas::Ccas, coarse::CoarseLocked, dglm_queue::DglmQueue, fine_list::FineList, hm_list::HmList,
    hsy_stack::HsyStack, hw_queue::HwQueue, lazy_list::LazyList, ms_queue::MsQueue,
    newcas::NewCas, optimistic_list::OptimisticList, rdcss::Rdcss, specs::*, treiber::Treiber,
    treiber_hp::TreiberHp, treiber_hp_fu::TreiberHpFu, two_lock_queue::TwoLockQueue,
};
use bbverify::bisim::{quotient, Equivalence, PartitionOptions, RefineMode};
use bbverify::core::{
    run_isolated, verify_case_governed, verify_case_lts_pre, verify_wait_freedom, GovernedConfig,
    Verdict, VerifyConfig,
};
use bbverify::bisim::partition_opts;
use bbverify::lts::{
    to_aut, to_dot, Budget, ExploreLimits, Jobs, Lts, PredecessorTable, Watchdog,
};
use bbverify::lts::ExploreOptions;
use bbverify::reduce::{
    differential_check, explore_reduced, verify_case_reduced_governed, ReduceMode,
};
use bbverify::sim::{
    explore_system_fused, explore_system_with, AtomicSpec, Bound, ObjectAlgorithm, SequentialSpec,
};
use bb_persist::{Cache, CacheEntry};
use std::path::Path;
use std::time::Duration;

const EXIT_PROVED: i32 = 0;
const EXIT_REFUTED: i32 = 1;
const EXIT_INCONCLUSIVE: i32 = 2;
const EXIT_USAGE: i32 = 3;

const ALGORITHMS: &[(&str, &str)] = &[
    ("treiber", "Treiber lock-free stack"),
    ("treiber-hp", "Treiber stack + hazard pointers (Michael 2004)"),
    ("treiber-hp-fu", "Treiber stack + revised HP (Fu et al.; lock-freedom bug)"),
    ("ms-queue", "Michael-Scott lock-free queue"),
    ("dglm-queue", "Doherty-Groves-Luchangco-Moir queue"),
    ("hw-queue", "Herlihy-Wing queue (lock-freedom violation)"),
    ("ccas", "conditional CAS (Turon et al.)"),
    ("rdcss", "restricted double-compare single-swap (Harris et al.)"),
    ("newcas", "NewCompareAndSet register (Figs. 3/4)"),
    ("hm-list", "Harris-Michael lock-free list (revised)"),
    ("hm-list-buggy", "Harris-Michael list, first printing (linearizability bug)"),
    ("hsy-stack", "Hendler-Shavit-Yerushalmi elimination stack"),
    ("lazy-list", "Heller et al. lazy list (lock-based)"),
    ("optimistic-list", "optimistic list (lock-based)"),
    ("fine-list", "fine-grained hand-over-hand list (lock-based)"),
    ("two-lock-queue", "two-lock MS queue (blocking; extension)"),
    ("coarse-stack", "coarse-locked stack baseline (extension)"),
    ("coarse-queue", "coarse-locked queue baseline (extension)"),
    ("coarse-set", "coarse-locked set baseline (extension)"),
];

struct Options {
    threads: u8,
    ops: u32,
    domain: Vec<i64>,
    check_lock_freedom: bool,
    wait_freedom: bool,
    dot: Option<String>,
    aut: Option<String>,
    formula: Option<String>,
    timeout: Option<Duration>,
    max_states: Option<usize>,
    max_transitions: Option<usize>,
    max_memory: Option<usize>,
    no_fallback: bool,
    jobs: Jobs,
    refine: RefineMode,
    fuse: bool,
    reduce: ReduceMode,
    metrics: Option<String>,
    trace: Option<String>,
    progress: bool,
    quiet: bool,
    checkpoint: Option<String>,
    checkpoint_every: u64,
    cache: Option<String>,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            threads: 2,
            ops: 2,
            domain: vec![1, 2],
            check_lock_freedom: true,
            wait_freedom: false,
            dot: None,
            aut: None,
            formula: None,
            timeout: None,
            max_states: None,
            max_transitions: None,
            max_memory: None,
            no_fallback: false,
            jobs: Jobs::available(),
            refine: RefineMode::default(),
            fuse: false,
            reduce: ReduceMode::None,
            metrics: None,
            trace: None,
            progress: false,
            quiet: false,
            checkpoint: None,
            checkpoint_every: 8,
            cache: None,
        }
    }
}

impl Options {
    /// Whether any budget flag was given (switches `verify` to the governed
    /// pipeline with the fallback ladder).
    fn budgeted(&self) -> bool {
        self.timeout.is_some()
            || self.max_states.is_some()
            || self.max_transitions.is_some()
            || self.max_memory.is_some()
    }

    fn budget(&self) -> Budget {
        let defaults = ExploreLimits::default();
        let mut b = Budget::unlimited()
            .with_max_states(self.max_states.unwrap_or(defaults.max_states))
            .with_max_transitions(self.max_transitions.unwrap_or(defaults.max_transitions));
        if let Some(t) = self.timeout {
            b = b.with_deadline(t);
        }
        if let Some(m) = self.max_memory {
            b = b.with_max_memory_bytes(m);
        }
        b
    }
}

/// Parses a duration like `30s`, `1.5s`, `500ms`, `2m`, or plain seconds.
fn parse_duration(raw: &str) -> Result<Duration, String> {
    let s = raw.trim();
    let (num, scale) = if let Some(x) = s.strip_suffix("ms") {
        (x, 1e-3)
    } else if let Some(x) = s.strip_suffix('s') {
        (x, 1.0)
    } else if let Some(x) = s.strip_suffix('m') {
        (x, 60.0)
    } else {
        (s, 1.0)
    };
    let v: f64 = num
        .trim()
        .parse()
        .map_err(|_| format!("`{raw}` is not a duration (try 30s, 500ms, 2m)"))?;
    if !v.is_finite() || v < 0.0 {
        return Err(format!("`{raw}` is not a non-negative duration"));
    }
    Ok(Duration::from_secs_f64(v * scale))
}

/// Parses a count like `1000000`, `1_000_000`, or `1e6`.
fn parse_count(raw: &str) -> Result<usize, String> {
    let clean: String = raw.chars().filter(|c| *c != '_').collect();
    if let Ok(n) = clean.parse::<usize>() {
        return Ok(n);
    }
    let v: f64 = clean
        .parse()
        .map_err(|_| format!("`{raw}` is not a count (try 1000000 or 1e6)"))?;
    if !v.is_finite() || v < 0.0 || v > usize::MAX as f64 {
        return Err(format!("`{raw}` is out of range for a count"));
    }
    Ok(v as usize)
}

fn parse_options(args: &[String]) -> Result<Options, String> {
    let mut opts = Options::default();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--threads" => {
                opts.threads = it
                    .next()
                    .ok_or("--threads needs a value")?
                    .parse()
                    .map_err(|e| format!("--threads: {e}"))?;
            }
            "--ops" => {
                opts.ops = it
                    .next()
                    .ok_or("--ops needs a value")?
                    .parse()
                    .map_err(|e| format!("--ops: {e}"))?;
            }
            "--domain" => {
                let raw = it.next().ok_or("--domain needs a value, e.g. 1,2,3")?;
                opts.domain = raw
                    .split(',')
                    .map(|v| v.parse().map_err(|e| format!("--domain: {e}")))
                    .collect::<Result<_, _>>()?;
                if opts.domain.is_empty() {
                    return Err("--domain must not be empty".into());
                }
            }
            "--no-lock-freedom" => opts.check_lock_freedom = false,
            "--wait-freedom" => opts.wait_freedom = true,
            "--dot" => opts.dot = Some(it.next().ok_or("--dot needs a path")?.clone()),
            "--aut" => opts.aut = Some(it.next().ok_or("--aut needs a path")?.clone()),
            "--formula" => {
                opts.formula = Some(it.next().ok_or("--formula needs an LTL formula")?.clone())
            }
            "--timeout" => {
                opts.timeout =
                    Some(parse_duration(it.next().ok_or("--timeout needs a duration")?)?)
            }
            "--max-states" => {
                opts.max_states =
                    Some(parse_count(it.next().ok_or("--max-states needs a count")?)?)
            }
            "--max-transitions" => {
                opts.max_transitions =
                    Some(parse_count(it.next().ok_or("--max-transitions needs a count")?)?)
            }
            "--max-memory" => {
                opts.max_memory =
                    Some(parse_count(it.next().ok_or("--max-memory needs a byte count")?)?)
            }
            "--no-fallback" => opts.no_fallback = true,
            "--jobs" => {
                let n: usize = it
                    .next()
                    .ok_or("--jobs needs a thread count")?
                    .parse()
                    .map_err(|e| format!("--jobs: {e}"))?;
                if n == 0 {
                    return Err("--jobs must be at least 1".into());
                }
                opts.jobs = Jobs::new(n);
            }
            "--refine" => {
                opts.refine = it
                    .next()
                    .ok_or("--refine needs a mode: full or incremental")?
                    .parse()?;
            }
            "--fuse" => opts.fuse = true,
            "--reduce" => {
                opts.reduce = it
                    .next()
                    .ok_or("--reduce needs a mode: none, sym, por, full")?
                    .parse()?;
            }
            "--metrics" => {
                opts.metrics = Some(it.next().ok_or("--metrics needs a path")?.clone())
            }
            "--trace" => opts.trace = Some(it.next().ok_or("--trace needs a path")?.clone()),
            "--progress" => opts.progress = true,
            "--quiet" => opts.quiet = true,
            "--checkpoint" => {
                opts.checkpoint = Some(it.next().ok_or("--checkpoint needs a directory")?.clone())
            }
            "--checkpoint-every" => {
                opts.checkpoint_every =
                    parse_count(it.next().ok_or("--checkpoint-every needs a round count")?)? as u64
            }
            "--cache" => {
                opts.cache = Some(it.next().ok_or("--cache needs a directory")?.clone())
            }
            other => return Err(format!("unknown option `{other}`")),
        }
    }
    Ok(opts)
}

fn print_usage() {
    eprintln!("usage: bbv <list|verify|quotient|check|reduce-check> [algorithm|all] [options]");
    eprintln!("       bbv resume <checkpoint-dir> [extra options]");
    eprintln!("       bbv cache <stats|verify|gc> <cache-dir>");
    eprintln!("  options: --threads N  --ops N  --domain 1,2");
    eprintln!("           --no-lock-freedom  --wait-freedom  --dot FILE  --aut FILE");
    eprintln!("           --formula \"G F (ret | done)\"   (for `check`)");
    eprintln!("           --jobs N   (worker threads; default = all cores, output identical)");
    eprintln!("           --refine full|incremental   (partition-refinement engine; default");
    eprintln!("           incremental — dirty-state worklists, identical output either way)");
    eprintln!("           --fuse   (stream exploration straight into refinement: the BFS");
    eprintln!("           feeds an in-degree sink and refinement reuses the accumulated");
    eprintln!("           reverse adjacency; stdout and artifacts identical either way)");
    eprintln!("           --reduce none|sym|por|full   (state-space reduction; ≈div-preserving)");
    eprintln!("           `reduce-check <algorithm|all>` cross-checks the reduction: the");
    eprintln!("           reduced LTS must be ≈div the full one with identical verdicts");
    eprintln!("  observe: --metrics FILE   (phase spans + counters as one JSON document)");
    eprintln!("           --trace FILE     (per-span event stream, NDJSON)");
    eprintln!("           --progress       (stderr heartbeat: states/sec, frontier depth)");
    eprintln!("           --quiet          (silence diagnostic counters on stderr)");
    eprintln!("           observability is output-neutral: stdout, .aut files and exit");
    eprintln!("           codes are byte-identical with or without these flags");
    eprintln!("  budget:  --timeout 30s  --max-states 1e6  --max-transitions 1e7");
    eprintln!("           --max-memory 2e9  --no-fallback");
    eprintln!("           with a budget, `verify` degrades gracefully: on exhaustion it");
    eprintln!("           retries with strong-bisimulation pre-reduction, then a smaller");
    eprintln!("           bound, and reports which rung answered");
    eprintln!("  persist: --checkpoint DIR       (cut crash-safe checkpoints; `bbv resume DIR`");
    eprintln!("           replays the recorded invocation, seeds every completed section and");
    eprintln!("           converges to the byte-identical verdict of an uninterrupted run)");
    eprintln!("           --checkpoint-every N   (also cut every N refinement rounds; default 8)");
    eprintln!("           --cache DIR            (content-addressed result cache: conclusive");
    eprintln!("           verdicts and quotient artifacts replay byte-identically on a hit;");
    eprintln!("           corrupt entries are detected and recomputed, never trusted)");
    eprintln!("  exit codes: 0 proved   1 refuted   2 inconclusive (budget/internal fault)");
    eprintln!("              3 usage or parse error");
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    std::process::exit(main_dispatch(&args));
}

/// Top-level command dispatch; `bbv resume` re-enters it with the replayed
/// argv, so it must stay free of process-global side effects of its own.
fn main_dispatch(args: &[String]) -> i32 {
    match args.first().map(String::as_str) {
        Some("list") => {
            println!("available algorithms:");
            for (name, desc) in ALGORITHMS {
                println!("  {name:<18} {desc}");
            }
            EXIT_PROVED
        }
        Some("help") | Some("--help") | Some("-h") => {
            print_usage();
            EXIT_PROVED
        }
        Some("resume") => resume(&args[1..]),
        Some("cache") => cache_admin(&args[1..]),
        Some(cmd @ ("verify" | "quotient" | "check" | "reduce-check")) => {
            let mode = match cmd {
                "verify" => Mode::Verify,
                "quotient" => Mode::Quotient,
                "check" => Mode::Check,
                _ => Mode::ReduceCheck,
            };
            if mode == Mode::ReduceCheck && args.get(1).map(String::as_str) == Some("all") {
                reduce_check_all(&args[2..])
            } else {
                // A panicking case (a bug in a checker, not a budget trip) is
                // an inconclusive run, not a crash.
                match run_isolated(|| run(&args[1..], mode)) {
                    Ok(code) => code,
                    Err(msg) => {
                        eprintln!("internal fault (treated as inconclusive): {msg}");
                        EXIT_INCONCLUSIVE
                    }
                }
            }
        }
        _ => {
            print_usage();
            EXIT_USAGE
        }
    }
}

/// `bbv resume <dir> [overrides]`: replay the argv recorded in the
/// checkpoint at `dir`. The re-run installs the same checkpoint session,
/// seeds every completed section, and converges to the byte-identical
/// verdict of an uninterrupted run. Overrides are appended after the
/// recorded flags, so later occurrences win (`bbv resume ckpt --timeout 60s`
/// raises the budget that tripped the original run).
fn resume(args: &[String]) -> i32 {
    let Some(dir) = args.first() else {
        eprintln!("usage: bbv resume <checkpoint-dir> [extra options]");
        return EXIT_USAGE;
    };
    let Some(mut argv) = bb_persist::recorded_argv(Path::new(dir)) else {
        eprintln!("error: no readable checkpoint in `{dir}` (nothing to resume)");
        return EXIT_USAGE;
    };
    if argv.first().map(String::as_str) == Some("resume") {
        eprintln!("error: checkpoint in `{dir}` records a recursive resume; refusing");
        return EXIT_USAGE;
    }
    argv.extend(args[1..].iter().cloned());
    // Stderr only: the resumed run's stdout must stay byte-identical.
    eprintln!("resuming from {dir}: bbv {}", argv.join(" "));
    main_dispatch(&argv)
}

/// `bbv cache <stats|verify|gc> <dir>`: inspect and maintain a result
/// cache. `verify` exits 1 when corrupt entries exist (for CI); `gc`
/// removes corrupt and old-format entries.
fn cache_admin(args: &[String]) -> i32 {
    let (Some(op), Some(dir)) = (args.first(), args.get(1)) else {
        eprintln!("usage: bbv cache <stats|verify|gc> <cache-dir>");
        return EXIT_USAGE;
    };
    let cache = match Cache::open(Path::new(dir)) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("error: could not open cache directory {dir}: {e}");
            return EXIT_USAGE;
        }
    };
    match op.as_str() {
        "stats" => {
            let s = cache.stats();
            println!("cache   : {dir}");
            println!("entries : {}", s.entries);
            println!("bytes   : {}", s.bytes);
            println!("corrupt : {}", s.corrupt);
            EXIT_PROVED
        }
        "verify" => {
            let (ok, corrupt) = cache.verify();
            println!("intact  : {}", ok.len());
            println!("corrupt : {}", corrupt.len());
            for p in &corrupt {
                println!("  {}", p.display());
            }
            if corrupt.is_empty() {
                EXIT_PROVED
            } else {
                EXIT_REFUTED
            }
        }
        "gc" => {
            let removed = cache.gc();
            println!("removed : {removed}");
            EXIT_PROVED
        }
        other => {
            eprintln!("unknown cache operation `{other}`; try stats, verify or gc");
            EXIT_USAGE
        }
    }
}

#[derive(Clone, Copy, PartialEq)]
enum Mode {
    Verify,
    Quotient,
    Check,
    ReduceCheck,
}

/// `bbv reduce-check all`: sweep the differential check over the whole
/// roster, reporting every algorithm and returning the worst exit code.
fn reduce_check_all(extra: &[String]) -> i32 {
    let mut worst = EXIT_PROVED;
    for (name, _) in ALGORITHMS {
        let mut args: Vec<String> = vec![name.to_string()];
        args.extend(extra.iter().cloned());
        let code = match run_isolated(|| run(&args, Mode::ReduceCheck)) {
            Ok(code) => code,
            Err(msg) => {
                eprintln!("internal fault (treated as inconclusive): {msg}");
                EXIT_INCONCLUSIVE
            }
        };
        worst = worst.max(code);
    }
    worst
}

/// The command word for metrics metadata and the root trace span.
fn mode_str(mode: Mode) -> &'static str {
    match mode {
        Mode::Verify => "verify",
        Mode::Quotient => "quotient",
        Mode::Check => "check",
        Mode::ReduceCheck => "reduce-check",
    }
}

/// Buffered stdout plus named artifacts (`dot`, `aut`) of one command run.
/// Buffering is what lets the result cache replay the complete observable
/// outcome byte-for-byte.
#[derive(Default)]
struct RunOutput {
    stdout: String,
    artifacts: Vec<(String, Vec<u8>)>,
}

/// `println!` into a [`RunOutput`] buffer.
macro_rules! outln {
    ($out:expr $(, $($arg:tt)*)?) => {{
        use std::fmt::Write as _;
        let _ = writeln!($out.stdout $(, $($arg)*)?);
    }};
}

/// The checkpoint configuration tag: a hash of everything that determines
/// the *shape* of the pipeline (which LTSs are explored, which refinement
/// calls run, in what order). Budgets, `--jobs`, `--fuse`, checkpoint
/// cadence and output paths are deliberately excluded — a resume with a
/// raised budget, a different worker count or fusion toggled must still
/// seed the recorded sections (fusion only changes *how* the reverse
/// adjacency is built, never which sections exist or what they contain).
fn config_tag(mode: Mode, canon: &str, opts: &Options) -> u64 {
    let desc = format!(
        "bbp{}|{}|{}|t{}|o{}|d{:?}|lf{}|wf{}|formula{:?}|reduce={}|refine={}",
        bb_persist::FORMAT_VERSION,
        mode_str(mode),
        canon,
        opts.threads,
        opts.ops,
        opts.domain,
        opts.check_lock_freedom,
        opts.wait_freedom,
        opts.formula,
        opts.reduce,
        opts.refine,
    );
    bbverify::lts::snapshot::fnv1a(0, desc.as_bytes())
}

/// The result-cache key: everything that determines the command's stdout,
/// artifacts and exit code — including budgets, since the governed report
/// names the rung and bound that answered. `--jobs` and `--fuse` are
/// excluded: results are bit-identical at any worker count and with fusion
/// on or off, so a `-j 4 --fuse` run hits the entry a `-j 1` run stored.
fn cache_key(mode: Mode, canon: &str, opts: &Options) -> String {
    format!(
        "bbc{}|{}|{}|t{}|o{}|d{:?}|lf{}|wf{}|formula{:?}|reduce={}|refine={}|budget=({:?},{:?},{:?},{:?},nf{})",
        bb_persist::FORMAT_VERSION,
        mode_str(mode),
        canon,
        opts.threads,
        opts.ops,
        opts.domain,
        opts.check_lock_freedom,
        opts.wait_freedom,
        opts.formula,
        opts.reduce,
        opts.refine,
        opts.timeout,
        opts.max_states,
        opts.max_transitions,
        opts.max_memory,
        opts.no_fallback,
    )
}

/// Writes the artifacts the current flags ask for (quotient `--dot`/`--aut`)
/// through the atomic writer. Called for live and cache-replayed runs alike,
/// so a hit honours the paths of *this* invocation, not the recorded one.
fn write_requested_artifacts(artifacts: &[(String, Vec<u8>)], opts: &Options, code: i32) -> i32 {
    let mut code = code;
    let find = |name: &str| artifacts.iter().find(|(n, _)| n == name).map(|(_, b)| b);
    let requests: [(&Option<String>, &str, &str); 2] = [
        (&opts.dot, "dot", "Graphviz DOT"),
        (&opts.aut, "aut", "Aldebaran .aut, CADP-compatible"),
    ];
    for (path, name, desc) in requests {
        let Some(path) = path else { continue };
        let Some(bytes) = find(name) else { continue };
        match bb_persist::write_atomic(Path::new(path), bytes) {
            Ok(()) => println!("quotient written to {path} ({desc})"),
            Err(e) => {
                eprintln!("could not write {path}: {e}");
                code = EXIT_USAGE;
            }
        }
    }
    code
}

/// Writes the `--metrics` / `--trace` exports after a run. Failures go to
/// stderr only: observability never changes the verification exit code.
fn write_obs_outputs(session: &bb_obs::Session, opts: &Options, algorithm: &str, mode: Mode) {
    let meta: Vec<(&str, bb_obs::Value)> = vec![
        ("command", mode_str(mode).into()),
        ("algorithm", algorithm.into()),
        ("threads", u64::from(opts.threads).into()),
        ("ops", u64::from(opts.ops).into()),
        ("jobs", opts.jobs.get().into()),
        ("reduce", opts.reduce.to_string().into()),
    ];
    if let Some(path) = &opts.metrics {
        let json = session.metrics_json(&meta);
        if let Err(e) = bb_persist::write_atomic(Path::new(path), json.as_bytes()) {
            eprintln!("could not write metrics to {path}: {e}");
        }
    }
    if let Some(path) = &opts.trace {
        let ndjson = session.trace_ndjson();
        if let Err(e) = bb_persist::write_atomic(Path::new(path), ndjson.as_bytes()) {
            eprintln!("could not write trace to {path}: {e}");
        }
    }
}

fn run(args: &[String], mode: Mode) -> i32 {
    let Some(name) = args.first() else {
        eprintln!("missing algorithm name; try `bbv list`");
        return EXIT_USAGE;
    };
    let opts = match parse_options(&args[1..]) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}");
            return EXIT_USAGE;
        }
    };
    // Accept underscores interchangeably with dashes (`ms_queue` = `ms-queue`).
    let canon = name.replace('_', "-");
    let recording = opts.metrics.is_some() || opts.trace.is_some() || opts.progress;
    if recording {
        bb_obs::install(bb_obs::ObsConfig {
            progress: opts.progress,
            quiet: opts.quiet,
        });
    } else {
        bb_obs::set_quiet(opts.quiet);
    }
    let code = {
        let _root = bb_obs::span("bbv")
            .with("command", mode_str(mode))
            .with("algorithm", canon.as_str());
        run_command(&canon, &opts, mode, args)
    };
    // Final checkpoint flush + sink teardown (no-op when none installed).
    bb_persist::clear();
    if recording {
        if let Some(session) = bb_obs::finish() {
            write_obs_outputs(&session, &opts, &canon, mode);
        }
    }
    code
}

/// Runs one parsed command: installs the checkpoint session, consults the
/// result cache, dispatches, and stores conclusive outcomes back.
fn run_command(canon: &str, opts: &Options, mode: Mode, argv_tail: &[String]) -> i32 {
    if let Some(dir) = &opts.checkpoint {
        let mut argv = vec![mode_str(mode).to_string()];
        argv.extend(argv_tail.iter().cloned());
        if let Err(e) = bb_persist::install(
            Path::new(dir),
            opts.checkpoint_every,
            argv,
            config_tag(mode, canon, opts),
        ) {
            eprintln!("error: could not open checkpoint directory {dir}: {e}");
            return EXIT_USAGE;
        }
    }
    let cache = match &opts.cache {
        Some(dir) => match Cache::open(Path::new(dir)) {
            Ok(c) => Some(c),
            Err(e) => {
                eprintln!("error: could not open cache directory {dir}: {e}");
                return EXIT_USAGE;
            }
        },
        None => None,
    };
    // Only whole verdicts and quotients are memoized; `check`/`reduce-check`
    // always run (they are the harnesses that *establish* trust).
    let cacheable = matches!(mode, Mode::Verify | Mode::Quotient);
    let key = cache_key(mode, canon, opts);
    if cacheable {
        if let Some(entry) = cache.as_ref().and_then(|c| c.lookup(&key)) {
            print!("{}", entry.stdout);
            return write_requested_artifacts(&entry.artifacts, opts, entry.exit_code);
        }
    }
    let mut out = RunOutput::default();
    let code = dispatch_named(canon, opts, mode, &mut out);
    print!("{}", out.stdout);
    // Inconclusive outcomes are never cached: they depend on wall-clock
    // budgets and a retry might do better. Usage errors likewise.
    if cacheable && (code == EXIT_PROVED || code == EXIT_REFUTED) {
        if let Some(c) = &cache {
            let entry = CacheEntry {
                key,
                stdout: out.stdout.clone(),
                exit_code: code,
                artifacts: out.artifacts.clone(),
            };
            if let Err(e) = c.store(&entry) {
                bb_obs::diag!("persist: cache store failed: {e}");
            }
        }
    }
    write_requested_artifacts(&out.artifacts, opts, code)
}

fn dispatch_named(canon: &str, opts: &Options, mode: Mode, out: &mut RunOutput) -> i32 {
    let d = &opts.domain;
    let dsize = d.len() as i64;
    let th = opts.threads;
    let ops = opts.ops;
    match canon {
        "treiber" => dispatch(&Treiber::new(d), &AtomicSpec::new(SeqStack::new(d)), opts, mode, true, out),
        "treiber-hp" => dispatch(&TreiberHp::new(d, th), &AtomicSpec::new(SeqStack::new(d)), opts, mode, true, out),
        "treiber-hp-fu" => dispatch(&TreiberHpFu::new(d, th), &AtomicSpec::new(SeqStack::new(d)), opts, mode, true, out),
        "ms-queue" => dispatch(&MsQueue::new(d), &AtomicSpec::new(SeqQueue::new(d)), opts, mode, true, out),
        "dglm-queue" => dispatch(&DglmQueue::new(d), &AtomicSpec::new(SeqQueue::new(d)), opts, mode, true, out),
        "hw-queue" => dispatch(
            &HwQueue::for_bound(d, th, ops),
            &AtomicSpec::new(SeqQueue::new(d)),
            opts,
            mode,
            true,
            out,
        ),
        "ccas" => dispatch(&Ccas::new(dsize), &AtomicSpec::new(SeqCcas::new(dsize)), opts, mode, true, out),
        "rdcss" => dispatch(&Rdcss::new(dsize), &AtomicSpec::new(SeqRdcss::new(dsize)), opts, mode, true, out),
        "newcas" => dispatch(&NewCas::new(dsize), &AtomicSpec::new(SeqRegister::new(dsize)), opts, mode, true, out),
        "hm-list" => dispatch(&HmList::revised(d), &AtomicSpec::new(SeqSet::new(d)), opts, mode, true, out),
        "hm-list-buggy" => dispatch(&HmList::buggy(d), &AtomicSpec::new(SeqSet::new(d)), opts, mode, true, out),
        "hsy-stack" => dispatch(&HsyStack::new(d), &AtomicSpec::new(SeqStack::new(d)), opts, mode, true, out),
        "lazy-list" => dispatch(&LazyList::new(d), &AtomicSpec::new(SeqSet::new(d)), opts, mode, false, out),
        "optimistic-list" => dispatch(&OptimisticList::new(d), &AtomicSpec::new(SeqSet::new(d)), opts, mode, false, out),
        "fine-list" => dispatch(&FineList::new(d), &AtomicSpec::new(SeqSet::new(d)), opts, mode, false, out),
        "two-lock-queue" => dispatch(&TwoLockQueue::new(d), &AtomicSpec::new(SeqQueue::new(d)), opts, mode, false, out),
        "coarse-stack" => dispatch(&CoarseLocked::new(SeqStack::new(d)), &AtomicSpec::new(SeqStack::new(d)), opts, mode, false, out),
        "coarse-queue" => dispatch(&CoarseLocked::new(SeqQueue::new(d)), &AtomicSpec::new(SeqQueue::new(d)), opts, mode, false, out),
        "coarse-set" => dispatch(&CoarseLocked::new(SeqSet::new(d)), &AtomicSpec::new(SeqSet::new(d)), opts, mode, false, out),
        other => {
            eprintln!("unknown algorithm `{other}`; try `bbv list`");
            EXIT_USAGE
        }
    }
}

/// Explores under the option budget; exhaustion is an inconclusive outcome
/// (exit 2), reported with the exhausted stage and its partial statistics.
///
/// With `--reduce`, exploration unfolds the reduced system instead and the
/// reducer counters go to stderr (stdout stays diffable across modes).
///
/// With a checkpoint session installed, a previously completed section
/// seeds the LTS directly, and a freshly explored one is offered back
/// (stage boundaries are always cut points).
///
/// With `--fuse` (and no `--reduce`), exploration streams its transitions
/// through an in-degree sink and the accumulated reverse adjacency is
/// returned alongside the LTS for the refinement passes to reuse. A
/// checkpoint-seeded LTS never saw the stream, so it returns `None` and
/// refinement rebuilds its own table — checkpoint cut points stay valid
/// mid-fused-run, and the output is byte-identical either way.
fn explore_or_inconclusive<A: ObjectAlgorithm>(
    alg: &A,
    bound: Bound,
    wd: &Watchdog,
    opts: &Options,
) -> Result<(Lts, Option<PredecessorTable>), i32> {
    let persist = bb_persist::active();
    let section = format!("{}/b{}-{}", alg.name(), bound.threads, bound.ops_per_thread);
    if let Some(p) = persist.as_ref() {
        if let Some(lts) = p.seed_lts(&section) {
            return Ok((lts, None));
        }
    }
    let eo = ExploreOptions::governed(wd).with_jobs(opts.jobs);
    let result = if opts.reduce != ReduceMode::None {
        explore_reduced(alg, bound, opts.reduce, &eo).map(|(lts, stats)| {
            bb_obs::diag!("reduction {} [{}]: {stats}", opts.reduce, alg.name());
            (lts, None)
        })
    } else if opts.fuse {
        explore_system_fused(alg, bound, &eo).map(|(lts, preds)| (lts, Some(preds)))
    } else {
        explore_system_with(alg, bound, &eo).map(|lts| (lts, None))
    };
    match result {
        Ok((lts, preds)) => {
            if let Some(p) = persist.as_ref() {
                p.offer_lts(&section, &lts);
            }
            Ok((lts, preds))
        }
        Err(e) => {
            eprintln!("inconclusive: {e}");
            Err(EXIT_INCONCLUSIVE)
        }
    }
}

fn dispatch<A: ObjectAlgorithm, S: SequentialSpec>(
    alg: &A,
    spec: &AtomicSpec<S>,
    opts: &Options,
    mode: Mode,
    non_blocking: bool,
    out: &mut RunOutput,
) -> i32 {
    let bound = Bound::new(opts.threads, opts.ops);

    if mode == Mode::ReduceCheck {
        return reduce_check(alg, spec, opts, bound, non_blocking, out);
    }
    if mode == Mode::Verify && opts.budgeted() {
        return verify_governed(alg, spec, opts, bound, non_blocking, out);
    }

    let wd = Watchdog::new(opts.budget());
    let (imp, imp_preds) = match explore_or_inconclusive(alg, bound, &wd, opts) {
        Ok(l) => l,
        Err(c) => return c,
    };

    if mode == Mode::Check {
        let Some(raw) = &opts.formula else {
            eprintln!("`check` needs --formula \"...\"; e.g. --formula \"G F (ret | done)\"");
            return EXIT_USAGE;
        };
        let formula = match bbverify::ltl::parse(raw) {
            Ok(f) => f,
            Err(e) => {
                eprintln!("formula error {e}");
                return EXIT_USAGE;
            }
        };
        // Model check on the divergence-preserving quotient: it is
        // ≈div-bisimilar to the object, so all next-free LTL carries over.
        let q = bbverify::bisim::div_quotient_opts(
            &imp,
            PartitionOptions::default()
                .with_jobs(opts.jobs)
                .with_mode(opts.refine),
        );
        let result = match bbverify::ltl::check_governed(&q.lts, &formula, &wd) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("inconclusive: {e}");
                return EXIT_INCONCLUSIVE;
            }
        };
        outln!(out, "algorithm : {}", alg.name());
        outln!(out, "formula   : {formula}");
        outln!(
            out,
            "checked on: divergence-preserving quotient ({} of {} states)",
            q.lts.num_states(),
            imp.num_states()
        );
        outln!(out, "holds     : {}", result.holds);
        if let Some(ce) = &result.counterexample {
            outln!(out, "counterexample:");
            for line in ce.to_pretty().lines() {
                outln!(out, "  {line}");
            }
        }
        return if result.holds { EXIT_PROVED } else { EXIT_REFUTED };
    }

    if mode == Mode::Quotient {
        let popts = PartitionOptions::default()
            .with_jobs(opts.jobs)
            .with_mode(opts.refine);
        // A fused exploration already accumulated the reverse adjacency;
        // hand it to the refiner. Partitions are identical either way.
        let p = match imp_preds.as_ref() {
            Some(preds) => bbverify::bisim::partition_governed_pre(
                &imp,
                Equivalence::Branching,
                &Watchdog::unlimited(),
                popts,
                Some(preds),
            )
            .expect("an unlimited watchdog never trips"),
            None => partition_opts(&imp, Equivalence::Branching, popts),
        };
        let q = quotient(&imp, &p);
        outln!(out, "algorithm : {}", alg.name());
        outln!(out, "bound     : {}-{}", bound.threads, bound.ops_per_thread);
        outln!(out, "|Δ|       : {}", imp.num_states());
        outln!(out, "|Δ/≈|     : {}", q.lts.num_states());
        outln!(
            out,
            "reduction : ×{:.1}",
            imp.num_states() as f64 / q.lts.num_states() as f64
        );
        // Both artifacts are always rendered: the cache stores them so a
        // later hit can honour paths the original invocation did not ask
        // for, and the requested subset is written after dispatch.
        out.artifacts.push(("dot".into(), to_dot(&q.lts, alg.name()).into_bytes()));
        out.artifacts.push(("aut".into(), to_aut(&q.lts).into_bytes()));
        return EXIT_PROVED;
    }

    let (sp, sp_preds) = match explore_or_inconclusive(spec, bound, &wd, opts) {
        Ok(l) => l,
        Err(c) => return c,
    };
    let mut cfg = VerifyConfig::new(bound)
        .with_jobs(opts.jobs)
        .with_refine(opts.refine)
        .with_fuse(opts.fuse);
    if !opts.check_lock_freedom || !non_blocking {
        cfg = cfg.linearizability_only();
    }
    let report = verify_case_lts_pre(
        alg.name(),
        cfg,
        &imp,
        &sp,
        imp_preds.as_ref(),
        sp_preds.as_ref(),
    );
    outln!(out, "{}", report.summary());
    if let Some(v) = &report.linearizability.violation {
        outln!(out, "non-linearizable history:");
        outln!(out, "  {}", v.to_pretty());
    }
    if let Some(lf) = &report.lock_freedom {
        if let Some(lasso) = &lf.divergence {
            outln!(out, "lock-freedom violation (τ-loop):");
            for line in bbverify::core::format_lasso(&imp, lasso).lines() {
                outln!(out, "  {line}");
            }
        }
    }
    if opts.wait_freedom {
        let wf = verify_wait_freedom(&imp, opts.threads);
        if wf.wait_free() {
            outln!(out, "starvation : none under the bounded client");
        } else {
            outln!(out, "starvation : threads {:?} can spin forever", wf.starving_threads());
        }
    }
    let failed = !report.linearizable()
        || report.lock_freedom.as_ref().is_some_and(|l| !l.lock_free);
    if failed {
        EXIT_REFUTED
    } else {
        EXIT_PROVED
    }
}

/// `bbv reduce-check <algorithm>`: run the differential harness — full and
/// reduced state spaces must be `≈div` with identical verdicts. `--reduce`
/// selects the layer under test (default: `full`, both layers).
fn reduce_check<A: ObjectAlgorithm, S: SequentialSpec>(
    alg: &A,
    spec: &AtomicSpec<S>,
    opts: &Options,
    bound: Bound,
    non_blocking: bool,
    out: &mut RunOutput,
) -> i32 {
    let mode = if opts.reduce == ReduceMode::None {
        ReduceMode::Full
    } else {
        opts.reduce
    };
    let lock_freedom = opts.check_lock_freedom && non_blocking;
    match differential_check(alg, spec, bound, mode, opts.jobs, lock_freedom) {
        Ok(r) => {
            outln!(out, "{}", r.render());
            if r.passed() {
                EXIT_PROVED
            } else {
                EXIT_REFUTED
            }
        }
        Err(e) => {
            eprintln!("inconclusive: {e}");
            EXIT_INCONCLUSIVE
        }
    }
}

/// The budget-governed `verify` path: run the fallback ladder and map the
/// overall verdict onto the exit code.
fn verify_governed<A: ObjectAlgorithm, S: SequentialSpec>(
    alg: &A,
    spec: &AtomicSpec<S>,
    opts: &Options,
    bound: Bound,
    non_blocking: bool,
    out: &mut RunOutput,
) -> i32 {
    let mut config = GovernedConfig::new(bound, opts.budget())
        .with_jobs(opts.jobs)
        .with_refine(opts.refine)
        .with_fuse(opts.fuse);
    if !opts.check_lock_freedom || !non_blocking {
        config = config.linearizability_only();
    }
    if opts.no_fallback {
        config = config.no_fallback();
    }
    let report = if opts.reduce == ReduceMode::None {
        verify_case_governed(alg, spec, &config)
    } else {
        verify_case_reduced_governed(alg, spec, opts.reduce, &config)
    };
    {
        use std::fmt::Write as _;
        let _ = write!(out.stdout, "{}", report.render());
    }
    if let Some(details) = &report.details {
        outln!(out, "{}", details.summary());
        if let Some(v) = &details.linearizability.violation {
            outln!(out, "non-linearizable history:");
            outln!(out, "  {}", v.to_pretty());
        }
        if let Some(lf) = &details.lock_freedom {
            if let Some(lasso) = &lf.divergence {
                outln!(
                    out,
                    "lock-freedom violation: τ-loop of {} step(s) after a {}-step prefix",
                    lasso.cycle.len(),
                    lasso.prefix.len()
                );
            }
        }
    }
    match report.overall() {
        Verdict::Proved => EXIT_PROVED,
        Verdict::Refuted => EXIT_REFUTED,
        Verdict::Inconclusive { .. } => EXIT_INCONCLUSIVE,
    }
}
