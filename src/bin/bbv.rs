//! `bbv` — command-line front end for the branching-bisimulation verifier.
//!
//! ```sh
//! bbv list
//! bbv verify ms-queue --threads 2 --ops 2
//! bbv verify ms-queue --threads 3 --ops 3 --timeout 30s --max-states 1e6
//! bbv verify hm-list-buggy --threads 2 --ops 2      # shows the counterexample
//! bbv quotient treiber --threads 2 --ops 1 --dot out.dot
//! bbv check hw-queue --formula "G F (ret | done)"   # arbitrary next-free LTL
//! bbv verify ms-queue --ops 3 --timeout 1h --checkpoint ckpt/   # crash-safe
//! bbv resume ckpt/                                  # continue a killed run
//! bbv verify treiber --cache .bbv-cache             # memoize the verdict
//! bbv cache stats .bbv-cache
//! bbv serve --dir .bbv-serve --workers 4 --cache .bbv-cache    # daemon
//! bbv submit verify treiber --dir .bbv-serve        # served run, same bytes
//! ```
//!
//! Every verification command — direct or served — runs through
//! `bb_serve::runner::execute`, so a served job's stdout, artifacts and
//! exit code are byte-identical to a direct run of the same spec.
//!
//! Exit codes: `0` every checked property was proved, `1` a property was
//! refuted, `2` the verification was inconclusive (budget exhausted or an
//! internal fault), `3` usage or parse error.

use bbverify::serve::{
    discover_addr, execute, CheckpointCtl, Client, Command, JobSpec, RunCtl, ServeConfig,
    ALGORITHMS, EXIT_PROVED, EXIT_REFUTED, EXIT_USAGE,
};
use bbverify::bisim::RefineMode;
use bbverify::lts::Jobs;
use bbverify::reduce::ReduceMode;
use bb_obs::json::JsonValue;
use bb_persist::Cache;
use std::path::{Path, PathBuf};
use std::time::Duration;

/// CLI options: the [`JobSpec`] knobs plus flags that only exist on the
/// command line (output paths, observability, persistence directories).
struct Options {
    threads: u8,
    ops: u32,
    domain: Vec<i64>,
    check_lock_freedom: bool,
    wait_freedom: bool,
    dot: Option<String>,
    aut: Option<String>,
    formula: Option<String>,
    timeout: Option<Duration>,
    max_states: Option<usize>,
    max_transitions: Option<usize>,
    max_memory: Option<usize>,
    no_fallback: bool,
    jobs: Jobs,
    refine: RefineMode,
    fuse: bool,
    reduce: ReduceMode,
    metrics: Option<String>,
    trace: Option<String>,
    progress: bool,
    quiet: bool,
    checkpoint: Option<String>,
    checkpoint_every: u64,
    cache: Option<String>,
    compact: bool,
    spill: Option<String>,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            threads: 2,
            ops: 2,
            domain: vec![1, 2],
            check_lock_freedom: true,
            wait_freedom: false,
            dot: None,
            aut: None,
            formula: None,
            timeout: None,
            max_states: None,
            max_transitions: None,
            max_memory: None,
            no_fallback: false,
            jobs: Jobs::available(),
            refine: RefineMode::default(),
            fuse: false,
            reduce: ReduceMode::None,
            metrics: None,
            trace: None,
            progress: false,
            quiet: false,
            checkpoint: None,
            checkpoint_every: 8,
            cache: None,
            compact: true,
            spill: None,
        }
    }
}

impl Options {
    /// The result-relevant subset of these options as a daemon-shippable
    /// job spec.
    fn to_spec(&self, command: Command, algorithm: &str) -> JobSpec {
        JobSpec {
            command,
            algorithm: algorithm.to_string(),
            threads: self.threads,
            ops: self.ops,
            domain: self.domain.clone(),
            check_lock_freedom: self.check_lock_freedom,
            wait_freedom: self.wait_freedom,
            formula: self.formula.clone(),
            timeout: self.timeout,
            max_states: self.max_states,
            max_transitions: self.max_transitions,
            max_memory: self.max_memory,
            no_fallback: self.no_fallback,
            refine: self.refine,
            reduce: self.reduce,
            jobs: self.jobs,
            fuse: self.fuse,
        }
    }
}

/// Parses a duration like `30s`, `1.5s`, `500ms`, `2m`, or plain seconds.
fn parse_duration(raw: &str) -> Result<Duration, String> {
    let s = raw.trim();
    let (num, scale) = if let Some(x) = s.strip_suffix("ms") {
        (x, 1e-3)
    } else if let Some(x) = s.strip_suffix('s') {
        (x, 1.0)
    } else if let Some(x) = s.strip_suffix('m') {
        (x, 60.0)
    } else {
        (s, 1.0)
    };
    let v: f64 = num
        .trim()
        .parse()
        .map_err(|_| format!("`{raw}` is not a duration (try 30s, 500ms, 2m)"))?;
    if !v.is_finite() || v < 0.0 {
        return Err(format!("`{raw}` is not a non-negative duration"));
    }
    Ok(Duration::from_secs_f64(v * scale))
}

/// Parses a count like `1000000`, `1_000_000`, or `1e6`.
fn parse_count(raw: &str) -> Result<usize, String> {
    let clean: String = raw.chars().filter(|c| *c != '_').collect();
    if let Ok(n) = clean.parse::<usize>() {
        return Ok(n);
    }
    let v: f64 = clean
        .parse()
        .map_err(|_| format!("`{raw}` is not a count (try 1000000 or 1e6)"))?;
    if !v.is_finite() || v < 0.0 || v > usize::MAX as f64 {
        return Err(format!("`{raw}` is out of range for a count"));
    }
    Ok(v as usize)
}

fn parse_options(args: &[String]) -> Result<Options, String> {
    let mut opts = Options::default();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--threads" => {
                opts.threads = it
                    .next()
                    .ok_or("--threads needs a value")?
                    .parse()
                    .map_err(|e| format!("--threads: {e}"))?;
            }
            "--ops" => {
                opts.ops = it
                    .next()
                    .ok_or("--ops needs a value")?
                    .parse()
                    .map_err(|e| format!("--ops: {e}"))?;
            }
            "--domain" => {
                let raw = it.next().ok_or("--domain needs a value, e.g. 1,2,3")?;
                opts.domain = raw
                    .split(',')
                    .map(|v| v.parse().map_err(|e| format!("--domain: {e}")))
                    .collect::<Result<_, _>>()?;
                if opts.domain.is_empty() {
                    return Err("--domain must not be empty".into());
                }
            }
            "--no-lock-freedom" => opts.check_lock_freedom = false,
            "--wait-freedom" => opts.wait_freedom = true,
            "--dot" => opts.dot = Some(it.next().ok_or("--dot needs a path")?.clone()),
            "--aut" => opts.aut = Some(it.next().ok_or("--aut needs a path")?.clone()),
            "--formula" => {
                opts.formula = Some(it.next().ok_or("--formula needs an LTL formula")?.clone())
            }
            "--timeout" => {
                opts.timeout =
                    Some(parse_duration(it.next().ok_or("--timeout needs a duration")?)?)
            }
            "--max-states" => {
                opts.max_states =
                    Some(parse_count(it.next().ok_or("--max-states needs a count")?)?)
            }
            "--max-transitions" => {
                opts.max_transitions =
                    Some(parse_count(it.next().ok_or("--max-transitions needs a count")?)?)
            }
            "--max-memory" => {
                opts.max_memory =
                    Some(parse_count(it.next().ok_or("--max-memory needs a byte count")?)?)
            }
            "--no-fallback" => opts.no_fallback = true,
            "--jobs" => {
                let n: usize = it
                    .next()
                    .ok_or("--jobs needs a thread count")?
                    .parse()
                    .map_err(|e| format!("--jobs: {e}"))?;
                if n == 0 {
                    return Err("--jobs must be at least 1".into());
                }
                opts.jobs = Jobs::new(n);
            }
            "--refine" => {
                opts.refine = it
                    .next()
                    .ok_or("--refine needs a mode: full or incremental")?
                    .parse()?;
            }
            "--fuse" => opts.fuse = true,
            "--reduce" => {
                opts.reduce = it
                    .next()
                    .ok_or("--reduce needs a mode: none, sym, por, full")?
                    .parse()?;
            }
            "--metrics" => {
                opts.metrics = Some(it.next().ok_or("--metrics needs a path")?.clone())
            }
            "--trace" => opts.trace = Some(it.next().ok_or("--trace needs a path")?.clone()),
            "--progress" => opts.progress = true,
            "--quiet" => opts.quiet = true,
            "--checkpoint" => {
                opts.checkpoint = Some(it.next().ok_or("--checkpoint needs a directory")?.clone())
            }
            "--checkpoint-every" => {
                opts.checkpoint_every =
                    parse_count(it.next().ok_or("--checkpoint-every needs a round count")?)? as u64
            }
            "--cache" => {
                opts.cache = Some(it.next().ok_or("--cache needs a directory")?.clone())
            }
            "--compact" => {
                opts.compact = match it.next().ok_or("--compact needs on or off")?.as_str() {
                    "on" => true,
                    "off" => false,
                    other => return Err(format!("--compact: expected on or off, got `{other}`")),
                };
            }
            "--spill" => {
                opts.spill = Some(it.next().ok_or("--spill needs a directory")?.clone())
            }
            other => return Err(format!("unknown option `{other}`")),
        }
    }
    Ok(opts)
}

fn print_usage() {
    eprintln!("usage: bbv <list|verify|quotient|check|reduce-check> [algorithm|all] [options]");
    eprintln!("       bbv resume <checkpoint-dir> [extra options]");
    eprintln!("       bbv cache <stats|verify|gc> <cache-dir> [--json]");
    eprintln!("       bbv serve [--dir D] [--addr H:P] [--workers N] [--queue N] [--cache DIR]");
    eprintln!("                 [--metrics-addr H:P]   (Prometheus exposition on /metrics)");
    eprintln!("       bbv submit [command] <algorithm> [options] [--priority N] [--detach]");
    eprintln!("       bbv <status|watch|cancel> <job>  /  bbv <stats|drain|ping>");
    eprintln!("       bbv top [--interval MS] [--once]   (live daemon dashboard; plain");
    eprintln!("               line-per-refresh when stdout is not a terminal)");
    eprintln!("       bbv jobs dump <job>    (flight-recorder dump: live ring or post-mortem)");
    eprintln!("       bbv metrics [--lint]   (print the exposition; --lint checks the format)");
    eprintln!("  options: --threads N  --ops N  --domain 1,2");
    eprintln!("           --no-lock-freedom  --wait-freedom  --dot FILE  --aut FILE");
    eprintln!("           --formula \"G F (ret | done)\"   (for `check`)");
    eprintln!("           --jobs N   (worker threads; default = all cores, output identical)");
    eprintln!("           --refine full|incremental   (partition-refinement engine; default");
    eprintln!("           incremental — dirty-state worklists, identical output either way)");
    eprintln!("           --fuse   (stream exploration straight into refinement: the BFS");
    eprintln!("           feeds an in-degree sink and refinement reuses the accumulated");
    eprintln!("           reverse adjacency; stdout and artifacts identical either way)");
    eprintln!("           --reduce none|sym|por|full   (state-space reduction; ≈div-preserving)");
    eprintln!("           `reduce-check <algorithm|all>` cross-checks the reduction: the");
    eprintln!("           reduced LTS must be ≈div the full one with identical verdicts");
    eprintln!("  observe: --metrics FILE   (phase spans + counters as one JSON document)");
    eprintln!("           --trace FILE     (per-span event stream, NDJSON)");
    eprintln!("           --progress       (stderr heartbeat: states/sec, frontier depth)");
    eprintln!("           --quiet          (silence diagnostic counters on stderr)");
    eprintln!("           observability is output-neutral: stdout, .aut files and exit");
    eprintln!("           codes are byte-identical with or without these flags");
    eprintln!("  budget:  --timeout 30s  --max-states 1e6  --max-transitions 1e7");
    eprintln!("           --max-memory 2e9  --no-fallback");
    eprintln!("           --spill DIR     (spill cold seen-set segments to disk when memory");
    eprintln!("           nears the cap; verdicts and artifacts stay byte-identical)");
    eprintln!("           --compact on|off   (bit-packed arena seen-set; default on — `off`");
    eprintln!("           restores the rich-struct hash map, identical output either way)");
    eprintln!("           with a budget, `verify` degrades gracefully: on exhaustion it");
    eprintln!("           retries with strong-bisimulation pre-reduction, then a smaller");
    eprintln!("           bound, and reports which rung answered");
    eprintln!("  persist: --checkpoint DIR       (cut crash-safe checkpoints; `bbv resume DIR`");
    eprintln!("           replays the recorded invocation, seeds every completed section and");
    eprintln!("           converges to the byte-identical verdict of an uninterrupted run)");
    eprintln!("           --checkpoint-every N   (also cut every N refinement rounds; default 8)");
    eprintln!("           --cache DIR            (content-addressed result cache: conclusive");
    eprintln!("           verdicts and quotient artifacts replay byte-identically on a hit;");
    eprintln!("           corrupt entries are detected and recomputed, never trusted)");
    eprintln!("  serve:   `bbv serve` runs the verification daemon (protocol bb-serve/v1):");
    eprintln!("           bounded priority queue with cache-backed admission, crash-safe");
    eprintln!("           submit journal, live progress streaming to `bbv watch`; a served");
    eprintln!("           job's stdout/artifacts/exit code are byte-identical to a direct");
    eprintln!("           run of the same spec. Clients find the daemon via --addr H:P or");
    eprintln!("           --dir D (reads D/serve.addr).");
    eprintln!("  exit codes: 0 proved   1 refuted   2 inconclusive (budget/internal fault)");
    eprintln!("              3 usage or parse error");
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    std::process::exit(main_dispatch(&args));
}

/// Top-level command dispatch; `bbv resume` re-enters it with the replayed
/// argv, so it must stay free of process-global side effects of its own.
fn main_dispatch(args: &[String]) -> i32 {
    match args.first().map(String::as_str) {
        Some("list") => {
            println!("available algorithms:");
            for (name, desc) in ALGORITHMS {
                println!("  {name:<18} {desc}");
            }
            EXIT_PROVED
        }
        Some("help") | Some("--help") | Some("-h") => {
            print_usage();
            EXIT_PROVED
        }
        Some("resume") => resume(&args[1..]),
        Some("cache") => cache_admin(&args[1..]),
        Some("serve") => serve_cmd(&args[1..]),
        Some("submit") => client_submit(&args[1..]),
        Some(cmd @ ("status" | "watch" | "cancel")) => client_job_cmd(cmd, &args[1..]),
        Some(cmd @ ("stats" | "drain" | "ping")) => client_daemon_cmd(cmd, &args[1..]),
        Some("top") => top_cmd(&args[1..]),
        Some("jobs") => jobs_cmd(&args[1..]),
        Some("metrics") => metrics_cmd(&args[1..]),
        Some(cmd @ ("verify" | "quotient" | "check" | "reduce-check")) => {
            let command = Command::parse(cmd).expect("matched command words parse");
            if command == Command::ReduceCheck && args.get(1).map(String::as_str) == Some("all") {
                reduce_check_all(&args[2..])
            } else {
                run(&args[1..], command)
            }
        }
        _ => {
            print_usage();
            EXIT_USAGE
        }
    }
}

/// `bbv resume <dir> [overrides]`: replay the argv recorded in the
/// checkpoint at `dir`. The re-run installs the same checkpoint session,
/// seeds every completed section, and converges to the byte-identical
/// verdict of an uninterrupted run. Overrides are appended after the
/// recorded flags, so later occurrences win (`bbv resume ckpt --timeout 60s`
/// raises the budget that tripped the original run).
fn resume(args: &[String]) -> i32 {
    let Some(dir) = args.first() else {
        eprintln!("usage: bbv resume <checkpoint-dir> [extra options]");
        return EXIT_USAGE;
    };
    let Some(mut argv) = bb_persist::recorded_argv(Path::new(dir)) else {
        eprintln!("error: no readable checkpoint in `{dir}` (nothing to resume)");
        return EXIT_USAGE;
    };
    if argv.first().map(String::as_str) == Some("resume") {
        eprintln!("error: checkpoint in `{dir}` records a recursive resume; refusing");
        return EXIT_USAGE;
    }
    argv.extend(args[1..].iter().cloned());
    // Stderr only: the resumed run's stdout must stay byte-identical.
    eprintln!("resuming from {dir}: bbv {}", argv.join(" "));
    main_dispatch(&argv)
}

/// `bbv cache <stats|verify|gc> <dir> [--json]`: inspect and maintain a
/// result cache. `verify` exits 1 when corrupt entries exist (for CI);
/// `gc` removes corrupt and old-format entries. `stats --json` emits the
/// same `bb-cache/v1` object the serve daemon embeds in its `stats` reply.
fn cache_admin(args: &[String]) -> i32 {
    let json = args.iter().any(|a| a == "--json");
    let pos: Vec<&String> = args.iter().filter(|a| a.as_str() != "--json").collect();
    let (Some(op), Some(dir)) = (pos.first(), pos.get(1)) else {
        eprintln!("usage: bbv cache <stats|verify|gc> <cache-dir> [--json]");
        return EXIT_USAGE;
    };
    let cache = match Cache::open(Path::new(dir.as_str())) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("error: could not open cache directory {dir}: {e}");
            return EXIT_USAGE;
        }
    };
    // One aligned `label : value` table across all three subcommands.
    let row = |label: &str, value: &dyn std::fmt::Display| println!("{label:<8}: {value}");
    match op.as_str() {
        "stats" => {
            let s = cache.stats();
            if json {
                println!("{}", s.to_json());
            } else {
                row("cache", dir);
                row("entries", &s.entries);
                row("bytes", &s.bytes);
                row("corrupt", &s.corrupt);
            }
            EXIT_PROVED
        }
        "verify" => {
            let (ok, corrupt) = cache.verify();
            row("intact", &ok.len());
            row("corrupt", &corrupt.len());
            for p in &corrupt {
                println!("  {}", p.display());
            }
            if corrupt.is_empty() {
                EXIT_PROVED
            } else {
                EXIT_REFUTED
            }
        }
        "gc" => {
            let removed = cache.gc();
            row("removed", &removed);
            EXIT_PROVED
        }
        other => {
            eprintln!("unknown cache operation `{other}`; try stats, verify or gc");
            EXIT_USAGE
        }
    }
}

/// `bbv reduce-check all`: sweep the differential check over the whole
/// roster, reporting every algorithm and returning the worst exit code.
fn reduce_check_all(extra: &[String]) -> i32 {
    let mut worst = EXIT_PROVED;
    for (name, _) in ALGORITHMS {
        let mut args: Vec<String> = vec![name.to_string()];
        args.extend(extra.iter().cloned());
        worst = worst.max(run(&args, Command::ReduceCheck));
    }
    worst
}

/// Writes the artifacts the current flags ask for (quotient `--dot`/`--aut`)
/// through the atomic writer. Called for live, cache-replayed and served
/// runs alike, so a hit honours the paths of *this* invocation, not the
/// recorded one.
fn write_requested_artifacts(artifacts: &[(String, Vec<u8>)], opts: &Options, code: i32) -> i32 {
    let mut code = code;
    let find = |name: &str| artifacts.iter().find(|(n, _)| n == name).map(|(_, b)| b);
    let requests: [(&Option<String>, &str, &str); 2] = [
        (&opts.dot, "dot", "Graphviz DOT"),
        (&opts.aut, "aut", "Aldebaran .aut, CADP-compatible"),
    ];
    for (path, name, desc) in requests {
        let Some(path) = path else { continue };
        let Some(bytes) = find(name) else { continue };
        match bb_persist::write_atomic(Path::new(path), bytes) {
            Ok(()) => println!("quotient written to {path} ({desc})"),
            Err(e) => {
                eprintln!("could not write {path}: {e}");
                code = EXIT_USAGE;
            }
        }
    }
    code
}

/// Writes the `--metrics` / `--trace` exports after a run. Failures go to
/// stderr only: observability never changes the verification exit code.
fn write_obs_outputs(session: &bb_obs::Session, opts: &Options, algorithm: &str, command: Command) {
    let meta: Vec<(&str, bb_obs::Value)> = vec![
        ("command", command.as_str().into()),
        ("algorithm", algorithm.into()),
        ("threads", u64::from(opts.threads).into()),
        ("ops", u64::from(opts.ops).into()),
        ("jobs", opts.jobs.get().into()),
        ("reduce", opts.reduce.to_string().into()),
    ];
    if let Some(path) = &opts.metrics {
        let json = session.metrics_json(&meta);
        if let Err(e) = bb_persist::write_atomic(Path::new(path), json.as_bytes()) {
            eprintln!("could not write metrics to {path}: {e}");
        }
    }
    if let Some(path) = &opts.trace {
        let ndjson = session.trace_ndjson();
        if let Err(e) = bb_persist::write_atomic(Path::new(path), ndjson.as_bytes()) {
            eprintln!("could not write trace to {path}: {e}");
        }
    }
}

/// Runs one direct verification command through the shared runner.
fn run(args: &[String], command: Command) -> i32 {
    let Some(name) = args.first() else {
        eprintln!("missing algorithm name; try `bbv list`");
        return EXIT_USAGE;
    };
    let opts = match parse_options(&args[1..]) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}");
            return EXIT_USAGE;
        }
    };
    // Accept underscores interchangeably with dashes (`ms_queue` = `ms-queue`).
    let canon = name.replace('_', "-");
    let recording = opts.metrics.is_some() || opts.trace.is_some() || opts.progress;
    if recording {
        bb_obs::install(bb_obs::ObsConfig {
            progress: opts.progress,
            quiet: opts.quiet,
        });
    } else {
        bb_obs::set_quiet(opts.quiet);
    }
    let spec = opts.to_spec(command, &canon);
    let code = {
        let _root = bb_obs::span("bbv")
            .with("command", command.as_str())
            .with("algorithm", canon.as_str());
        run_spec(&spec, &opts, args)
    };
    if recording {
        if let Some(session) = bb_obs::finish() {
            write_obs_outputs(&session, &opts, &canon, command);
        }
    }
    code
}

/// Runs one parsed spec: wires the CLI persistence flags into a `RunCtl`,
/// executes through the shared runner, and prints the buffered outcome.
fn run_spec(spec: &JobSpec, opts: &Options, argv_tail: &[String]) -> i32 {
    let mut ctl = RunCtl {
        no_compact: !opts.compact,
        spill_dir: opts.spill.as_ref().map(PathBuf::from),
        ..RunCtl::default()
    };
    if let Some(dir) = &opts.checkpoint {
        // The raw command line (with the --checkpoint flags themselves) is
        // recorded, so `bbv resume` re-installs the session on replay.
        let mut argv = vec![spec.command.as_str().to_string()];
        argv.extend(argv_tail.iter().cloned());
        ctl.checkpoint = Some(CheckpointCtl {
            dir: PathBuf::from(dir),
            every: opts.checkpoint_every,
            argv,
        });
    }
    let cache = match &opts.cache {
        Some(dir) => match Cache::open(Path::new(dir)) {
            Ok(c) => Some(c),
            Err(e) => {
                eprintln!("error: could not open cache directory {dir}: {e}");
                return EXIT_USAGE;
            }
        },
        None => None,
    };
    let result = execute(spec, cache.as_ref(), &ctl);
    print!("{}", result.stdout);
    write_requested_artifacts(&result.artifacts, opts, result.exit_code)
}

/// Client-side flags shared by every daemon-facing subcommand, split off
/// before the verification options are parsed.
struct ClientOpts {
    addr: Option<String>,
    dir: String,
    priority: i64,
    detach: bool,
    rest: Vec<String>,
}

fn split_client_flags(args: &[String]) -> Result<ClientOpts, String> {
    let mut c = ClientOpts {
        addr: None,
        dir: ".bbv-serve".into(),
        priority: 0,
        detach: false,
        rest: Vec::new(),
    };
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--addr" => c.addr = Some(it.next().ok_or("--addr needs host:port")?.clone()),
            "--dir" => c.dir = it.next().ok_or("--dir needs a serve directory")?.clone(),
            "--priority" => {
                c.priority = it
                    .next()
                    .ok_or("--priority needs an integer")?
                    .parse()
                    .map_err(|e| format!("--priority: {e}"))?;
            }
            "--detach" => c.detach = true,
            _ => c.rest.push(a.clone()),
        }
    }
    Ok(c)
}

/// Resolves the daemon address: explicit `--addr` wins, otherwise the
/// `serve.addr` discovery file in the serve directory.
fn connect(c: &ClientOpts) -> Result<Client, String> {
    let addr = match &c.addr {
        Some(a) => a.clone(),
        None => discover_addr(Path::new(&c.dir)).map_err(|e| e.to_string())?,
    };
    Client::connect(&addr).map_err(|e| format!("could not connect to {addr}: {e}"))
}

/// `bbv serve`: run the verification daemon in the foreground until a
/// client drains it.
fn serve_cmd(args: &[String]) -> i32 {
    let mut cfg = ServeConfig::default();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let r: Result<(), String> = (|| {
            match a.as_str() {
                "--dir" => {
                    cfg.dir = PathBuf::from(it.next().ok_or("--dir needs a directory")?)
                }
                "--addr" => cfg.addr = it.next().ok_or("--addr needs host:port")?.clone(),
                "--workers" => {
                    let n: usize = it
                        .next()
                        .ok_or("--workers needs a count")?
                        .parse()
                        .map_err(|e| format!("--workers: {e}"))?;
                    if n == 0 {
                        return Err("--workers must be at least 1".into());
                    }
                    cfg.workers = n;
                }
                "--queue" => {
                    cfg.queue_cap = it
                        .next()
                        .ok_or("--queue needs a capacity")?
                        .parse()
                        .map_err(|e| format!("--queue: {e}"))?;
                }
                "--cache" => {
                    cfg.cache = Some(PathBuf::from(it.next().ok_or("--cache needs a directory")?))
                }
                "--metrics-addr" => {
                    cfg.metrics_addr =
                        Some(it.next().ok_or("--metrics-addr needs host:port")?.clone())
                }
                other => return Err(format!("unknown serve option `{other}`")),
            }
            Ok(())
        })();
        if let Err(e) = r {
            eprintln!("error: {e}");
            return EXIT_USAGE;
        }
    }
    match bbverify::serve::serve(cfg) {
        Ok(()) => EXIT_PROVED,
        Err(e) => {
            eprintln!("serve error: {e}");
            EXIT_USAGE
        }
    }
}

/// `bbv submit [command] <algorithm> [options]`: ship a job to the daemon.
/// Waits for the result by default (stdout/artifacts/exit code then match a
/// direct run byte-for-byte); `--detach` just prints the job id.
fn client_submit(args: &[String]) -> i32 {
    let c = match split_client_flags(args) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("error: {e}");
            return EXIT_USAGE;
        }
    };
    let (command, name_idx) = match c.rest.first().map(String::as_str).and_then(Command::parse) {
        Some(cmd) => (cmd, 1),
        None => (Command::Verify, 0),
    };
    let Some(name) = c.rest.get(name_idx) else {
        eprintln!("usage: bbv submit [verify|quotient|check|reduce-check] <algorithm> [options]");
        return EXIT_USAGE;
    };
    let opts = match parse_options(&c.rest[name_idx + 1..]) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}");
            return EXIT_USAGE;
        }
    };
    for (flag, set) in [
        ("--checkpoint", opts.checkpoint.is_some()),
        ("--cache", opts.cache.is_some()),
        ("--metrics", opts.metrics.is_some()),
        ("--trace", opts.trace.is_some()),
        ("--spill", opts.spill.is_some()),
        ("--compact off", !opts.compact),
    ] {
        if set {
            eprintln!("note: {flag} is daemon-side; ignored for a submitted job");
        }
    }
    let spec = opts.to_spec(command, &name.replace('_', "-"));
    if let Err(e) = spec.validate() {
        eprintln!("error: {e}");
        return EXIT_USAGE;
    }
    let mut client = match connect(&c) {
        Ok(cl) => cl,
        Err(e) => {
            eprintln!("error: {e}");
            return EXIT_USAGE;
        }
    };
    if c.detach {
        return match client.submit(&spec, c.priority) {
            Ok(reply) => {
                println!("{}", reply.render());
                if reply.get("ok").and_then(JsonValue::as_bool) == Some(true) {
                    EXIT_PROVED
                } else {
                    EXIT_USAGE
                }
            }
            Err(e) => {
                eprintln!("error: {e}");
                EXIT_USAGE
            }
        };
    }
    let progress = opts.progress;
    match client.submit_and_wait(&spec, c.priority, |ev| {
        // Live events go to stderr; stdout stays byte-identical to a
        // direct run.
        if progress {
            eprintln!("{}", ev.render());
        }
    }) {
        Ok(res) => {
            print!("{}", res.stdout);
            write_requested_artifacts(&res.artifacts, &opts, res.exit_code)
        }
        Err(e) => {
            eprintln!("error: {e}");
            EXIT_USAGE
        }
    }
}

/// `bbv status|watch|cancel <job>`: single-job client commands.
fn client_job_cmd(cmd: &str, args: &[String]) -> i32 {
    let c = match split_client_flags(args) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("error: {e}");
            return EXIT_USAGE;
        }
    };
    let Some(job) = c.rest.first().and_then(|s| s.parse::<u64>().ok()) else {
        eprintln!("usage: bbv {cmd} <job-id> [--dir D | --addr H:P]");
        return EXIT_USAGE;
    };
    let mut client = match connect(&c) {
        Ok(cl) => cl,
        Err(e) => {
            eprintln!("error: {e}");
            return EXIT_USAGE;
        }
    };
    let reply = match cmd {
        "status" => client.status(job),
        "cancel" => client.cancel(job),
        "watch" => client.watch(job, |ev| println!("{}", ev.render())),
        _ => unreachable!("dispatch covers the command words"),
    };
    print_reply(reply)
}

/// `bbv stats|drain|ping`: daemon-wide client commands.
fn client_daemon_cmd(cmd: &str, args: &[String]) -> i32 {
    let c = match split_client_flags(args) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("error: {e}");
            return EXIT_USAGE;
        }
    };
    if !c.rest.is_empty() {
        eprintln!("usage: bbv {cmd} [--dir D | --addr H:P]");
        return EXIT_USAGE;
    }
    let mut client = match connect(&c) {
        Ok(cl) => cl,
        Err(e) => {
            eprintln!("error: {e}");
            return EXIT_USAGE;
        }
    };
    let reply = match cmd {
        "stats" => client.stats(),
        "drain" => client.drain(),
        "ping" => client.ping(),
        _ => unreachable!("dispatch covers the command words"),
    };
    print_reply(reply)
}

/// `bbv metrics [--lint]`: fetch the daemon's Prometheus exposition over
/// the protocol and print it. `--lint` additionally runs the strict format
/// checker and exits 1 when the document is malformed (the CI gate).
fn metrics_cmd(args: &[String]) -> i32 {
    let lint = args.iter().any(|a| a == "--lint");
    let rest: Vec<String> = args.iter().filter(|a| a.as_str() != "--lint").cloned().collect();
    let c = match split_client_flags(&rest) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("error: {e}");
            return EXIT_USAGE;
        }
    };
    if !c.rest.is_empty() {
        eprintln!("usage: bbv metrics [--lint] [--dir D | --addr H:P]");
        return EXIT_USAGE;
    }
    let mut client = match connect(&c) {
        Ok(cl) => cl,
        Err(e) => {
            eprintln!("error: {e}");
            return EXIT_USAGE;
        }
    };
    let text = match client.metrics() {
        Ok(t) => t,
        Err(e) => {
            eprintln!("error: {e}");
            return EXIT_USAGE;
        }
    };
    print!("{text}");
    if lint {
        if let Err(e) = bb_obs::prom::lint(&text) {
            eprintln!("metrics lint failed: {e}");
            return EXIT_REFUTED;
        }
        eprintln!("metrics lint: ok ({} lines)", text.lines().count());
    }
    EXIT_PROVED
}

/// `bbv jobs dump <job>`: print a job's flight-recorder dump (NDJSON) —
/// the live ring of a running job, or the post-mortem the daemon persisted
/// when the job failed, was cancelled, or ended inconclusive.
fn jobs_cmd(args: &[String]) -> i32 {
    let usage = || eprintln!("usage: bbv jobs dump <job-id> [--dir D | --addr H:P]");
    if args.first().map(String::as_str) != Some("dump") {
        usage();
        return EXIT_USAGE;
    }
    let c = match split_client_flags(&args[1..]) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("error: {e}");
            return EXIT_USAGE;
        }
    };
    let Some(job) = c.rest.first().and_then(|s| s.parse::<u64>().ok()) else {
        usage();
        return EXIT_USAGE;
    };
    let mut client = match connect(&c) {
        Ok(cl) => cl,
        Err(e) => {
            eprintln!("error: {e}");
            return EXIT_USAGE;
        }
    };
    match client.dump(job) {
        Ok(dump) => {
            print!("{dump}");
            EXIT_PROVED
        }
        Err(e) => {
            eprintln!("error: {e}");
            EXIT_USAGE
        }
    }
}

/// Renders one `stats` reply as the `bbv top` dashboard (multi-line) or as
/// one compact line for non-terminal output.
fn render_top(v: &JsonValue, plain: bool) -> String {
    let num = |path: &[&str]| -> u64 {
        let mut cur = v;
        for p in path {
            match cur.get(p) {
                Some(next) => cur = next,
                None => return 0,
            }
        }
        cur.as_u64().unwrap_or(0)
    };
    let pending = num(&["queue", "pending"]);
    let cap = num(&["queue", "cap"]);
    let running = num(&["queue", "running"]);
    let workers = num(&["workers"]);
    let completed = num(&["served", "completed"]);
    let from_cache = num(&["served", "from_cache"]);
    let cancelled = num(&["served", "cancelled"]);
    let cache_pct = (from_cache * 100).checked_div(completed).unwrap_or(0);
    let uptime_s = num(&["uptime_ms"]) / 1000;
    let jobs = v.get("jobs").and_then(JsonValue::as_array).unwrap_or(&[]);
    if plain {
        let mut line = format!(
            "up {uptime_s}s queue {pending}/{cap} busy {running}/{workers} done {completed} cached {cache_pct}% cancelled {cancelled} active"
        );
        for j in jobs {
            let id = j.get("job").and_then(JsonValue::as_u64).unwrap_or(0);
            let state = j.get("state").and_then(JsonValue::as_str).unwrap_or("?");
            let phase = j.get("phase").and_then(JsonValue::as_str).unwrap_or("");
            let states = j.get("states").and_then(JsonValue::as_u64).unwrap_or(0);
            line.push_str(&format!(" [{id} {state} {phase} {states}]"));
        }
        if jobs.is_empty() {
            line.push_str(" none");
        }
        return line;
    }
    let mut out = String::new();
    out.push_str(&format!(
        "bbv top — uptime {uptime_s}s   queue {pending}/{cap}   workers {running}/{workers} busy\n"
    ));
    out.push_str(&format!(
        "admission: submitted {}  admitted {}  rejected {}  cache_hits {}  replayed {}\n",
        num(&["admission", "submitted"]),
        num(&["admission", "admitted"]),
        num(&["admission", "rejected"]),
        num(&["admission", "cache_hits"]),
        num(&["admission", "replayed"]),
    ));
    out.push_str(&format!(
        "served:    completed {completed}  computed {}  from_cache {from_cache} ({cache_pct}%)  cancelled {cancelled}  avg_job_ms {}\n",
        num(&["served", "computed"]),
        num(&["avg_job_ms"]),
    ));
    out.push_str(&format!(
        "journal:   replayed_records {}\n",
        num(&["journal", "replayed_records"])
    ));
    out.push_str(&format!("{:>5}  {:<9} {:<16} {:<14} {:>10} {:>12}\n", "JOB", "STATE", "ALGORITHM", "PHASE", "STATES", "TRANSITIONS"));
    if jobs.is_empty() {
        out.push_str("  (no queued or running jobs)\n");
    }
    for j in jobs {
        out.push_str(&format!(
            "{:>5}  {:<9} {:<16} {:<14} {:>10} {:>12}\n",
            j.get("job").and_then(JsonValue::as_u64).unwrap_or(0),
            j.get("state").and_then(JsonValue::as_str).unwrap_or("?"),
            j.get("algorithm").and_then(JsonValue::as_str).unwrap_or("?"),
            j.get("phase").and_then(JsonValue::as_str).unwrap_or(""),
            j.get("states").and_then(JsonValue::as_u64).unwrap_or(0),
            j.get("transitions").and_then(JsonValue::as_u64).unwrap_or(0),
        ));
    }
    out
}

/// `bbv top [--interval MS] [--once]`: live daemon dashboard driving the
/// `stats` op. Full-screen refresh on a terminal; one summary line per
/// refresh when stdout is redirected (logs, CI).
fn top_cmd(args: &[String]) -> i32 {
    use std::io::IsTerminal;
    let mut interval_ms: u64 = 1000;
    let mut once = false;
    let mut rest: Vec<String> = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--interval" => {
                interval_ms = match it.next().map(|s| s.parse::<u64>()) {
                    Some(Ok(n)) if n > 0 => n,
                    _ => {
                        eprintln!("error: --interval needs a positive millisecond count");
                        return EXIT_USAGE;
                    }
                };
            }
            "--once" => once = true,
            _ => rest.push(a.clone()),
        }
    }
    let c = match split_client_flags(&rest) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("error: {e}");
            return EXIT_USAGE;
        }
    };
    if !c.rest.is_empty() {
        eprintln!("usage: bbv top [--interval MS] [--once] [--dir D | --addr H:P]");
        return EXIT_USAGE;
    }
    let tty = std::io::stdout().is_terminal();
    let mut refreshed = false;
    loop {
        // One connection per refresh: the daemon may restart between
        // refreshes, and a `stats` round trip is one line each way.
        let reply = connect(&c).and_then(|mut client| client.stats());
        let v = match reply {
            Ok(v) => v,
            Err(e) => {
                if refreshed {
                    eprintln!("top: daemon gone ({e})");
                    return EXIT_PROVED;
                }
                eprintln!("error: {e}");
                return EXIT_USAGE;
            }
        };
        refreshed = true;
        if tty {
            // Clear the screen and repaint from the top-left.
            print!("\x1b[2J\x1b[H{}", render_top(&v, false));
        } else {
            println!("{}", render_top(&v, true));
        }
        use std::io::Write as _;
        let _ = std::io::stdout().flush();
        if once {
            return EXIT_PROVED;
        }
        std::thread::sleep(Duration::from_millis(interval_ms));
    }
}

/// Prints a protocol reply and maps it onto the exit code.
fn print_reply(reply: Result<JsonValue, String>) -> i32 {
    match reply {
        Ok(v) => {
            println!("{}", v.render());
            if v.get("ok").and_then(JsonValue::as_bool) == Some(false)
                || v.get("error").is_some()
            {
                EXIT_USAGE
            } else {
                EXIT_PROVED
            }
        }
        Err(e) => {
            eprintln!("error: {e}");
            EXIT_USAGE
        }
    }
}
