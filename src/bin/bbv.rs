//! `bbv` — command-line front end for the branching-bisimulation verifier.
//!
//! ```sh
//! bbv list
//! bbv verify ms-queue --threads 2 --ops 2
//! bbv verify ms-queue --threads 3 --ops 3 --timeout 30s --max-states 1e6
//! bbv verify hm-list-buggy --threads 2 --ops 2      # shows the counterexample
//! bbv quotient treiber --threads 2 --ops 1 --dot out.dot
//! bbv check hw-queue --formula "G F (ret | done)"   # arbitrary next-free LTL
//! ```
//!
//! Exit codes: `0` every checked property was proved, `1` a property was
//! refuted, `2` the verification was inconclusive (budget exhausted or an
//! internal fault), `3` usage or parse error.

use bbverify::algorithms::{
    ccas::Ccas, coarse::CoarseLocked, dglm_queue::DglmQueue, fine_list::FineList, hm_list::HmList,
    hsy_stack::HsyStack, hw_queue::HwQueue, lazy_list::LazyList, ms_queue::MsQueue,
    newcas::NewCas, optimistic_list::OptimisticList, rdcss::Rdcss, specs::*, treiber::Treiber,
    treiber_hp::TreiberHp, treiber_hp_fu::TreiberHpFu, two_lock_queue::TwoLockQueue,
};
use bbverify::bisim::{quotient, Equivalence, PartitionOptions, RefineMode};
use bbverify::core::{
    run_isolated, verify_case_governed, verify_case_lts, verify_wait_freedom, GovernedConfig,
    Verdict, VerifyConfig,
};
use bbverify::bisim::partition_opts;
use bbverify::lts::{to_aut, to_dot, Budget, ExploreLimits, Jobs, Lts, Watchdog};
use bbverify::lts::ExploreOptions;
use bbverify::reduce::{
    differential_check, explore_reduced, verify_case_reduced_governed, ReduceMode,
};
use bbverify::sim::{
    explore_system_with, AtomicSpec, Bound, ObjectAlgorithm, SequentialSpec,
};
use std::time::Duration;

const EXIT_PROVED: i32 = 0;
const EXIT_REFUTED: i32 = 1;
const EXIT_INCONCLUSIVE: i32 = 2;
const EXIT_USAGE: i32 = 3;

const ALGORITHMS: &[(&str, &str)] = &[
    ("treiber", "Treiber lock-free stack"),
    ("treiber-hp", "Treiber stack + hazard pointers (Michael 2004)"),
    ("treiber-hp-fu", "Treiber stack + revised HP (Fu et al.; lock-freedom bug)"),
    ("ms-queue", "Michael-Scott lock-free queue"),
    ("dglm-queue", "Doherty-Groves-Luchangco-Moir queue"),
    ("hw-queue", "Herlihy-Wing queue (lock-freedom violation)"),
    ("ccas", "conditional CAS (Turon et al.)"),
    ("rdcss", "restricted double-compare single-swap (Harris et al.)"),
    ("newcas", "NewCompareAndSet register (Figs. 3/4)"),
    ("hm-list", "Harris-Michael lock-free list (revised)"),
    ("hm-list-buggy", "Harris-Michael list, first printing (linearizability bug)"),
    ("hsy-stack", "Hendler-Shavit-Yerushalmi elimination stack"),
    ("lazy-list", "Heller et al. lazy list (lock-based)"),
    ("optimistic-list", "optimistic list (lock-based)"),
    ("fine-list", "fine-grained hand-over-hand list (lock-based)"),
    ("two-lock-queue", "two-lock MS queue (blocking; extension)"),
    ("coarse-stack", "coarse-locked stack baseline (extension)"),
    ("coarse-queue", "coarse-locked queue baseline (extension)"),
    ("coarse-set", "coarse-locked set baseline (extension)"),
];

struct Options {
    threads: u8,
    ops: u32,
    domain: Vec<i64>,
    check_lock_freedom: bool,
    wait_freedom: bool,
    dot: Option<String>,
    aut: Option<String>,
    formula: Option<String>,
    timeout: Option<Duration>,
    max_states: Option<usize>,
    max_transitions: Option<usize>,
    max_memory: Option<usize>,
    no_fallback: bool,
    jobs: Jobs,
    refine: RefineMode,
    reduce: ReduceMode,
    metrics: Option<String>,
    trace: Option<String>,
    progress: bool,
    quiet: bool,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            threads: 2,
            ops: 2,
            domain: vec![1, 2],
            check_lock_freedom: true,
            wait_freedom: false,
            dot: None,
            aut: None,
            formula: None,
            timeout: None,
            max_states: None,
            max_transitions: None,
            max_memory: None,
            no_fallback: false,
            jobs: Jobs::available(),
            refine: RefineMode::default(),
            reduce: ReduceMode::None,
            metrics: None,
            trace: None,
            progress: false,
            quiet: false,
        }
    }
}

impl Options {
    /// Whether any budget flag was given (switches `verify` to the governed
    /// pipeline with the fallback ladder).
    fn budgeted(&self) -> bool {
        self.timeout.is_some()
            || self.max_states.is_some()
            || self.max_transitions.is_some()
            || self.max_memory.is_some()
    }

    fn budget(&self) -> Budget {
        let defaults = ExploreLimits::default();
        let mut b = Budget::unlimited()
            .with_max_states(self.max_states.unwrap_or(defaults.max_states))
            .with_max_transitions(self.max_transitions.unwrap_or(defaults.max_transitions));
        if let Some(t) = self.timeout {
            b = b.with_deadline(t);
        }
        if let Some(m) = self.max_memory {
            b = b.with_max_memory_bytes(m);
        }
        b
    }
}

/// Parses a duration like `30s`, `1.5s`, `500ms`, `2m`, or plain seconds.
fn parse_duration(raw: &str) -> Result<Duration, String> {
    let s = raw.trim();
    let (num, scale) = if let Some(x) = s.strip_suffix("ms") {
        (x, 1e-3)
    } else if let Some(x) = s.strip_suffix('s') {
        (x, 1.0)
    } else if let Some(x) = s.strip_suffix('m') {
        (x, 60.0)
    } else {
        (s, 1.0)
    };
    let v: f64 = num
        .trim()
        .parse()
        .map_err(|_| format!("`{raw}` is not a duration (try 30s, 500ms, 2m)"))?;
    if !v.is_finite() || v < 0.0 {
        return Err(format!("`{raw}` is not a non-negative duration"));
    }
    Ok(Duration::from_secs_f64(v * scale))
}

/// Parses a count like `1000000`, `1_000_000`, or `1e6`.
fn parse_count(raw: &str) -> Result<usize, String> {
    let clean: String = raw.chars().filter(|c| *c != '_').collect();
    if let Ok(n) = clean.parse::<usize>() {
        return Ok(n);
    }
    let v: f64 = clean
        .parse()
        .map_err(|_| format!("`{raw}` is not a count (try 1000000 or 1e6)"))?;
    if !v.is_finite() || v < 0.0 || v > usize::MAX as f64 {
        return Err(format!("`{raw}` is out of range for a count"));
    }
    Ok(v as usize)
}

fn parse_options(args: &[String]) -> Result<Options, String> {
    let mut opts = Options::default();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--threads" => {
                opts.threads = it
                    .next()
                    .ok_or("--threads needs a value")?
                    .parse()
                    .map_err(|e| format!("--threads: {e}"))?;
            }
            "--ops" => {
                opts.ops = it
                    .next()
                    .ok_or("--ops needs a value")?
                    .parse()
                    .map_err(|e| format!("--ops: {e}"))?;
            }
            "--domain" => {
                let raw = it.next().ok_or("--domain needs a value, e.g. 1,2,3")?;
                opts.domain = raw
                    .split(',')
                    .map(|v| v.parse().map_err(|e| format!("--domain: {e}")))
                    .collect::<Result<_, _>>()?;
                if opts.domain.is_empty() {
                    return Err("--domain must not be empty".into());
                }
            }
            "--no-lock-freedom" => opts.check_lock_freedom = false,
            "--wait-freedom" => opts.wait_freedom = true,
            "--dot" => opts.dot = Some(it.next().ok_or("--dot needs a path")?.clone()),
            "--aut" => opts.aut = Some(it.next().ok_or("--aut needs a path")?.clone()),
            "--formula" => {
                opts.formula = Some(it.next().ok_or("--formula needs an LTL formula")?.clone())
            }
            "--timeout" => {
                opts.timeout =
                    Some(parse_duration(it.next().ok_or("--timeout needs a duration")?)?)
            }
            "--max-states" => {
                opts.max_states =
                    Some(parse_count(it.next().ok_or("--max-states needs a count")?)?)
            }
            "--max-transitions" => {
                opts.max_transitions =
                    Some(parse_count(it.next().ok_or("--max-transitions needs a count")?)?)
            }
            "--max-memory" => {
                opts.max_memory =
                    Some(parse_count(it.next().ok_or("--max-memory needs a byte count")?)?)
            }
            "--no-fallback" => opts.no_fallback = true,
            "--jobs" => {
                let n: usize = it
                    .next()
                    .ok_or("--jobs needs a thread count")?
                    .parse()
                    .map_err(|e| format!("--jobs: {e}"))?;
                if n == 0 {
                    return Err("--jobs must be at least 1".into());
                }
                opts.jobs = Jobs::new(n);
            }
            "--refine" => {
                opts.refine = it
                    .next()
                    .ok_or("--refine needs a mode: full or incremental")?
                    .parse()?;
            }
            "--reduce" => {
                opts.reduce = it
                    .next()
                    .ok_or("--reduce needs a mode: none, sym, por, full")?
                    .parse()?;
            }
            "--metrics" => {
                opts.metrics = Some(it.next().ok_or("--metrics needs a path")?.clone())
            }
            "--trace" => opts.trace = Some(it.next().ok_or("--trace needs a path")?.clone()),
            "--progress" => opts.progress = true,
            "--quiet" => opts.quiet = true,
            other => return Err(format!("unknown option `{other}`")),
        }
    }
    Ok(opts)
}

fn print_usage() {
    eprintln!("usage: bbv <list|verify|quotient|check|reduce-check> [algorithm|all] [options]");
    eprintln!("  options: --threads N  --ops N  --domain 1,2");
    eprintln!("           --no-lock-freedom  --wait-freedom  --dot FILE  --aut FILE");
    eprintln!("           --formula \"G F (ret | done)\"   (for `check`)");
    eprintln!("           --jobs N   (worker threads; default = all cores, output identical)");
    eprintln!("           --refine full|incremental   (partition-refinement engine; default");
    eprintln!("           incremental — dirty-state worklists, identical output either way)");
    eprintln!("           --reduce none|sym|por|full   (state-space reduction; ≈div-preserving)");
    eprintln!("           `reduce-check <algorithm|all>` cross-checks the reduction: the");
    eprintln!("           reduced LTS must be ≈div the full one with identical verdicts");
    eprintln!("  observe: --metrics FILE   (phase spans + counters as one JSON document)");
    eprintln!("           --trace FILE     (per-span event stream, NDJSON)");
    eprintln!("           --progress       (stderr heartbeat: states/sec, frontier depth)");
    eprintln!("           --quiet          (silence diagnostic counters on stderr)");
    eprintln!("           observability is output-neutral: stdout, .aut files and exit");
    eprintln!("           codes are byte-identical with or without these flags");
    eprintln!("  budget:  --timeout 30s  --max-states 1e6  --max-transitions 1e7");
    eprintln!("           --max-memory 2e9  --no-fallback");
    eprintln!("           with a budget, `verify` degrades gracefully: on exhaustion it");
    eprintln!("           retries with strong-bisimulation pre-reduction, then a smaller");
    eprintln!("           bound, and reports which rung answered");
    eprintln!("  exit codes: 0 proved   1 refuted   2 inconclusive (budget/internal fault)");
    eprintln!("              3 usage or parse error");
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let code = match args.first().map(String::as_str) {
        Some("list") => {
            println!("available algorithms:");
            for (name, desc) in ALGORITHMS {
                println!("  {name:<18} {desc}");
            }
            EXIT_PROVED
        }
        Some("help") | Some("--help") | Some("-h") => {
            print_usage();
            EXIT_PROVED
        }
        Some(cmd @ ("verify" | "quotient" | "check" | "reduce-check")) => {
            let mode = match cmd {
                "verify" => Mode::Verify,
                "quotient" => Mode::Quotient,
                "check" => Mode::Check,
                _ => Mode::ReduceCheck,
            };
            if mode == Mode::ReduceCheck && args.get(1).map(String::as_str) == Some("all") {
                reduce_check_all(&args[2..])
            } else {
                // A panicking case (a bug in a checker, not a budget trip) is
                // an inconclusive run, not a crash.
                match run_isolated(|| run(&args[1..], mode)) {
                    Ok(code) => code,
                    Err(msg) => {
                        eprintln!("internal fault (treated as inconclusive): {msg}");
                        EXIT_INCONCLUSIVE
                    }
                }
            }
        }
        _ => {
            print_usage();
            EXIT_USAGE
        }
    };
    std::process::exit(code);
}

#[derive(Clone, Copy, PartialEq)]
enum Mode {
    Verify,
    Quotient,
    Check,
    ReduceCheck,
}

/// `bbv reduce-check all`: sweep the differential check over the whole
/// roster, reporting every algorithm and returning the worst exit code.
fn reduce_check_all(extra: &[String]) -> i32 {
    let mut worst = EXIT_PROVED;
    for (name, _) in ALGORITHMS {
        let mut args: Vec<String> = vec![name.to_string()];
        args.extend(extra.iter().cloned());
        let code = match run_isolated(|| run(&args, Mode::ReduceCheck)) {
            Ok(code) => code,
            Err(msg) => {
                eprintln!("internal fault (treated as inconclusive): {msg}");
                EXIT_INCONCLUSIVE
            }
        };
        worst = worst.max(code);
    }
    worst
}

/// The command word for metrics metadata and the root trace span.
fn mode_str(mode: Mode) -> &'static str {
    match mode {
        Mode::Verify => "verify",
        Mode::Quotient => "quotient",
        Mode::Check => "check",
        Mode::ReduceCheck => "reduce-check",
    }
}

/// Writes the `--metrics` / `--trace` exports after a run. Failures go to
/// stderr only: observability never changes the verification exit code.
fn write_obs_outputs(session: &bb_obs::Session, opts: &Options, algorithm: &str, mode: Mode) {
    let meta: Vec<(&str, bb_obs::Value)> = vec![
        ("command", mode_str(mode).into()),
        ("algorithm", algorithm.into()),
        ("threads", u64::from(opts.threads).into()),
        ("ops", u64::from(opts.ops).into()),
        ("jobs", opts.jobs.get().into()),
        ("reduce", opts.reduce.to_string().into()),
    ];
    if let Some(path) = &opts.metrics {
        if let Err(e) = std::fs::write(path, session.metrics_json(&meta)) {
            eprintln!("could not write metrics to {path}: {e}");
        }
    }
    if let Some(path) = &opts.trace {
        if let Err(e) = std::fs::write(path, session.trace_ndjson()) {
            eprintln!("could not write trace to {path}: {e}");
        }
    }
}

fn run(args: &[String], mode: Mode) -> i32 {
    let Some(name) = args.first() else {
        eprintln!("missing algorithm name; try `bbv list`");
        return EXIT_USAGE;
    };
    let opts = match parse_options(&args[1..]) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}");
            return EXIT_USAGE;
        }
    };
    // Accept underscores interchangeably with dashes (`ms_queue` = `ms-queue`).
    let canon = name.replace('_', "-");
    let recording = opts.metrics.is_some() || opts.trace.is_some() || opts.progress;
    if recording {
        bb_obs::install(bb_obs::ObsConfig {
            progress: opts.progress,
            quiet: opts.quiet,
        });
    } else {
        bb_obs::set_quiet(opts.quiet);
    }
    let code = {
        let _root = bb_obs::span("bbv")
            .with("command", mode_str(mode))
            .with("algorithm", canon.as_str());
        dispatch_named(&canon, &opts, mode)
    };
    if recording {
        if let Some(session) = bb_obs::finish() {
            write_obs_outputs(&session, &opts, &canon, mode);
        }
    }
    code
}

fn dispatch_named(canon: &str, opts: &Options, mode: Mode) -> i32 {
    let d = &opts.domain;
    let dsize = d.len() as i64;
    let th = opts.threads;
    let ops = opts.ops;
    match canon {
        "treiber" => dispatch(&Treiber::new(d), &AtomicSpec::new(SeqStack::new(d)), opts, mode, true),
        "treiber-hp" => dispatch(&TreiberHp::new(d, th), &AtomicSpec::new(SeqStack::new(d)), opts, mode, true),
        "treiber-hp-fu" => dispatch(&TreiberHpFu::new(d, th), &AtomicSpec::new(SeqStack::new(d)), opts, mode, true),
        "ms-queue" => dispatch(&MsQueue::new(d), &AtomicSpec::new(SeqQueue::new(d)), opts, mode, true),
        "dglm-queue" => dispatch(&DglmQueue::new(d), &AtomicSpec::new(SeqQueue::new(d)), opts, mode, true),
        "hw-queue" => dispatch(
            &HwQueue::for_bound(d, th, ops),
            &AtomicSpec::new(SeqQueue::new(d)),
            opts,
            mode,
            true,
        ),
        "ccas" => dispatch(&Ccas::new(dsize), &AtomicSpec::new(SeqCcas::new(dsize)), opts, mode, true),
        "rdcss" => dispatch(&Rdcss::new(dsize), &AtomicSpec::new(SeqRdcss::new(dsize)), opts, mode, true),
        "newcas" => dispatch(&NewCas::new(dsize), &AtomicSpec::new(SeqRegister::new(dsize)), opts, mode, true),
        "hm-list" => dispatch(&HmList::revised(d), &AtomicSpec::new(SeqSet::new(d)), opts, mode, true),
        "hm-list-buggy" => dispatch(&HmList::buggy(d), &AtomicSpec::new(SeqSet::new(d)), opts, mode, true),
        "hsy-stack" => dispatch(&HsyStack::new(d), &AtomicSpec::new(SeqStack::new(d)), opts, mode, true),
        "lazy-list" => dispatch(&LazyList::new(d), &AtomicSpec::new(SeqSet::new(d)), opts, mode, false),
        "optimistic-list" => dispatch(&OptimisticList::new(d), &AtomicSpec::new(SeqSet::new(d)), opts, mode, false),
        "fine-list" => dispatch(&FineList::new(d), &AtomicSpec::new(SeqSet::new(d)), opts, mode, false),
        "two-lock-queue" => dispatch(&TwoLockQueue::new(d), &AtomicSpec::new(SeqQueue::new(d)), opts, mode, false),
        "coarse-stack" => dispatch(&CoarseLocked::new(SeqStack::new(d)), &AtomicSpec::new(SeqStack::new(d)), opts, mode, false),
        "coarse-queue" => dispatch(&CoarseLocked::new(SeqQueue::new(d)), &AtomicSpec::new(SeqQueue::new(d)), opts, mode, false),
        "coarse-set" => dispatch(&CoarseLocked::new(SeqSet::new(d)), &AtomicSpec::new(SeqSet::new(d)), opts, mode, false),
        other => {
            eprintln!("unknown algorithm `{other}`; try `bbv list`");
            EXIT_USAGE
        }
    }
}

/// Explores under the option budget; exhaustion is an inconclusive outcome
/// (exit 2), reported with the exhausted stage and its partial statistics.
///
/// With `--reduce`, exploration unfolds the reduced system instead and the
/// reducer counters go to stderr (stdout stays diffable across modes).
fn explore_or_inconclusive<A: ObjectAlgorithm>(
    alg: &A,
    bound: Bound,
    wd: &Watchdog,
    opts: &Options,
) -> Result<Lts, i32> {
    let eo = ExploreOptions::governed(wd).with_jobs(opts.jobs);
    let result = if opts.reduce == ReduceMode::None {
        explore_system_with(alg, bound, &eo)
    } else {
        explore_reduced(alg, bound, opts.reduce, &eo).map(|(lts, stats)| {
            bb_obs::diag!("reduction {} [{}]: {stats}", opts.reduce, alg.name());
            lts
        })
    };
    result.map_err(|e| {
        eprintln!("inconclusive: {e}");
        EXIT_INCONCLUSIVE
    })
}

fn dispatch<A: ObjectAlgorithm, S: SequentialSpec>(
    alg: &A,
    spec: &AtomicSpec<S>,
    opts: &Options,
    mode: Mode,
    non_blocking: bool,
) -> i32 {
    let bound = Bound::new(opts.threads, opts.ops);

    if mode == Mode::ReduceCheck {
        return reduce_check(alg, spec, opts, bound, non_blocking);
    }
    if mode == Mode::Verify && opts.budgeted() {
        return verify_governed(alg, spec, opts, bound, non_blocking);
    }

    let wd = Watchdog::new(opts.budget());
    let imp = match explore_or_inconclusive(alg, bound, &wd, opts) {
        Ok(l) => l,
        Err(c) => return c,
    };

    if mode == Mode::Check {
        let Some(raw) = &opts.formula else {
            eprintln!("`check` needs --formula \"...\"; e.g. --formula \"G F (ret | done)\"");
            return EXIT_USAGE;
        };
        let formula = match bbverify::ltl::parse(raw) {
            Ok(f) => f,
            Err(e) => {
                eprintln!("formula error {e}");
                return EXIT_USAGE;
            }
        };
        // Model check on the divergence-preserving quotient: it is
        // ≈div-bisimilar to the object, so all next-free LTL carries over.
        let q = bbverify::bisim::div_quotient_opts(
            &imp,
            PartitionOptions::default()
                .with_jobs(opts.jobs)
                .with_mode(opts.refine),
        );
        let result = match bbverify::ltl::check_governed(&q.lts, &formula, &wd) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("inconclusive: {e}");
                return EXIT_INCONCLUSIVE;
            }
        };
        println!("algorithm : {}", alg.name());
        println!("formula   : {formula}");
        println!(
            "checked on: divergence-preserving quotient ({} of {} states)",
            q.lts.num_states(),
            imp.num_states()
        );
        println!("holds     : {}", result.holds);
        if let Some(ce) = &result.counterexample {
            println!("counterexample:");
            for line in ce.to_pretty().lines() {
                println!("  {line}");
            }
        }
        return if result.holds { EXIT_PROVED } else { EXIT_REFUTED };
    }

    if mode == Mode::Quotient {
        let p = partition_opts(
            &imp,
            Equivalence::Branching,
            PartitionOptions::default()
                .with_jobs(opts.jobs)
                .with_mode(opts.refine),
        );
        let q = quotient(&imp, &p);
        println!("algorithm : {}", alg.name());
        println!("bound     : {}-{}", bound.threads, bound.ops_per_thread);
        println!("|Δ|       : {}", imp.num_states());
        println!("|Δ/≈|     : {}", q.lts.num_states());
        println!(
            "reduction : ×{:.1}",
            imp.num_states() as f64 / q.lts.num_states() as f64
        );
        if let Some(path) = &opts.dot {
            if let Err(e) = std::fs::write(path, to_dot(&q.lts, alg.name())) {
                eprintln!("could not write {path}: {e}");
                return EXIT_USAGE;
            }
            println!("quotient written to {path} (Graphviz DOT)");
        }
        if let Some(path) = &opts.aut {
            if let Err(e) = std::fs::write(path, to_aut(&q.lts)) {
                eprintln!("could not write {path}: {e}");
                return EXIT_USAGE;
            }
            println!("quotient written to {path} (Aldebaran .aut, CADP-compatible)");
        }
        return EXIT_PROVED;
    }

    let sp = match explore_or_inconclusive(spec, bound, &wd, opts) {
        Ok(l) => l,
        Err(c) => return c,
    };
    let mut cfg = VerifyConfig::new(bound)
        .with_jobs(opts.jobs)
        .with_refine(opts.refine);
    if !opts.check_lock_freedom || !non_blocking {
        cfg = cfg.linearizability_only();
    }
    let report = verify_case_lts(alg.name(), cfg, &imp, &sp);
    println!("{}", report.summary());
    if let Some(v) = &report.linearizability.violation {
        println!("non-linearizable history:");
        println!("  {}", v.to_pretty());
    }
    if let Some(lf) = &report.lock_freedom {
        if let Some(lasso) = &lf.divergence {
            println!("lock-freedom violation (τ-loop):");
            for line in bbverify::core::format_lasso(&imp, lasso).lines() {
                println!("  {line}");
            }
        }
    }
    if opts.wait_freedom {
        let wf = verify_wait_freedom(&imp, opts.threads);
        if wf.wait_free() {
            println!("starvation : none under the bounded client");
        } else {
            println!("starvation : threads {:?} can spin forever", wf.starving_threads());
        }
    }
    let failed = !report.linearizable()
        || report.lock_freedom.as_ref().is_some_and(|l| !l.lock_free);
    if failed {
        EXIT_REFUTED
    } else {
        EXIT_PROVED
    }
}

/// `bbv reduce-check <algorithm>`: run the differential harness — full and
/// reduced state spaces must be `≈div` with identical verdicts. `--reduce`
/// selects the layer under test (default: `full`, both layers).
fn reduce_check<A: ObjectAlgorithm, S: SequentialSpec>(
    alg: &A,
    spec: &AtomicSpec<S>,
    opts: &Options,
    bound: Bound,
    non_blocking: bool,
) -> i32 {
    let mode = if opts.reduce == ReduceMode::None {
        ReduceMode::Full
    } else {
        opts.reduce
    };
    let lock_freedom = opts.check_lock_freedom && non_blocking;
    match differential_check(alg, spec, bound, mode, opts.jobs, lock_freedom) {
        Ok(r) => {
            println!("{}", r.render());
            if r.passed() {
                EXIT_PROVED
            } else {
                EXIT_REFUTED
            }
        }
        Err(e) => {
            eprintln!("inconclusive: {e}");
            EXIT_INCONCLUSIVE
        }
    }
}

/// The budget-governed `verify` path: run the fallback ladder and map the
/// overall verdict onto the exit code.
fn verify_governed<A: ObjectAlgorithm, S: SequentialSpec>(
    alg: &A,
    spec: &AtomicSpec<S>,
    opts: &Options,
    bound: Bound,
    non_blocking: bool,
) -> i32 {
    let mut config = GovernedConfig::new(bound, opts.budget())
        .with_jobs(opts.jobs)
        .with_refine(opts.refine);
    if !opts.check_lock_freedom || !non_blocking {
        config = config.linearizability_only();
    }
    if opts.no_fallback {
        config = config.no_fallback();
    }
    let report = if opts.reduce == ReduceMode::None {
        verify_case_governed(alg, spec, &config)
    } else {
        verify_case_reduced_governed(alg, spec, opts.reduce, &config)
    };
    print!("{}", report.render());
    if let Some(details) = &report.details {
        println!("{}", details.summary());
        if let Some(v) = &details.linearizability.violation {
            println!("non-linearizable history:");
            println!("  {}", v.to_pretty());
        }
        if let Some(lf) = &details.lock_freedom {
            if let Some(lasso) = &lf.divergence {
                println!(
                    "lock-freedom violation: τ-loop of {} step(s) after a {}-step prefix",
                    lasso.cycle.len(),
                    lasso.prefix.len()
                );
            }
        }
    }
    match report.overall() {
        Verdict::Proved => EXIT_PROVED,
        Verdict::Refuted => EXIT_REFUTED,
        Verdict::Inconclusive { .. } => EXIT_INCONCLUSIVE,
    }
}
