//! `bbv` — command-line front end for the branching-bisimulation verifier.
//!
//! ```sh
//! bbv list
//! bbv verify ms-queue --threads 2 --ops 2
//! bbv verify hm-list-buggy --threads 2 --ops 2      # shows the counterexample
//! bbv quotient treiber --threads 2 --ops 1 --dot out.dot
//! bbv check hw-queue --formula "G F (ret | done)"   # arbitrary next-free LTL
//! ```

use bbverify::algorithms::{
    ccas::Ccas, coarse::CoarseLocked, dglm_queue::DglmQueue, fine_list::FineList, hm_list::HmList,
    hsy_stack::HsyStack, hw_queue::HwQueue, lazy_list::LazyList, ms_queue::MsQueue,
    newcas::NewCas, optimistic_list::OptimisticList, rdcss::Rdcss, specs::*, treiber::Treiber,
    treiber_hp::TreiberHp, treiber_hp_fu::TreiberHpFu, two_lock_queue::TwoLockQueue,
};
use bbverify::bisim::{partition, quotient, Equivalence};
use bbverify::core::{verify_case_lts, verify_wait_freedom, VerifyConfig};
use bbverify::lts::{to_aut, to_dot, ExploreLimits, Lts};
use bbverify::sim::{explore_system, AtomicSpec, Bound, ObjectAlgorithm, SequentialSpec};

const ALGORITHMS: &[(&str, &str)] = &[
    ("treiber", "Treiber lock-free stack"),
    ("treiber-hp", "Treiber stack + hazard pointers (Michael 2004)"),
    ("treiber-hp-fu", "Treiber stack + revised HP (Fu et al.; lock-freedom bug)"),
    ("ms-queue", "Michael-Scott lock-free queue"),
    ("dglm-queue", "Doherty-Groves-Luchangco-Moir queue"),
    ("hw-queue", "Herlihy-Wing queue (lock-freedom violation)"),
    ("ccas", "conditional CAS (Turon et al.)"),
    ("rdcss", "restricted double-compare single-swap (Harris et al.)"),
    ("newcas", "NewCompareAndSet register (Figs. 3/4)"),
    ("hm-list", "Harris-Michael lock-free list (revised)"),
    ("hm-list-buggy", "Harris-Michael list, first printing (linearizability bug)"),
    ("hsy-stack", "Hendler-Shavit-Yerushalmi elimination stack"),
    ("lazy-list", "Heller et al. lazy list (lock-based)"),
    ("optimistic-list", "optimistic list (lock-based)"),
    ("fine-list", "fine-grained hand-over-hand list (lock-based)"),
    ("two-lock-queue", "two-lock MS queue (blocking; extension)"),
    ("coarse-stack", "coarse-locked stack baseline (extension)"),
    ("coarse-queue", "coarse-locked queue baseline (extension)"),
    ("coarse-set", "coarse-locked set baseline (extension)"),
];

struct Options {
    threads: u8,
    ops: u32,
    domain: Vec<i64>,
    check_lock_freedom: bool,
    wait_freedom: bool,
    dot: Option<String>,
    aut: Option<String>,
    formula: Option<String>,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            threads: 2,
            ops: 2,
            domain: vec![1, 2],
            check_lock_freedom: true,
            wait_freedom: false,
            dot: None,
            aut: None,
            formula: None,
        }
    }
}

fn parse_options(args: &[String]) -> Result<Options, String> {
    let mut opts = Options::default();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--threads" => {
                opts.threads = it
                    .next()
                    .ok_or("--threads needs a value")?
                    .parse()
                    .map_err(|e| format!("--threads: {e}"))?;
            }
            "--ops" => {
                opts.ops = it
                    .next()
                    .ok_or("--ops needs a value")?
                    .parse()
                    .map_err(|e| format!("--ops: {e}"))?;
            }
            "--domain" => {
                let raw = it.next().ok_or("--domain needs a value, e.g. 1,2,3")?;
                opts.domain = raw
                    .split(',')
                    .map(|v| v.parse().map_err(|e| format!("--domain: {e}")))
                    .collect::<Result<_, _>>()?;
                if opts.domain.is_empty() {
                    return Err("--domain must not be empty".into());
                }
            }
            "--no-lock-freedom" => opts.check_lock_freedom = false,
            "--wait-freedom" => opts.wait_freedom = true,
            "--dot" => opts.dot = Some(it.next().ok_or("--dot needs a path")?.clone()),
            "--aut" => opts.aut = Some(it.next().ok_or("--aut needs a path")?.clone()),
            "--formula" => {
                opts.formula = Some(it.next().ok_or("--formula needs an LTL formula")?.clone())
            }
            other => return Err(format!("unknown option `{other}`")),
        }
    }
    Ok(opts)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let code = match args.first().map(String::as_str) {
        Some("list") => {
            println!("available algorithms:");
            for (name, desc) in ALGORITHMS {
                println!("  {name:<18} {desc}");
            }
            0
        }
        Some("verify") => run(&args[1..], Mode::Verify),
        Some("quotient") => run(&args[1..], Mode::Quotient),
        Some("check") => run(&args[1..], Mode::Check),
        _ => {
            eprintln!("usage: bbv <list|verify|quotient|check> [algorithm] [options]");
            eprintln!("  options: --threads N  --ops N  --domain 1,2");
            eprintln!("           --no-lock-freedom  --wait-freedom  --dot FILE  --aut FILE");
            eprintln!("           --formula \"G F (ret | done)\"   (for `check`)");
            2
        }
    };
    std::process::exit(code);
}

#[derive(Clone, Copy, PartialEq)]
enum Mode {
    Verify,
    Quotient,
    Check,
}

fn run(args: &[String], mode: Mode) -> i32 {
    let Some(name) = args.first() else {
        eprintln!("missing algorithm name; try `bbv list`");
        return 2;
    };
    let opts = match parse_options(&args[1..]) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}");
            return 2;
        }
    };
    let d = &opts.domain;
    let dsize = d.len() as i64;
    let th = opts.threads;
    let ops = opts.ops;
    match name.as_str() {
        "treiber" => dispatch(&Treiber::new(d), &AtomicSpec::new(SeqStack::new(d)), &opts, mode, true),
        "treiber-hp" => dispatch(&TreiberHp::new(d, th), &AtomicSpec::new(SeqStack::new(d)), &opts, mode, true),
        "treiber-hp-fu" => dispatch(&TreiberHpFu::new(d, th), &AtomicSpec::new(SeqStack::new(d)), &opts, mode, true),
        "ms-queue" => dispatch(&MsQueue::new(d), &AtomicSpec::new(SeqQueue::new(d)), &opts, mode, true),
        "dglm-queue" => dispatch(&DglmQueue::new(d), &AtomicSpec::new(SeqQueue::new(d)), &opts, mode, true),
        "hw-queue" => dispatch(
            &HwQueue::for_bound(d, th, ops),
            &AtomicSpec::new(SeqQueue::new(d)),
            &opts,
            mode,
            true,
        ),
        "ccas" => dispatch(&Ccas::new(dsize), &AtomicSpec::new(SeqCcas::new(dsize)), &opts, mode, true),
        "rdcss" => dispatch(&Rdcss::new(dsize), &AtomicSpec::new(SeqRdcss::new(dsize)), &opts, mode, true),
        "newcas" => dispatch(&NewCas::new(dsize), &AtomicSpec::new(SeqRegister::new(dsize)), &opts, mode, true),
        "hm-list" => dispatch(&HmList::revised(d), &AtomicSpec::new(SeqSet::new(d)), &opts, mode, true),
        "hm-list-buggy" => dispatch(&HmList::buggy(d), &AtomicSpec::new(SeqSet::new(d)), &opts, mode, true),
        "hsy-stack" => dispatch(&HsyStack::new(d), &AtomicSpec::new(SeqStack::new(d)), &opts, mode, true),
        "lazy-list" => dispatch(&LazyList::new(d), &AtomicSpec::new(SeqSet::new(d)), &opts, mode, false),
        "optimistic-list" => dispatch(&OptimisticList::new(d), &AtomicSpec::new(SeqSet::new(d)), &opts, mode, false),
        "fine-list" => dispatch(&FineList::new(d), &AtomicSpec::new(SeqSet::new(d)), &opts, mode, false),
        "two-lock-queue" => dispatch(&TwoLockQueue::new(d), &AtomicSpec::new(SeqQueue::new(d)), &opts, mode, false),
        "coarse-stack" => dispatch(&CoarseLocked::new(SeqStack::new(d)), &AtomicSpec::new(SeqStack::new(d)), &opts, mode, false),
        "coarse-queue" => dispatch(&CoarseLocked::new(SeqQueue::new(d)), &AtomicSpec::new(SeqQueue::new(d)), &opts, mode, false),
        "coarse-set" => dispatch(&CoarseLocked::new(SeqSet::new(d)), &AtomicSpec::new(SeqSet::new(d)), &opts, mode, false),
        other => {
            eprintln!("unknown algorithm `{other}`; try `bbv list`");
            2
        }
    }
}

fn explore_or_die<A: ObjectAlgorithm>(alg: &A, bound: Bound) -> Result<Lts, i32> {
    explore_system(alg, bound, ExploreLimits::default()).map_err(|e| {
        eprintln!("state-space exploration failed: {e}");
        3
    })
}

fn dispatch<A: ObjectAlgorithm, S: SequentialSpec>(
    alg: &A,
    spec: &AtomicSpec<S>,
    opts: &Options,
    mode: Mode,
    non_blocking: bool,
) -> i32 {
    let bound = Bound::new(opts.threads, opts.ops);
    let imp = match explore_or_die(alg, bound) {
        Ok(l) => l,
        Err(c) => return c,
    };

    if mode == Mode::Check {
        let Some(raw) = &opts.formula else {
            eprintln!("`check` needs --formula \"...\"; e.g. --formula \"G F (ret | done)\"");
            return 2;
        };
        let formula = match bbverify::ltl::parse(raw) {
            Ok(f) => f,
            Err(e) => {
                eprintln!("formula error {e}");
                return 2;
            }
        };
        // Model check on the divergence-preserving quotient: it is
        // ≈div-bisimilar to the object, so all next-free LTL carries over.
        let q = bbverify::bisim::div_quotient(&imp);
        let result = bbverify::ltl::check(&q.lts, &formula);
        println!("algorithm : {}", alg.name());
        println!("formula   : {formula}");
        println!(
            "checked on: divergence-preserving quotient ({} of {} states)",
            q.lts.num_states(),
            imp.num_states()
        );
        println!("holds     : {}", result.holds);
        if let Some(ce) = &result.counterexample {
            println!("counterexample:");
            for line in ce.to_pretty().lines() {
                println!("  {line}");
            }
        }
        return i32::from(!result.holds);
    }

    if mode == Mode::Quotient {
        let p = partition(&imp, Equivalence::Branching);
        let q = quotient(&imp, &p);
        println!("algorithm : {}", alg.name());
        println!("bound     : {}-{}", bound.threads, bound.ops_per_thread);
        println!("|Δ|       : {}", imp.num_states());
        println!("|Δ/≈|     : {}", q.lts.num_states());
        println!(
            "reduction : ×{:.1}",
            imp.num_states() as f64 / q.lts.num_states() as f64
        );
        if let Some(path) = &opts.dot {
            if let Err(e) = std::fs::write(path, to_dot(&q.lts, alg.name())) {
                eprintln!("could not write {path}: {e}");
                return 3;
            }
            println!("quotient written to {path} (Graphviz DOT)");
        }
        if let Some(path) = &opts.aut {
            if let Err(e) = std::fs::write(path, to_aut(&q.lts)) {
                eprintln!("could not write {path}: {e}");
                return 3;
            }
            println!("quotient written to {path} (Aldebaran .aut, CADP-compatible)");
        }
        return 0;
    }

    let sp = match explore_or_die(spec, bound) {
        Ok(l) => l,
        Err(c) => return c,
    };
    let mut cfg = VerifyConfig::new(bound);
    if !opts.check_lock_freedom || !non_blocking {
        cfg = cfg.linearizability_only();
    }
    let report = verify_case_lts(alg.name(), cfg, &imp, &sp);
    println!("{}", report.summary());
    if let Some(v) = &report.linearizability.violation {
        println!("non-linearizable history:");
        println!("  {}", v.to_pretty());
    }
    if let Some(lf) = &report.lock_freedom {
        if let Some(lasso) = &lf.divergence {
            println!("lock-freedom violation (τ-loop):");
            for line in bbverify::core::format_lasso(&imp, lasso).lines() {
                println!("  {line}");
            }
        }
    }
    if opts.wait_freedom {
        let wf = verify_wait_freedom(&imp, opts.threads);
        if wf.wait_free() {
            println!("starvation : none under the bounded client");
        } else {
            println!("starvation : threads {:?} can spin forever", wf.starving_threads());
        }
    }
    let failed = !report.linearizable()
        || report.lock_freedom.as_ref().is_some_and(|l| !l.lock_free);
    i32::from(failed)
}
