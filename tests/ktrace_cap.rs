//! Cap computation (Section III-B): the smallest k at which the ≡ₖ
//! hierarchy stabilizes. Fixed-LP algorithms cap at 1 (ordinary trace
//! equivalence already coincides with branching bisimilarity on their
//! state spaces); the Fig. 6 phenomenon forces a cap ≥ 2.

use bbverify::algorithms::{ccas::Ccas, newcas::NewCas, treiber::Treiber};
use bbverify::ktrace::{cap, KtraceLimits};
use bbverify::lts::ExploreLimits;
use bbverify::sim::{explore_system, Bound, ObjectAlgorithm};

fn cap_of<A: ObjectAlgorithm>(alg: &A, th: u8, op: u32) -> usize {
    let lts = explore_system(alg, Bound::new(th, op), ExploreLimits::default()).unwrap();
    cap(&lts, 20, KtraceLimits::default())
        .unwrap()
        .expect("hierarchy stabilizes")
}

#[test]
fn treiber_caps_at_one() {
    assert_eq!(cap_of(&Treiber::new(&[1]), 2, 2), 1);
}

#[test]
fn newcas_caps_at_one() {
    assert_eq!(cap_of(&NewCas::new(2), 2, 2), 1);
}

#[test]
fn ccas_needs_higher_levels() {
    // CCAS at 2-3 exhibits ≡₁∧≢₂ edges, so its cap is at least 2.
    assert!(cap_of(&Ccas::new(2), 2, 3) >= 2);
}
