//! Integration test reproducing the verdict column of Table II: every case
//! study's linearizability and lock-freedom result at a small bound.
//!
//! Correct algorithms verify on the paper's smallest configurations; the
//! three bugs (HW queue, Fu-et-al. stack, buggy HM list) are caught with
//! two or three threads, exactly as in Section VI-F.

use bbverify::algorithms::{
    ccas::Ccas, dglm_queue::DglmQueue, fine_list::FineList, hm_list::HmList, hsy_stack::HsyStack,
    hw_queue::HwQueue, lazy_list::LazyList, ms_queue::MsQueue, newcas::NewCas,
    optimistic_list::OptimisticList, rdcss::Rdcss, specs::*, treiber::Treiber,
    treiber_hp::TreiberHp, treiber_hp_fu::TreiberHpFu,
};
use bbverify::core::{verify_case, CaseReport, VerifyConfig};
use bbverify::sim::{AtomicSpec, Bound};

fn cfg(threads: u8, ops: u32) -> VerifyConfig {
    VerifyConfig::new(Bound::new(threads, ops))
}

fn assert_good(report: &CaseReport) {
    assert!(
        report.linearizable(),
        "{} must be linearizable; counterexample: {:?}",
        report.name,
        report.linearizability.violation.as_ref().map(|v| v.to_pretty())
    );
    assert!(report.lock_free(), "{} must be lock-free", report.name);
}

#[test]
fn case01_treiber_stack() {
    let r = verify_case(
        &Treiber::new(&[1, 2]),
        &AtomicSpec::new(SeqStack::new(&[1, 2])),
        cfg(2, 2),
    )
    .unwrap();
    assert_good(&r);
}

#[test]
fn case02_treiber_hp_michael() {
    let r = verify_case(
        &TreiberHp::new(&[1], 2),
        &AtomicSpec::new(SeqStack::new(&[1])),
        cfg(2, 2),
    )
    .unwrap();
    assert_good(&r);
}

#[test]
fn case03_treiber_hp_fu_violates_lock_freedom() {
    let r = verify_case(
        &TreiberHpFu::new(&[1], 2),
        &AtomicSpec::new(SeqStack::new(&[1])),
        cfg(2, 2),
    )
    .unwrap();
    assert!(r.linearizable(), "the Fu et al. stack is still linearizable");
    let lf = r.lock_freedom.as_ref().unwrap();
    assert!(!lf.lock_free, "the waiting reclamation violates lock-freedom");
    let lasso = lf.divergence.as_ref().expect("divergence witness");
    assert!(!lasso.cycle.is_empty());
}

#[test]
fn case04_ms_queue() {
    let r = verify_case(
        &MsQueue::new(&[1, 2]),
        &AtomicSpec::new(SeqQueue::new(&[1, 2])),
        cfg(2, 2),
    )
    .unwrap();
    assert_good(&r);
}

#[test]
fn case05_dglm_queue() {
    let r = verify_case(
        &DglmQueue::new(&[1, 2]),
        &AtomicSpec::new(SeqQueue::new(&[1, 2])),
        cfg(2, 2),
    )
    .unwrap();
    assert_good(&r);
}

#[test]
fn case06_ccas() {
    let r = verify_case(&Ccas::new(2), &AtomicSpec::new(SeqCcas::new(2)), cfg(2, 2)).unwrap();
    assert_good(&r);
}

#[test]
fn case07_rdcss() {
    let r = verify_case(&Rdcss::new(2), &AtomicSpec::new(SeqRdcss::new(2)), cfg(2, 1)).unwrap();
    assert_good(&r);
}

#[test]
fn case08_newcas() {
    let r = verify_case(
        &NewCas::new(2),
        &AtomicSpec::new(SeqRegister::new(2)),
        cfg(2, 2),
    )
    .unwrap();
    assert_good(&r);
}

#[test]
fn case09_1_hm_list_buggy_not_linearizable() {
    let r = verify_case(
        &HmList::buggy(&[1]),
        &AtomicSpec::new(SeqSet::new(&[1])),
        cfg(2, 2),
    )
    .unwrap();
    assert!(!r.linearizable(), "blind marking must break linearizability");
    let v = r.linearizability.violation.as_ref().unwrap();
    // The counterexample removes the same item twice: two remove→TRUE
    // returns appear in the trace.
    let pretty = v.to_pretty();
    let removes_true = pretty.matches("ret(1).remove").count();
    assert!(
        removes_true >= 1,
        "counterexample should show a bad remove: {pretty}"
    );
}

#[test]
fn case09_2_hm_list_revised() {
    let r = verify_case(
        &HmList::revised(&[1]),
        &AtomicSpec::new(SeqSet::new(&[1])),
        cfg(2, 2),
    )
    .unwrap();
    assert_good(&r);
}

#[test]
fn case10_hw_queue_not_lock_free() {
    let r = verify_case(
        &HwQueue::for_bound(&[1], 3, 1),
        &AtomicSpec::new(SeqQueue::new(&[1])),
        cfg(3, 1),
    )
    .unwrap();
    assert!(r.linearizable(), "HW queue is linearizable");
    let lf = r.lock_freedom.as_ref().unwrap();
    assert!(!lf.lock_free, "HW dequeue spins on the empty queue");
    assert!(lf.divergence.is_some());
}

#[test]
fn case11_hsy_stack() {
    let r = verify_case(
        &HsyStack::new(&[1]),
        &AtomicSpec::new(SeqStack::new(&[1])),
        cfg(2, 2),
    )
    .unwrap();
    assert_good(&r);
}

#[test]
fn case12_lazy_list() {
    let r = verify_case(
        &LazyList::new(&[1]),
        &AtomicSpec::new(SeqSet::new(&[1])),
        cfg(2, 2).linearizability_only(),
    )
    .unwrap();
    assert!(r.linearizable());
}

#[test]
fn case13_optimistic_list() {
    let r = verify_case(
        &OptimisticList::new(&[1]),
        &AtomicSpec::new(SeqSet::new(&[1])),
        cfg(2, 2).linearizability_only(),
    )
    .unwrap();
    assert!(r.linearizable());
}

#[test]
fn case14_fine_grained_list() {
    let r = verify_case(
        &FineList::new(&[1]),
        &AtomicSpec::new(SeqSet::new(&[1])),
        cfg(2, 2).linearizability_only(),
    )
    .unwrap();
    assert!(r.linearizable());
}
