//! Differential harness for the incremental partition-refinement engine.
//!
//! The incremental engine (dirty-state worklists, signature interning,
//! condensation reuse) must be **bit-identical** to the full engine: same
//! partition — block ids included — same round-by-round history, same
//! quotients and `.aut` exports, same verification verdicts, under every
//! equivalence and any worker count. These tests check exactly that on
//! the full algorithm roster (including the known-buggy variants), on a
//! seeded random-LTS sweep, and under a budget that trips mid-refinement.

use bbverify::algorithms::{
    ccas::Ccas, hm_list::HmList, hw_queue::HwQueue, lazy_list::LazyList, ms_queue::MsQueue,
    specs::*, treiber::Treiber, treiber_hp_fu::TreiberHpFu,
};
use bbverify::bisim::{
    partition_governed_opts, partition_opts, partition_with_history_opts,
    partition_with_history_pre, quotient, Equivalence, PartitionOptions, RefineMode,
};
use bbverify::core::{verify_case_lts, verify_case_lts_pre, VerifyConfig};
use bbverify::lts::{
    random_lts, to_aut, Action, Budget, ExhaustReason, ExploreLimits, Jobs, Lts, LtsBuilder,
    RandomLtsConfig, Stage, ThreadId, Watchdog,
};
use bbverify::sim::{explore_system, AtomicSpec, Bound, ObjectAlgorithm};

const EQUIVALENCES: [Equivalence; 4] = [
    Equivalence::Strong,
    Equivalence::Branching,
    Equivalence::BranchingDiv,
    Equivalence::Weak,
];

fn opts(mode: RefineMode, jobs: Jobs) -> PartitionOptions {
    PartitionOptions::default().with_jobs(jobs).with_mode(mode)
}

/// Asserts full and incremental refinement agree on `lts` — the final
/// partition (assignments *and* block ids) and the whole round history —
/// for every equivalence at both worker counts.
fn assert_engines_agree(lts: &Lts, what: &str) {
    for eq in EQUIVALENCES {
        for jobs in [Jobs::serial(), Jobs::new(4)] {
            let (p_full, h_full) =
                partition_with_history_opts(lts, eq, opts(RefineMode::Full, jobs));
            let (p_inc, h_inc) =
                partition_with_history_opts(lts, eq, opts(RefineMode::Incremental, jobs));
            assert_eq!(
                p_full, p_inc,
                "{what}: final partition differs under {eq:?} at {jobs:?}"
            );
            assert_eq!(
                h_full.rounds.len(),
                h_inc.rounds.len(),
                "{what}: round count differs under {eq:?} at {jobs:?}"
            );
            for (i, (a, b)) in h_full.rounds.iter().zip(&h_inc.rounds).enumerate() {
                assert_eq!(a, b, "{what}: history round {i} differs under {eq:?} at {jobs:?}");
            }
        }
    }
}

fn lts_of<A: ObjectAlgorithm>(alg: &A, threads: u8, ops: u32) -> Lts {
    explore_system(alg, Bound::new(threads, ops), ExploreLimits::default())
        .unwrap_or_else(|e| panic!("exploration of {} exceeded limits: {e}", alg.name()))
}

macro_rules! roster_case {
    ($test:ident, $alg:expr, $t:expr, $o:expr) => {
        #[test]
        fn $test() {
            let lts = lts_of(&$alg, $t, $o);
            assert_engines_agree(&lts, stringify!($test));
        }
    };
}

// Correct algorithms, a lock-based one, and both known-buggy variants: the
// engines must agree on failures exactly as they agree on successes.
roster_case!(roster_treiber, Treiber::new(&[1]), 2, 2);
roster_case!(roster_ms_queue, MsQueue::new(&[1]), 2, 2);
roster_case!(roster_lazy_list, LazyList::new(&[1]), 2, 2);
roster_case!(roster_ccas, Ccas::new(2), 2, 2);
roster_case!(roster_hw_queue, HwQueue::for_bound(&[1], 3, 1), 3, 1);
roster_case!(roster_treiber_hp_fu, TreiberHpFu::new(&[1], 2), 2, 2);
roster_case!(roster_hm_list_buggy, HmList::buggy(&[1]), 2, 2);

#[test]
fn engines_agree_on_specification_ltss() {
    let spec = lts_of(&AtomicSpec::new(SeqQueue::new(&[1, 2])), 2, 2);
    assert_engines_agree(&spec, "queue spec");
    let spec = lts_of(&AtomicSpec::new(SeqSet::new(&[1])), 2, 2);
    assert_engines_agree(&spec, "set spec");
}

#[test]
fn engines_agree_on_seeded_random_ltss() {
    for seed in 0..24 {
        let lts = random_lts(seed, RandomLtsConfig::default());
        assert_engines_agree(&lts, &format!("random seed {seed}"));
    }
}

/// The quotients — and therefore their `.aut` exports — are byte-identical,
/// because the partitions agree block id by block id.
#[test]
fn aut_exports_of_quotients_are_byte_identical() {
    let lts = lts_of(&MsQueue::new(&[1]), 2, 2);
    for eq in EQUIVALENCES {
        for jobs in [Jobs::serial(), Jobs::new(4)] {
            let q_full = quotient(&lts, &partition_opts(&lts, eq, opts(RefineMode::Full, jobs)));
            let q_inc =
                quotient(&lts, &partition_opts(&lts, eq, opts(RefineMode::Incremental, jobs)));
            assert_eq!(
                to_aut(&q_full.lts),
                to_aut(&q_inc.lts),
                ".aut export differs under {eq:?} at {jobs:?}"
            );
        }
    }
}

/// End-to-end: the verification verdict lines are identical for both
/// engines, on a passing case and on the known linearizability bug.
#[test]
fn verdicts_are_identical_across_engines() {
    let cases: [(&'static str, Lts, Lts); 2] = [
        (
            "ms-queue",
            lts_of(&MsQueue::new(&[1]), 2, 2),
            lts_of(&AtomicSpec::new(SeqQueue::new(&[1])), 2, 2),
        ),
        (
            "hm-list-buggy",
            lts_of(&HmList::buggy(&[1]), 2, 2),
            lts_of(&AtomicSpec::new(SeqSet::new(&[1])), 2, 2),
        ),
    ];
    for (name, imp, spec) in &cases {
        let run = |mode: RefineMode| {
            let cfg = VerifyConfig::new(Bound::new(2, 2)).with_refine(mode);
            let r = verify_case_lts(name, cfg, imp, spec);
            (r.linearizable(), r.lock_free(), r.summary())
        };
        assert_eq!(run(RefineMode::Full), run(RefineMode::Incremental), "{name}");
    }
}

/// The full jobs × engine × fusion sweep: partitions, round-by-round
/// histories and quotient `.aut` bytes must be identical across
/// `jobs ∈ {1, 2, 4}` × `refine ∈ {full, incremental}` × `fuse ∈ {off, on}`
/// — sixty cells per LTS, all equal to the serial unfused full-engine
/// baseline. Runs on a roster slice that includes a lock-based algorithm
/// and a known-buggy variant (failures must replicate exactly as
/// successes do).
#[test]
fn jobs_refine_fuse_sweep_is_bit_identical() {
    let cases: [(&str, Lts); 3] = [
        ("ms-queue", lts_of(&MsQueue::new(&[1]), 2, 2)),
        ("lazy-list", lts_of(&LazyList::new(&[1]), 2, 2)),
        ("hm-list-buggy", lts_of(&HmList::buggy(&[1]), 2, 2)),
    ];
    for (name, lts) in &cases {
        // The fused pipeline hands refinement the reverse adjacency the
        // exploration stream accumulated; here it is equivalently prebuilt.
        let preds = lts.predecessor_table();
        for eq in [Equivalence::Strong, Equivalence::Branching] {
            let (p0, h0) =
                partition_with_history_opts(lts, eq, opts(RefineMode::Full, Jobs::serial()));
            let aut0 = to_aut(&quotient(lts, &p0).lts);
            for jobs in [Jobs::serial(), Jobs::new(2), Jobs::new(4)] {
                for mode in [RefineMode::Full, RefineMode::Incremental] {
                    for fuse in [false, true] {
                        let tag = format!("{name} {eq:?} {jobs:?} {mode} fuse={fuse}");
                        let pre = fuse.then_some(&preds);
                        let (p, h) = partition_with_history_pre(lts, eq, opts(mode, jobs), pre);
                        assert_eq!(p0, p, "{tag}: partition differs");
                        assert_eq!(h0.rounds, h.rounds, "{tag}: history differs");
                        assert_eq!(
                            aut0,
                            to_aut(&quotient(lts, &p).lts),
                            "{tag}: .aut bytes differ"
                        );
                    }
                }
            }
        }
    }
}

/// End-to-end sweep over the verification pipeline: `verify_case_lts_pre`
/// with prebuilt reverse adjacencies (the fused path) must produce the
/// same verdict summary as the staged path, for every jobs × engine cell.
#[test]
fn fused_verdicts_match_staged_across_jobs_and_engines() {
    let cases: [(&'static str, Lts, Lts); 2] = [
        (
            "ms-queue",
            lts_of(&MsQueue::new(&[1]), 2, 2),
            lts_of(&AtomicSpec::new(SeqQueue::new(&[1])), 2, 2),
        ),
        (
            "hm-list-buggy",
            lts_of(&HmList::buggy(&[1]), 2, 2),
            lts_of(&AtomicSpec::new(SeqSet::new(&[1])), 2, 2),
        ),
    ];
    for (name, imp, spec) in &cases {
        let imp_preds = imp.predecessor_table();
        let spec_preds = spec.predecessor_table();
        let staged = {
            let cfg = VerifyConfig::new(Bound::new(2, 2));
            let r = verify_case_lts(name, cfg, imp, spec);
            (r.linearizable(), r.lock_free(), r.summary())
        };
        for jobs in [Jobs::serial(), Jobs::new(2), Jobs::new(4)] {
            for mode in [RefineMode::Full, RefineMode::Incremental] {
                let cfg = VerifyConfig::new(Bound::new(2, 2))
                    .with_jobs(jobs)
                    .with_refine(mode)
                    .with_fuse(true);
                let r = verify_case_lts_pre(
                    name,
                    cfg,
                    imp,
                    spec,
                    Some(&imp_preds),
                    Some(&spec_preds),
                );
                assert_eq!(
                    staged,
                    (r.linearizable(), r.lock_free(), r.summary()),
                    "{name} at {jobs:?} {mode}: fused verdict differs from staged"
                );
            }
        }
    }
}

/// The `PartialStats.refinement` boundary semantics: a budget that trips
/// before the first round completes reports *no* refinement progress (not
/// a phantom round 0), and a trip exactly on a round boundary reports the
/// just-completed round with its block count — consistent with the
/// unbudgeted run's history — in both engines.
#[test]
fn partial_stats_refinement_round_boundaries_are_exact() {
    let k = 40u32;
    let mut b = LtsBuilder::new();
    let states: Vec<_> = (0..k).map(|_| b.add_state()).collect();
    let a = b.intern_action(Action::call(ThreadId(1), "step", None));
    for w in states.windows(2) {
        b.add_transition(w[0], a, w[1]);
    }
    let lts = b.build(states[0]);
    let scan = lts.num_transitions(); // per-round charge of the full engine

    for mode in [RefineMode::Full, RefineMode::Incremental] {
        // Reference history of the uninterrupted run: rounds[r] is the
        // partition after round r (rounds[0] is the universal start).
        let (_, h) = partition_with_history_opts(&lts, Equivalence::Strong, opts(mode, Jobs::serial()));

        // Trip before round 1 can complete: no round was finished, so the
        // partial stats must carry no refinement note at all.
        let wd = Watchdog::new(Budget::unlimited().with_max_transitions(scan - 1));
        let err =
            partition_governed_opts(&lts, Equivalence::Strong, &wd, opts(mode, Jobs::serial()))
                .expect_err("budget under one scan must trip in round 1");
        assert_eq!(err.reason, ExhaustReason::TransitionCap, "{mode}");
        assert_eq!(
            err.partial.refinement, None,
            "{mode}: a trip before round 1 completes must not report a round"
        );

        // Trip exactly on a round boundary: the just-completed round must
        // be reported, and its block count must match the history.
        let wd = Watchdog::new(Budget::unlimited().with_max_transitions(2 * scan - 1));
        let err =
            partition_governed_opts(&lts, Equivalence::Strong, &wd, opts(mode, Jobs::serial()))
                .expect_err("the chain needs ~k rounds; two scans of budget must trip");
        assert_eq!(err.reason, ExhaustReason::TransitionCap, "{mode}");
        let (rounds, blocks) = err.partial.refinement.unwrap_or_else(|| {
            panic!("{mode}: a boundary trip after a completed round must report it")
        });
        assert!(rounds >= 1, "{mode}: at least round 1 completed");
        assert_eq!(
            blocks,
            h.rounds[rounds as usize].num_blocks() as u64,
            "{mode}: reported blocks must be the just-completed round's"
        );
    }
}

/// A visible chain long enough that refinement needs many rounds; a
/// transition budget of one round plus a little trips *mid-refinement* in
/// both engines, with the same structured error.
#[test]
fn budget_trips_mid_refinement_in_both_engines() {
    let k = 40u32;
    let mut b = LtsBuilder::new();
    let states: Vec<_> = (0..k).map(|_| b.add_state()).collect();
    let a = b.intern_action(Action::call(ThreadId(1), "step", None));
    for w in states.windows(2) {
        b.add_transition(w[0], a, w[1]);
    }
    let lts = b.build(states[0]);

    for mode in [RefineMode::Full, RefineMode::Incremental] {
        let wd = Watchdog::new(Budget::unlimited().with_max_transitions(k as usize - 1 + 2));
        let err = partition_governed_opts(
            &lts,
            Equivalence::Strong,
            &wd,
            opts(mode, Jobs::serial()),
        )
        .expect_err("the chain needs ~k rounds; one round of budget must trip");
        assert_eq!(err.stage, Stage::Bisim, "{mode}: wrong stage");
        assert_eq!(err.reason, ExhaustReason::TransitionCap, "{mode}: wrong reason");
    }
}
