//! The parallel engine is an optimization, not a semantics change: at any
//! worker count the explorer must intern the same states in the same order
//! and the refiner must produce the same partition. These tests pin that
//! down bit-for-bit — `.aut` exports and partition block structures are
//! compared as values, and a cancellation mid-fan-out must surface as the
//! same structured `Exhausted` error the sequential engine reports.

use bbverify::algorithms::{ms_queue::MsQueue, specs::SeqStack, treiber::Treiber};
use bbverify::bisim::{partition, partition_jobs, Equivalence};
use bbverify::lts::{
    random_lts, to_aut, Budget, CancelToken, ExhaustReason, ExploreLimits, ExploreOptions, Jobs,
    RandomLtsConfig, Watchdog,
};
use bbverify::sim::{
    explore_system, explore_system_with, AtomicSpec, Bound,
};

/// Sweep sizes: the full sweep takes ~45 s optimized, which debug builds
/// would stretch into many minutes, so debug runs a scaled-down version of
/// the same properties.
#[cfg(debug_assertions)]
const SEEDS: u64 = 6;
#[cfg(not(debug_assertions))]
const SEEDS: u64 = 24;
#[cfg(debug_assertions)]
const SIZE_CAP: u64 = 160;
#[cfg(not(debug_assertions))]
const SIZE_CAP: u64 = 600;

/// SplitMix64 — derives independent generator parameters from a case index.
fn splitmix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e3779b97f4a7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d049bb133111eb);
    x ^ (x >> 31)
}

/// Seeded sweep: every refinement flavour over random LTSs of varying
/// shape must yield byte-identical partition blocks at 1, 2 and 4 workers.
#[test]
fn partition_is_identical_at_any_worker_count_on_random_systems() {
    for seed in 0..SEEDS {
        let bits = splitmix(seed);
        let config = RandomLtsConfig {
            num_states: 40 + (bits % SIZE_CAP) as usize,
            num_transitions: 120 + (splitmix(bits) % (4 * SIZE_CAP)) as usize,
            num_visible_letters: 1 + (bits % 4) as usize,
            tau_percent: (bits % 90) as u8,
        };
        let lts = random_lts(seed, config);
        for eq in [
            Equivalence::Strong,
            Equivalence::Branching,
            Equivalence::BranchingDiv,
            Equivalence::Weak,
        ] {
            let reference = partition(&lts, eq);
            for jobs in [1, 2, 4] {
                let p = partition_jobs(&lts, eq, Jobs::new(jobs));
                assert_eq!(
                    reference.assignment(),
                    p.assignment(),
                    "seed {seed}, {eq:?}, {jobs} jobs: block assignment diverged"
                );
                assert_eq!(reference.num_blocks(), p.num_blocks());
            }
        }
    }
}

/// The two real algorithms of the sweep: exploration must produce the same
/// `.aut` bytes (states, transitions, order) at any worker count, and the
/// downstream partition must match too.
#[test]
fn real_algorithms_explore_bit_identically_at_any_worker_count() {
    let bound = Bound::new(2, 2);
    let limits = ExploreLimits::default();

    let treiber = Treiber::new(&[1, 2]);
    let ms = MsQueue::new(&[1]);
    let spec = AtomicSpec::new(SeqStack::new(&[1, 2]));

    let seq_treiber = explore_system(&treiber, bound, limits).unwrap();
    let seq_ms = explore_system(&ms, bound, limits).unwrap();
    let seq_spec = explore_system(&spec, bound, limits).unwrap();

    for jobs in [1, 2, 4] {
        let j = Jobs::new(jobs);
        let opts = ExploreOptions::limits(limits).with_jobs(j);
        let par_treiber = explore_system_with(&treiber, bound, &opts).unwrap();
        let par_ms = explore_system_with(&ms, bound, &opts).unwrap();
        let par_spec = explore_system_with(&spec, bound, &opts).unwrap();
        assert_eq!(to_aut(&seq_treiber), to_aut(&par_treiber), "{jobs} jobs");
        assert_eq!(to_aut(&seq_ms), to_aut(&par_ms), "{jobs} jobs");
        assert_eq!(to_aut(&seq_spec), to_aut(&par_spec), "{jobs} jobs");

        let p_seq = partition(&seq_treiber, Equivalence::Branching);
        let p_par = partition_jobs(&par_treiber, Equivalence::Branching, j);
        assert_eq!(p_seq.assignment(), p_par.assignment(), "{jobs} jobs");
    }
}

/// A transition cap tripping mid-fan-out must report the exact same partial
/// statistics as the sequential engine: the deterministic merge performs
/// the same accounting in the same order.
#[test]
fn cap_trip_reports_identical_partial_stats_at_any_worker_count() {
    let ms = MsQueue::new(&[1]);
    let bound = Bound::new(2, 2);
    let budget = Budget::unlimited().with_max_transitions(300);

    let wd_seq = Watchdog::new(budget.clone());
    let seq = explore_system_with(&ms, bound, &ExploreOptions::governed(&wd_seq).with_jobs(Jobs::new(1)))
        .expect_err("a 300-transition cap must trip on the 2-2 MS queue");
    assert_eq!(seq.reason, ExhaustReason::TransitionCap);

    for jobs in [2, 4] {
        let wd_par = Watchdog::new(budget.clone());
        let par =
            explore_system_with(&ms, bound, &ExploreOptions::governed(&wd_par).with_jobs(Jobs::new(jobs)))
                .expect_err("the same cap must trip at any worker count");
        assert_eq!(par.reason, seq.reason, "{jobs} jobs");
        assert_eq!(par.stage, seq.stage, "{jobs} jobs");
        assert_eq!(
            par.partial.transitions, seq.partial.transitions,
            "{jobs} jobs"
        );
        assert_eq!(par.partial.states, seq.partial.states, "{jobs} jobs");
    }
}

/// Cancelling before the fan-out starts: the parallel explorer must abort
/// promptly with `Cancelled` and sane (small, consistent) partial stats
/// rather than running the exploration to completion.
#[test]
fn cancellation_mid_parallel_exploration_is_prompt_and_structured() {
    let ms = MsQueue::new(&[1]);
    let bound = Bound::new(2, 2);
    let token = CancelToken::new();
    token.cancel();
    let budget = Budget::unlimited().with_cancel_token(token);
    let wd = Watchdog::new(budget);
    let err = explore_system_with(&ms, bound, &ExploreOptions::governed(&wd).with_jobs(Jobs::new(4)))
        .expect_err("a pre-cancelled token must abort the exploration");
    assert_eq!(err.reason, ExhaustReason::Cancelled);
    let full = explore_system(&ms, bound, ExploreLimits::default()).unwrap();
    assert!(
        err.partial.states < full.num_states(),
        "cancellation must abort before the full state space is built \
         ({} seen of {})",
        err.partial.states,
        full.num_states()
    );
}
