//! Result-cache soundness: a warm `--cache` replay must be byte-identical
//! to the cold run (stdout, exit code, and artifacts), corruption of any
//! entry must degrade to recomputation without a panic or a wrong answer,
//! and the `bbv cache` admin subcommands must report and repair the store.

use std::path::PathBuf;
use std::process::{Command, Output};
use std::time::Instant;

fn bbv(args: &[&str], envs: &[(&str, &str)]) -> Output {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_bbv"));
    cmd.args(args);
    for (k, v) in envs {
        cmd.env(k, v);
    }
    cmd.output().expect("bbv runs")
}

fn stdout_of(out: &Output) -> String {
    String::from_utf8_lossy(&out.stdout).into_owned()
}

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("bbv-cache-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Backdates `path`'s mtime past the gc grace window, simulating a file
/// whose writer is long dead (vs. a concurrent writer's in-flight state).
fn age_past_grace(path: &std::path::Path) {
    let f = std::fs::File::options().write(true).open(path).unwrap();
    f.set_modified(std::time::SystemTime::now() - bb_persist::TEMP_GRACE * 2)
        .unwrap();
}

fn entry_files(dir: &std::path::Path) -> Vec<PathBuf> {
    let mut files: Vec<PathBuf> = std::fs::read_dir(dir)
        .into_iter()
        .flatten()
        .flatten()
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|x| x == "bbc"))
        .collect();
    files.sort();
    files
}

#[test]
fn warm_verify_replays_byte_identically_and_faster() {
    let dir = tmp_dir("warm");
    let args = [
        "verify", "ms-queue", "--threads", "2", "--ops", "2",
        "--cache", dir.to_str().unwrap(),
    ];
    let t0 = Instant::now();
    let cold = bbv(&args, &[]);
    let cold_time = t0.elapsed();
    assert_eq!(cold.status.code(), Some(0), "{}", String::from_utf8_lossy(&cold.stderr));
    assert_eq!(entry_files(&dir).len(), 1, "one conclusive verdict, one entry");

    let t1 = Instant::now();
    let warm = bbv(&args, &[]);
    let warm_time = t1.elapsed();
    assert_eq!(warm.status.code(), Some(0));
    assert_eq!(stdout_of(&warm), stdout_of(&cold), "cache hit must replay stdout verbatim");

    // A hit does no exploration or refinement; it should beat a full
    // verification by a wide margin. Only assert when the cold run was slow
    // enough for the comparison to be noise-free.
    if cold_time.as_millis() > 400 {
        assert!(
            warm_time * 2 < cold_time,
            "warm {warm_time:?} should be well under cold {cold_time:?}"
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn refuted_verdicts_are_cached_with_their_exit_code() {
    let dir = tmp_dir("refuted");
    let args = [
        "verify", "hm-list-buggy", "--threads", "2", "--ops", "2", "--domain", "1",
        "--cache", dir.to_str().unwrap(),
    ];
    let cold = bbv(&args, &[]);
    assert_eq!(cold.status.code(), Some(1));
    let warm = bbv(&args, &[]);
    assert_eq!(warm.status.code(), Some(1), "a hit must replay the refuted exit code");
    assert_eq!(stdout_of(&warm), stdout_of(&cold));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn inconclusive_runs_are_never_cached() {
    let dir = tmp_dir("inconclusive");
    let args = [
        "verify", "ms-queue", "--threads", "2", "--ops", "2",
        "--max-states", "200", "--no-fallback",
        "--cache", dir.to_str().unwrap(),
    ];
    let run = bbv(&args, &[]);
    assert_eq!(run.status.code(), Some(2));
    assert_eq!(
        entry_files(&dir).len(),
        0,
        "budget-dependent inconclusive outcomes must not be memoized"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn corrupt_entry_recomputes_then_self_heals() {
    let dir = tmp_dir("corrupt");
    let args = [
        "verify", "treiber", "--threads", "2", "--ops", "1", "--domain", "1",
        "--cache", dir.to_str().unwrap(),
    ];
    let cold = bbv(&args, &[]);
    assert_eq!(cold.status.code(), Some(0));
    let files = entry_files(&dir);
    assert_eq!(files.len(), 1);

    // Flip a byte in the middle of the entry: checksum breaks.
    let mut bytes = std::fs::read(&files[0]).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0xFF;
    std::fs::write(&files[0], &bytes).unwrap();
    let verify = bbv(&["cache", "verify", dir.to_str().unwrap()], &[]);
    assert_eq!(verify.status.code(), Some(1), "cache verify must flag the corrupt entry");

    // The corrupted entry misses; the run recomputes the same answer and
    // re-stores an intact entry.
    let recomputed = bbv(&args, &[]);
    assert_eq!(recomputed.status.code(), Some(0), "corruption must never crash a run");
    assert_eq!(stdout_of(&recomputed), stdout_of(&cold));
    let verify = bbv(&["cache", "verify", dir.to_str().unwrap()], &[]);
    assert_eq!(verify.status.code(), Some(0), "the recompute must heal the entry");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn cache_read_fault_degrades_to_recompute() {
    let dir = tmp_dir("fault");
    let args = [
        "verify", "treiber", "--threads", "2", "--ops", "1", "--domain", "1",
        "--cache", dir.to_str().unwrap(),
    ];
    let cold = bbv(&args, &[]);
    assert_eq!(cold.status.code(), Some(0));

    // The fault sabotages the (intact) entry read: the run must miss,
    // recompute, and still answer identically.
    let faulted = bbv(&args, &[("BB_FAULT", "cache-read:1")]);
    assert_eq!(faulted.status.code(), Some(0));
    assert_eq!(stdout_of(&faulted), stdout_of(&cold));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn quotient_artifacts_replay_byte_identically_from_cache() {
    let dir = tmp_dir("quotient");
    let aut1 = std::env::temp_dir().join(format!("bbv-q1-{}.aut", std::process::id()));
    let aut2 = std::env::temp_dir().join(format!("bbv-q2-{}.aut", std::process::id()));
    let common = [
        "quotient", "treiber", "--threads", "2", "--ops", "1", "--domain", "1",
        "--cache", dir.to_str().unwrap(),
    ];
    let mut args1: Vec<&str> = common.to_vec();
    args1.extend(["--aut", aut1.to_str().unwrap()]);
    let cold = bbv(&args1, &[]);
    assert_eq!(cold.status.code(), Some(0), "{}", String::from_utf8_lossy(&cold.stderr));

    // The hit writes the memoized .aut bytes to *this* invocation's path.
    let mut args2: Vec<&str> = common.to_vec();
    args2.extend(["--aut", aut2.to_str().unwrap()]);
    let warm = bbv(&args2, &[]);
    assert_eq!(warm.status.code(), Some(0));
    let a1 = std::fs::read(&aut1).expect("cold .aut written");
    let a2 = std::fs::read(&aut2).expect("warm .aut written from cache");
    assert_eq!(a1, a2, "cached quotient artifact must be byte-identical");
    let _ = std::fs::remove_file(&aut1);
    let _ = std::fs::remove_file(&aut2);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn distinct_configurations_use_distinct_entries() {
    let dir = tmp_dir("keys");
    let base = [
        "verify", "treiber", "--threads", "2", "--ops", "1", "--domain", "1",
        "--cache", dir.to_str().unwrap(),
    ];
    assert_eq!(bbv(&base, &[]).status.code(), Some(0));
    assert_eq!(entry_files(&dir).len(), 1);

    // A different reduce mode is a different result: new entry.
    let mut reduced: Vec<&str> = base.to_vec();
    reduced.extend(["--reduce", "sym"]);
    assert_eq!(bbv(&reduced, &[]).status.code(), Some(0));
    assert_eq!(entry_files(&dir).len(), 2);

    // A different --jobs is the *same* result: must hit entry one.
    let mut jobs: Vec<&str> = base.to_vec();
    jobs.extend(["--jobs", "4"]);
    assert_eq!(bbv(&jobs, &[]).status.code(), Some(0));
    assert_eq!(entry_files(&dir).len(), 2, "--jobs must not be part of the cache key");
    let _ = std::fs::remove_dir_all(&dir);
}

/// The gc-vs-writer interleaving, replayed deterministically: a sabotaged
/// read (`BB_FAULT=cache-read`) makes a run judge an *intact* entry corrupt
/// and rewrite it; a gc interleaved anywhere around that rewrite must never
/// delete the entry (its mtime is inside the grace window) nor the writer's
/// pending temp file.
#[test]
fn gc_interleaved_with_rewriting_run_never_deletes_live_state() {
    let dir = tmp_dir("gc-race");
    let args = [
        "verify", "treiber", "--threads", "2", "--ops", "1", "--domain", "1",
        "--cache", dir.to_str().unwrap(),
    ];
    let cold = bbv(&args, &[]);
    assert_eq!(cold.status.code(), Some(0));
    let files = entry_files(&dir);
    assert_eq!(files.len(), 1);

    // Interleaving step 1: a run whose cache read is sabotaged misses and
    // rewrites the entry — the slot now carries a just-renamed file.
    let rewrite = bbv(&args, &[("BB_FAULT", "cache-read:1")]);
    assert_eq!(rewrite.status.code(), Some(0));
    assert_eq!(stdout_of(&rewrite), stdout_of(&cold));

    // Interleaving step 2: another writer is mid-store (temp file written,
    // rename pending — the `checkpoint-write` crash window).
    let pending = dir.join(".0123456789abcdef.bbc.tmp.424242");
    std::fs::write(&pending, b"half-written entry").unwrap();

    // Interleaving step 3: gc runs. It must spare both the just-renamed
    // entry and the pending temp file.
    let gc = bbv(&["cache", "gc", dir.to_str().unwrap()], &[]);
    assert_eq!(gc.status.code(), Some(0));
    assert!(stdout_of(&gc).contains("removed : 0"), "{}", stdout_of(&gc));
    assert!(pending.exists(), "gc deleted a live writer's temp file");
    assert_eq!(entry_files(&dir), files, "gc deleted a just-renamed entry");

    // The entry still replays byte-identically after the gc.
    let warm = bbv(&args, &[]);
    assert_eq!(warm.status.code(), Some(0));
    assert_eq!(stdout_of(&warm), stdout_of(&cold));

    // Epilogue: once the temp file ages out (its writer is dead), gc
    // reclaims it while still keeping the intact entry.
    age_past_grace(&pending);
    let gc = bbv(&["cache", "gc", dir.to_str().unwrap()], &[]);
    assert_eq!(gc.status.code(), Some(0));
    assert!(!pending.exists(), "aged temp residue must be swept");
    assert_eq!(entry_files(&dir), files);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn cache_admin_stats_verify_gc_roundtrip() {
    let dir = tmp_dir("admin");
    let args = [
        "verify", "treiber", "--threads", "2", "--ops", "1", "--domain", "1",
        "--cache", dir.to_str().unwrap(),
    ];
    assert_eq!(bbv(&args, &[]).status.code(), Some(0));
    std::fs::write(dir.join("00000000deadbeef.bbc"), b"garbage").unwrap();
    // Age it past the gc grace window: a *fresh* unreadable file is treated
    // as a concurrent writer's in-flight state and spared.
    age_past_grace(&dir.join("00000000deadbeef.bbc"));

    let stats = bbv(&["cache", "stats", dir.to_str().unwrap()], &[]);
    assert_eq!(stats.status.code(), Some(0));
    let text = stdout_of(&stats);
    assert!(text.contains("entries : 1"), "{text}");
    assert!(text.contains("corrupt : 1"), "{text}");

    let verify = bbv(&["cache", "verify", dir.to_str().unwrap()], &[]);
    assert_eq!(verify.status.code(), Some(1));
    assert!(stdout_of(&verify).contains("corrupt : 1"));

    let gc = bbv(&["cache", "gc", dir.to_str().unwrap()], &[]);
    assert_eq!(gc.status.code(), Some(0));
    assert!(stdout_of(&gc).contains("removed : 1"));

    let verify = bbv(&["cache", "verify", dir.to_str().unwrap()], &[]);
    assert_eq!(verify.status.code(), Some(0), "gc must leave only intact entries");
    assert!(stdout_of(&verify).contains("intact  : 1"));
    let _ = std::fs::remove_dir_all(&dir);
}
