//! Integration tests for Section VII / Table VII: comparing weak and
//! branching bisimilarity between object systems `Δ` and their one-block
//! specifications `Θsp`.
//!
//! Per Table VII, only the Treiber stack is (weakly and branching)
//! bisimilar to its specification; algorithms with non-fixed linearization
//! points are not. And per the Fig. 6 discussion, weak bisimulation can
//! relate states across an effectful linearization-point step that
//! branching bisimulation separates.

use bbverify::algorithms::{
    ccas::Ccas, hsy_stack::HsyStack, hw_queue::HwQueue, ms_queue::MsQueue, specs::*,
    treiber::Treiber,
};
use bbverify::bisim::{bisimilar, partition, Equivalence};
use bbverify::lts::{ExploreLimits, Lts};
use bbverify::sim::{explore_system, AtomicSpec, Bound, ObjectAlgorithm};

fn lts_of<A: ObjectAlgorithm>(alg: &A, threads: u8, ops: u32) -> Lts {
    explore_system(alg, Bound::new(threads, ops), ExploreLimits::default()).unwrap()
}

#[test]
fn treiber_is_bisimilar_to_its_spec() {
    // Table VII row "2-2 Treiber": ~w Yes, ≈ Yes.
    let imp = lts_of(&Treiber::new(&[1]), 2, 2);
    let spec = lts_of(&AtomicSpec::new(SeqStack::new(&[1])), 2, 2);
    assert!(bisimilar(&imp, &spec, Equivalence::Branching), "Treiber ≈ Θsp");
    assert!(bisimilar(&imp, &spec, Equivalence::Weak), "Treiber ~w Θsp");
}

#[test]
fn ms_queue_is_not_bisimilar_to_its_spec() {
    // Table VII rows for MS: both No. (At 2-2 the implementation is still
    // bisimilar to the one-block spec; the non-fixed-LP structure becomes
    // observable from 2-3 on — the paper's instance is 2-5.)
    let imp = lts_of(&MsQueue::new(&[1]), 2, 3);
    let spec = lts_of(&AtomicSpec::new(SeqQueue::new(&[1])), 2, 3);
    assert!(!bisimilar(&imp, &spec, Equivalence::Branching));
    assert!(!bisimilar(&imp, &spec, Equivalence::Weak));
}

#[test]
fn hw_queue_is_not_bisimilar_to_its_spec() {
    let imp = lts_of(&HwQueue::for_bound(&[1], 2, 2), 2, 2);
    let spec = lts_of(&AtomicSpec::new(SeqQueue::new(&[1])), 2, 2);
    assert!(!bisimilar(&imp, &spec, Equivalence::Branching));
    assert!(!bisimilar(&imp, &spec, Equivalence::Weak));
}

#[test]
fn ccas_is_not_bisimilar_to_its_spec() {
    let imp = lts_of(&Ccas::new(2), 2, 2);
    let spec = lts_of(&AtomicSpec::new(SeqCcas::new(2)), 2, 2);
    assert!(!bisimilar(&imp, &spec, Equivalence::Branching));
    assert!(!bisimilar(&imp, &spec, Equivalence::Weak));
}

/// The HSY stack at 3-2 is the sharpest instance of the Section VII
/// argument: *weak* bisimulation relates the implementation to its
/// one-block specification — failing to perceive the effect of the
/// elimination-layer linearization points — while *branching* bisimulation
/// separates them.
#[test]
#[cfg_attr(debug_assertions, ignore = "≈1 min in debug; run with --release")]
fn hsy_weak_equates_but_branching_separates() {
    let imp = lts_of(&HsyStack::new(&[1]), 3, 2);
    let spec = lts_of(&AtomicSpec::new(SeqStack::new(&[1])), 3, 2);
    assert!(bisimilar(&imp, &spec, Equivalence::Weak), "HSY ~w Θsp at 3-2");
    assert!(
        !bisimilar(&imp, &spec, Equivalence::Branching),
        "HSY ≉ Θsp at 3-2"
    );
}

/// The Section VII phenomenon at state level: weak bisimulation relates
/// some states across a τ-step that branching bisimulation separates
/// (Fig. 6: `s1 ~w s3` but `s1 ≉ s3`).
#[test]
fn weak_relates_states_that_branching_separates() {
    // Search over the MS-queue state space for a τ-edge with weak-equal
    // but branching-different endpoints. (Needs the interleaving depth of
    // three threads, like the ≡₁∧≢₂ phenomenon — weak bisimilarity
    // coincides with ≡... the hierarchy collapses at 2 threads here, so we
    // use the CCAS instance where the phenomenon appears at 2-3.)
    let lts = lts_of(&Ccas::new(2), 2, 3);
    let pw = partition(&lts, Equivalence::Weak);
    let pb = partition(&lts, Equivalence::Branching);
    assert!(
        pb.num_blocks() >= pw.num_blocks(),
        "branching refines weak on this instance"
    );
    let mut found = false;
    for (src, act, dst) in lts.iter_transitions() {
        if lts.is_visible(act) {
            continue;
        }
        if pw.same_block(src, dst) && !pb.same_block(src, dst) {
            found = true;
            break;
        }
    }
    assert!(
        found,
        "expected a τ-edge related by ~w but separated by ≈ (Fig. 6 shape)"
    );
}

/// Weak and branching bisimilarity coincide with the specification verdicts
/// on every Table VII instance we model — but the partitions they induce
/// differ in general (previous test), which is exactly why the paper
/// argues for branching bisimulation.
#[test]
fn verdicts_match_on_table7_instances() {
    let checks: Vec<(Lts, Lts)> = vec![
        (
            lts_of(&Treiber::new(&[1]), 2, 1),
            lts_of(&AtomicSpec::new(SeqStack::new(&[1])), 2, 1),
        ),
        (
            lts_of(&MsQueue::new(&[1]), 2, 1),
            lts_of(&AtomicSpec::new(SeqQueue::new(&[1])), 2, 1),
        ),
    ];
    for (imp, spec) in &checks {
        assert_eq!(
            bisimilar(imp, spec, Equivalence::Branching),
            bisimilar(imp, spec, Equivalence::Weak),
        );
    }
}
