//! Integration test reproducing Table I: the k-trace classification of
//! τ-transitions. Algorithms with non-fixed linearization points exhibit
//! τ-edges that are 1-trace equivalent but 2-trace inequivalent; simple
//! fixed-LP algorithms only exhibit 1-trace-inequivalent edges.
//!
//! The `≡₁ ∧ ≢₂` phenomenon needs enough concurrent operations to build the
//! branching potential of Fig. 6 (the paper's own instance uses 2 threads ×
//! 5 operations with three distinct values); the smallest configurations we
//! found are HW 3-1, CCAS/RDCSS 2-3 and MS/DGLM 3-2. The two largest cases
//! are ignored in debug builds — run `cargo test --release` to include
//! them.

use bbverify::algorithms::{
    ccas::Ccas, dglm_queue::DglmQueue, hw_queue::HwQueue, ms_queue::MsQueue, newcas::NewCas,
    rdcss::Rdcss, treiber::Treiber,
};
use bbverify::ktrace::{classify_tau_edges, KtraceLimits};
use bbverify::lts::{ExploreLimits, Lts};
use bbverify::sim::{explore_system, Bound, ObjectAlgorithm};

fn lts_of<A: ObjectAlgorithm>(alg: &A, threads: u8, ops: u32) -> Lts {
    explore_system(alg, Bound::new(threads, ops), ExploreLimits::default()).unwrap()
}

fn classify(lts: &Lts) -> (bool, bool) {
    let c = classify_tau_edges(lts, KtraceLimits::default()).unwrap();
    (c.has_eq1_neq2(), c.has_neq1())
}

#[test]
#[cfg_attr(debug_assertions, ignore = "≈5 s in release; run with --release")]
fn table1_ms_queue_has_higher_inequivalence() {
    let lts = lts_of(&MsQueue::new(&[1]), 3, 2);
    let (eq1_neq2, neq1) = classify(&lts);
    assert!(neq1, "MS queue has effectful τ-steps");
    assert!(eq1_neq2, "MS queue exhibits ≡₁∧≢₂ (non-fixed LPs, Fig. 6)");
}

#[test]
#[cfg_attr(debug_assertions, ignore = "≈4 s in release; run with --release")]
fn table1_dglm_queue_has_higher_inequivalence() {
    let lts = lts_of(&DglmQueue::new(&[1]), 3, 2);
    let (eq1_neq2, neq1) = classify(&lts);
    assert!(neq1);
    assert!(eq1_neq2, "DGLM queue exhibits ≡₁∧≢₂");
}

#[test]
fn table1_hw_queue_has_higher_inequivalence() {
    let lts = lts_of(&HwQueue::for_bound(&[1, 2], 3, 1), 3, 1);
    let (eq1_neq2, neq1) = classify(&lts);
    assert!(neq1);
    assert!(eq1_neq2, "HW queue exhibits ≡₁∧≢₂");
}

#[test]
fn table1_ccas_has_higher_inequivalence() {
    let lts = lts_of(&Ccas::new(2), 2, 3);
    let (eq1_neq2, neq1) = classify(&lts);
    assert!(neq1);
    assert!(eq1_neq2, "CCAS exhibits ≡₁∧≢₂");
}

#[test]
fn table1_rdcss_has_higher_inequivalence() {
    let lts = lts_of(&Rdcss::new(2), 2, 3);
    let (eq1_neq2, neq1) = classify(&lts);
    assert!(neq1);
    assert!(eq1_neq2, "RDCSS exhibits ≡₁∧≢₂");
}

#[test]
fn table1_treiber_only_first_level() {
    for (th, op) in [(2, 2), (2, 3), (3, 1)] {
        let lts = lts_of(&Treiber::new(&[1]), th, op);
        let (eq1_neq2, neq1) = classify(&lts);
        assert!(neq1, "Treiber has effectful τ-steps (the CAS LPs)");
        assert!(!eq1_neq2, "fixed LPs: no ≡₁∧≢₂ edges at {th}-{op}");
    }
}

#[test]
fn table1_newcas_only_first_level() {
    for (th, op) in [(2, 2), (2, 3), (3, 1)] {
        let lts = lts_of(&NewCas::new(2), th, op);
        let (eq1_neq2, neq1) = classify(&lts);
        assert!(neq1);
        assert!(!eq1_neq2, "fixed LPs: no ≡₁∧≢₂ edges at {th}-{op}");
    }
}
