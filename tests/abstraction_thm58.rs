//! Theorem 5.8: lock-freedom via hand-written abstract programs
//! (Section VI-D). The concrete MS/DGLM queues must be divergence-sensitive
//! branching bisimilar to the abstract queue of Fig. 8, which is itself
//! lock-free — so lock-freedom transfers.

use bbverify::algorithms::abstracts::{AbsCcas, AbsQueue, AbsRdcss};
use bbverify::algorithms::ccas::Ccas;
use bbverify::algorithms::dglm_queue::DglmQueue;
use bbverify::algorithms::ms_queue::MsQueue;
use bbverify::algorithms::rdcss::Rdcss;
use bbverify::algorithms::specs::SeqStack;
use bbverify::algorithms::treiber::Treiber;
use bbverify::core::verify_lock_freedom_via_abstraction;
use bbverify::lts::ExploreLimits;
use bbverify::sim::{explore_system, AtomicSpec, Bound};

fn lims() -> ExploreLimits {
    ExploreLimits::default()
}

#[test]
fn ms_queue_div_bisimilar_to_abstract_queue() {
    for bound in [Bound::new(2, 1), Bound::new(2, 2), Bound::new(2, 3)] {
        let imp = explore_system(&MsQueue::new(&[1]), bound, lims()).unwrap();
        let abs = explore_system(&AbsQueue::new(&[1]), bound, lims()).unwrap();
        let r = verify_lock_freedom_via_abstraction(&imp, &abs);
        assert!(
            r.div_bisimilar,
            "MS ≈div AbsQueue must hold at {}-{}",
            bound.threads, bound.ops_per_thread
        );
        assert!(r.abstract_lock_free);
        assert_eq!(r.concrete_lock_free, Some(true));
        assert!(r.abstract_states < r.impl_states);
    }
}

#[test]
fn dglm_queue_div_bisimilar_to_abstract_queue() {
    let bound = Bound::new(2, 2);
    let imp = explore_system(&DglmQueue::new(&[1]), bound, lims()).unwrap();
    let abs = explore_system(&AbsQueue::new(&[1]), bound, lims()).unwrap();
    let r = verify_lock_freedom_via_abstraction(&imp, &abs);
    assert!(r.div_bisimilar, "DGLM ≈div AbsQueue (same abstract object)");
    assert_eq!(r.concrete_lock_free, Some(true));
}

#[test]
fn ms_and_dglm_share_the_same_quotient() {
    // Table VI: MS and DGLM map to the same quotient (Δ*≈). Equivalent
    // claim: MS ≈ DGLM.
    let bound = Bound::new(2, 2);
    let ms = explore_system(&MsQueue::new(&[1]), bound, lims()).unwrap();
    let dglm = explore_system(&DglmQueue::new(&[1]), bound, lims()).unwrap();
    assert!(bbverify::bisim::bisimilar(
        &ms,
        &dglm,
        bbverify::bisim::Equivalence::BranchingDiv
    ));
}

#[test]
fn ccas_div_bisimilar_to_abstract_ccas() {
    // The helper-collapsed abstract CCAS matches the concrete object at
    // these instances; at deeper bounds (2-3+) the collapse becomes
    // observable and the Theorem 5.9 route applies instead (see
    // EXPERIMENTS.md).
    let bound = Bound::new(2, 2);
    let imp = explore_system(&Ccas::new(2), bound, lims()).unwrap();
    let abs = explore_system(&AbsCcas::new(2), bound, lims()).unwrap();
    let r = verify_lock_freedom_via_abstraction(&imp, &abs);
    assert!(r.div_bisimilar, "CCAS ≈div AbsCcas");
    assert_eq!(r.concrete_lock_free, Some(true));
}

#[test]
fn rdcss_div_bisimilar_to_abstract_rdcss() {
    let bound = Bound::new(2, 2);
    let imp = explore_system(&Rdcss::new(2), bound, lims()).unwrap();
    let abs = explore_system(&AbsRdcss::new(2), bound, lims()).unwrap();
    let r = verify_lock_freedom_via_abstraction(&imp, &abs);
    assert!(r.div_bisimilar, "RDCSS ≈div AbsRdcss");
    assert_eq!(r.concrete_lock_free, Some(true));
}

#[test]
fn fixed_lp_algorithm_abstract_is_its_spec() {
    // Section VI-C: for static LPs the abstract program coincides with the
    // specification. Treiber ≈div stack spec.
    let bound = Bound::new(2, 2);
    let imp = explore_system(&Treiber::new(&[1]), bound, lims()).unwrap();
    let abs = explore_system(&AtomicSpec::new(SeqStack::new(&[1])), bound, lims()).unwrap();
    let r = verify_lock_freedom_via_abstraction(&imp, &abs);
    assert!(r.div_bisimilar);
    assert_eq!(r.concrete_lock_free, Some(true));
}
