//! Graceful degradation under resource budgets.
//!
//! Two contracts of the resource-governance layer (DESIGN.md):
//!
//! 1. a budget-exhausted stage returns a structured [`Exhausted`] error
//!    naming the stage and the tripped resource — never a panic, and never
//!    a (possibly wrong) verdict — and
//! 2. verdicts are budget-independent: any governed run that *does*
//!    complete agrees with the unbudgeted run, so budgets only ever trade
//!    answers for `Inconclusive`, not for wrong answers.
//!
//! The property sweep reuses the seeded SplitMix64 harness of
//! `tests/properties.rs` (the `proptest` crate is unavailable here).

use bbverify::algorithms::{ms_queue::MsQueue, specs::SeqQueue, treiber::Treiber};
use bbverify::bisim::{
    bisimilar, bisimilar_governed, divergence_witness, divergence_witness_governed, partition,
    partition_governed, Equivalence,
};
use bbverify::core::{verify_case_governed, GovernedConfig};
use bbverify::lts::{
    random_lts, Budget, ExhaustReason, Lts, RandomLtsConfig, Stage, Watchdog,
};
use bbverify::ltl::{check, check_governed, lock_freedom};
use bbverify::refine::{trace_refines, trace_refines_governed, RefineOptions};
use bbverify::lts::ExploreOptions;
use bbverify::sim::{explore_system_with, AtomicSpec, Bound};
use std::time::Duration;

fn tiny(budget: Budget) -> Watchdog {
    Watchdog::new(budget)
}

fn msq_lts() -> Lts {
    explore_system_with(
        &MsQueue::new(&[1]),
        Bound::new(2, 2),
        &ExploreOptions::governed(&Watchdog::unlimited()),
    )
        .expect("unbudgeted exploration fits")
}

// ------------------------------------------------- per-stage exhaustion

#[test]
fn explore_exhausts_cleanly_on_state_cap() {
    let wd = tiny(Budget::unlimited().with_max_states(10));
    let err = explore_system_with(&MsQueue::new(&[1]), Bound::new(2, 2), &ExploreOptions::governed(&wd)).unwrap_err();
    assert_eq!(err.stage, Stage::Explore);
    assert_eq!(err.reason, ExhaustReason::StateCap);
    assert!(err.partial.states >= 10);
}

#[test]
fn explore_exhausts_cleanly_on_expired_deadline() {
    let wd = tiny(Budget::unlimited().with_deadline(Duration::ZERO));
    let err = explore_system_with(&MsQueue::new(&[1]), Bound::new(2, 2), &ExploreOptions::governed(&wd)).unwrap_err();
    assert_eq!(err.stage, Stage::Explore);
    assert_eq!(err.reason, ExhaustReason::Deadline);
}

#[test]
fn bisim_refinement_exhausts_cleanly() {
    let lts = msq_lts();
    let wd = tiny(Budget::unlimited().with_max_transitions(5));
    let err = partition_governed(&lts, Equivalence::Branching, &wd).unwrap_err();
    assert_eq!(err.stage, Stage::Bisim);
    assert_eq!(err.reason, ExhaustReason::TransitionCap);

    let wd = tiny(Budget::unlimited().with_max_memory_bytes(64));
    let err = partition_governed(&lts, Equivalence::Branching, &wd).unwrap_err();
    assert_eq!(err.stage, Stage::Bisim);
    assert_eq!(err.reason, ExhaustReason::Memory);
}

#[test]
fn divergence_search_exhausts_cleanly() {
    let lts = msq_lts();
    let wd = tiny(Budget::unlimited().with_max_states(3));
    let err = divergence_witness_governed(&lts, &wd).unwrap_err();
    assert_eq!(err.stage, Stage::Divergence);
    assert_eq!(err.reason, ExhaustReason::StateCap);
}

#[test]
fn trace_refinement_exhausts_cleanly() {
    let imp = msq_lts();
    let spec = explore_system_with(
        &AtomicSpec::new(SeqQueue::new(&[1])),
        Bound::new(2, 2),
        &ExploreOptions::governed(&Watchdog::unlimited()),
    )
    .unwrap();
    let wd = tiny(Budget::unlimited().with_max_transitions(4));
    let err =
        trace_refines_governed(&imp, &spec, RefineOptions::default(), &wd).unwrap_err();
    assert_eq!(err.stage, Stage::Refine);
    assert_eq!(err.reason, ExhaustReason::TransitionCap);
}

#[test]
fn ltl_check_exhausts_cleanly() {
    let lts = msq_lts();
    let wd = tiny(Budget::unlimited().with_max_states(3));
    let err = check_governed(&lts, &lock_freedom(), &wd).unwrap_err();
    assert_eq!(err.stage, Stage::Ltl);
    assert_eq!(err.reason, ExhaustReason::StateCap);
}

#[test]
fn cancellation_trips_every_stage() {
    let lts = msq_lts();
    for make in [
        (|lts: &Lts, wd: &Watchdog| partition_governed(lts, Equivalence::Branching, wd).err())
            as fn(&Lts, &Watchdog) -> _,
        |lts, wd| divergence_witness_governed(lts, wd).err(),
        |lts, wd| check_governed(lts, &lock_freedom(), wd).err(),
    ] {
        let wd = Watchdog::unlimited();
        wd.cancel();
        let err = make(&lts, &wd).expect("cancelled run must not complete");
        assert_eq!(err.reason, ExhaustReason::Cancelled);
    }
}

// ------------------------------------------- case-level graceful degradation

#[test]
fn tiny_budget_case_is_inconclusive_never_a_verdict() {
    let budget = Budget::unlimited().with_max_states(10);
    let config = GovernedConfig::new(Bound::new(2, 2), budget).no_fallback();
    let report = verify_case_governed(
        &MsQueue::new(&[1]),
        &AtomicSpec::new(SeqQueue::new(&[1])),
        &config,
    );
    assert!(report.overall().is_inconclusive(), "{}", report.render());
    assert!(!report.linearizability.is_proved());
    assert!(!report.linearizability.is_refuted());
    // The failed attempt records which stage ran out.
    let failure = report.attempts[0].failure.as_ref().expect("attempt failed");
    assert_eq!(failure.stage, Stage::Explore);
}

#[test]
fn generous_budget_agrees_with_unbudgeted_case_verdict() {
    let budget = Budget::unlimited()
        .with_deadline(Duration::from_secs(120))
        .with_max_states(1_000_000);
    let config = GovernedConfig::new(Bound::new(2, 1), budget);
    let governed = verify_case_governed(
        &Treiber::new(&[1]),
        &AtomicSpec::new(bbverify::algorithms::specs::SeqStack::new(&[1])),
        &config,
    );
    assert!(governed.overall().is_proved(), "{}", governed.render());

    let unbudgeted = verify_case_governed(
        &Treiber::new(&[1]),
        &AtomicSpec::new(bbverify::algorithms::specs::SeqStack::new(&[1])),
        &GovernedConfig::new(Bound::new(2, 1), Budget::unlimited()),
    );
    assert_eq!(governed.overall(), unbudgeted.overall());
}

// ------------------------------------------------------- property sweep

const CASES: u64 = 48;

fn splitmix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e3779b97f4a7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d049bb133111eb);
    x ^ (x >> 31)
}

fn arb_lts(case: u64) -> Lts {
    let r0 = splitmix(case);
    let r1 = splitmix(r0);
    let r2 = splitmix(r1);
    let r3 = splitmix(r2);
    let r4 = splitmix(r3);
    random_lts(
        r0 % 10_000,
        RandomLtsConfig {
            num_states: 2 + (r1 % 23) as usize,
            num_transitions: 1 + (r2 % 49) as usize,
            num_visible_letters: 1 + (r3 % 3) as usize,
            tau_percent: (r4 % 90) as u8,
        },
    )
}

/// A tiny budget derived from the case index. Small enough to trip on most
/// systems, large enough that some runs complete — both paths are checked.
fn arb_budget(case: u64) -> Budget {
    let r = splitmix(case ^ 0xb07);
    Budget::unlimited()
        .with_max_states(1 + (r % 40) as usize)
        .with_max_transitions(1 + (splitmix(r) % 200) as usize)
}

/// Soundness: a governed run either agrees with the unbudgeted verdict or
/// returns `Exhausted` — a budget can never flip an answer.
#[test]
fn budgeted_runs_never_report_a_wrong_verdict() {
    for case in 0..CASES {
        let a = arb_lts(case);
        let b = arb_lts(case + 100_000);
        let wd = Watchdog::new(arb_budget(case));

        if let Ok(p) = partition_governed(&a, Equivalence::Branching, &wd) {
            let full = partition(&a, Equivalence::Branching);
            assert_eq!(p.num_blocks(), full.num_blocks(), "case {case}");
        }
        let wd = Watchdog::new(arb_budget(case));
        if let Ok(eq) = bisimilar_governed(&a, &b, Equivalence::Branching, &wd) {
            assert_eq!(eq, bisimilar(&a, &b, Equivalence::Branching), "case {case}");
        }
        let wd = Watchdog::new(arb_budget(case));
        if let Ok(r) = trace_refines_governed(&a, &b, RefineOptions::default(), &wd) {
            assert_eq!(r.holds, trace_refines(&a, &b).holds, "case {case}");
        }
        let wd = Watchdog::new(arb_budget(case));
        if let Ok(r) = check_governed(&a, &lock_freedom(), &wd) {
            assert_eq!(r.holds, check(&a, &lock_freedom()).holds, "case {case}");
        }
        let wd = Watchdog::new(arb_budget(case));
        if let Ok(w) = divergence_witness_governed(&a, &wd) {
            assert_eq!(w.is_some(), divergence_witness(&a).is_some(), "case {case}");
        }
    }
}

/// Monotonicity: a generous budget always completes on these small systems
/// and agrees with the unbudgeted verdict.
#[test]
fn generous_budget_agrees_with_unbudgeted_primitives() {
    for case in 0..CASES {
        let a = arb_lts(case);
        let b = arb_lts(case + 100_000);
        let generous =
            || Watchdog::new(Budget::unlimited().with_max_states(1_000_000).with_max_transitions(10_000_000));

        let p = partition_governed(&a, Equivalence::Branching, &generous())
            .expect("generous budget completes");
        assert_eq!(p.num_blocks(), partition(&a, Equivalence::Branching).num_blocks());
        let eq = bisimilar_governed(&a, &b, Equivalence::Branching, &generous()).unwrap();
        assert_eq!(eq, bisimilar(&a, &b, Equivalence::Branching));
        let r = trace_refines_governed(&a, &b, RefineOptions::default(), &generous()).unwrap();
        assert_eq!(r.holds, trace_refines(&a, &b).holds);
        let c = check_governed(&a, &lock_freedom(), &generous()).unwrap();
        assert_eq!(c.holds, check(&a, &lock_freedom()).holds);
    }
}
