//! Seeded property tests for thread-symmetry canonicalization.
//!
//! Two properties over *reachable* states of the most general client (not
//! hand-picked states), in the style of `tests/properties.rs`:
//!
//! 1. **Orbit constancy** — applying any valid thread permutation (one
//!    that only exchanges threads in identical local states) and then
//!    canonicalizing yields the same representative as canonicalizing the
//!    original state.
//! 2. **Label preservation** — canonicalization never moves the thread
//!    status vector, so quotienting by symmetry can never merge two states
//!    with different visible pending operations (a different set of
//!    outstanding calls or returns).

use bbverify::algorithms::treiber_hp::TreiberHp;
use bbverify::lts::Semantics;
use bbverify::reduce::canonical_state;
use bbverify::reduce::scratch::ScratchPad;
use bbverify::sim::{Bound, ObjectAlgorithm, SysState, System, ThreadPerm, ThreadStatus};
use std::collections::HashMap;

/// Number of seeded permutation trials per reachable state set.
const CASES: u64 = 64;

/// SplitMix64 — derives independent parameters from a case index.
fn splitmix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e3779b97f4a7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d049bb133111eb);
    x ^ (x >> 31)
}

/// Collects every state of the most general client reachable under `bound`
/// (these configurations are small enough to enumerate exhaustively).
fn reachable<A: ObjectAlgorithm>(
    system: &System<'_, A>,
) -> Vec<SysState<A::Shared, A::Frame>> {
    let mut seen = vec![system.initial_state()];
    let mut frontier = seen.clone();
    let mut buf = Vec::new();
    while let Some(st) = frontier.pop() {
        buf.clear();
        system.successors(&st, &mut buf);
        for (_, next) in buf.drain(..) {
            if !seen.contains(&next) {
                seen.push(next.clone());
                frontier.push(next);
            }
        }
    }
    seen
}

/// Builds a seeded *valid* permutation for `st`: a Fisher-Yates shuffle
/// inside each group of threads sharing an identical status. Threads in
/// different local states are never exchanged.
fn seeded_valid_perm<S, F: PartialEq>(st: &SysState<S, F>, seed: u64) -> ThreadPerm
where
    ThreadStatus<F>: PartialEq,
{
    let n = st.threads.len();
    let mut groups: Vec<Vec<usize>> = Vec::new();
    for i in 0..n {
        match groups
            .iter_mut()
            .find(|g| st.threads[g[0]] == st.threads[i])
        {
            Some(g) => g.push(i),
            None => groups.push(vec![i]),
        }
    }
    let mut map: Vec<u8> = (1..=n as u8).collect();
    let mut r = seed;
    for g in &groups {
        let mut targets = g.clone();
        for i in (1..targets.len()).rev() {
            r = splitmix(r);
            targets.swap(i, (r % (i as u64 + 1)) as usize);
        }
        for (&src, &dst) in g.iter().zip(&targets) {
            map[src] = dst as u8 + 1;
        }
    }
    ThreadPerm::new(map)
}

/// Applies `perm` to a state the way the symmetry layer defines it: rename
/// per-thread shared data, keep the status vector (the permutation only
/// exchanges identical statuses, so this *is* the permuted state), and
/// re-run heap canonicalization.
fn permute<A: ObjectAlgorithm>(
    system: &System<'_, A>,
    st: &SysState<A::Shared, A::Frame>,
    perm: &ThreadPerm,
) -> SysState<A::Shared, A::Frame> {
    let mut out = st.clone();
    {
        let SysState { shared, threads } = &mut out;
        let mut frames: Vec<&mut A::Frame> = threads
            .iter_mut()
            .filter_map(|t| match t {
                ThreadStatus::Running { frame, .. } => Some(frame),
                ThreadStatus::Idle { .. } => None,
            })
            .collect();
        system.algorithm().rename_threads(shared, &mut frames, perm);
    }
    system.canonicalize_state(&mut out);
    out
}

/// Runs both properties over every reachable state of `alg` under `bound`.
fn check_properties<A: ObjectAlgorithm>(alg: &A, bound: Bound) {
    let system = System::new(alg, bound);
    let states = reachable(&system);
    assert!(states.len() > 10, "bound too small to be meaningful");

    // Property 1: canonical(π(s)) == canonical(s) for seeded valid π.
    for case in 0..CASES {
        let idx = (splitmix(case.wrapping_mul(0xA5A5)) % states.len() as u64) as usize;
        let st = &states[idx];
        let perm = seeded_valid_perm(st, splitmix(case));
        let permuted = permute(&system, st, &perm);

        let mut canon_orig = st.clone();
        canonical_state(&system, &mut canon_orig);
        let mut canon_perm = permuted.clone();
        canonical_state(&system, &mut canon_perm);
        assert_eq!(
            canon_orig, canon_perm,
            "{}: case {case}: canonicalization must be constant on the \
             orbit of state {idx} (perm {perm:?})",
            alg.name()
        );
    }

    // Property 2: grouping all reachable states by representative never
    // merges two states with different status vectors — visible pending
    // operations (outstanding calls/returns) are preserved exactly.
    let mut classes: HashMap<String, Vec<usize>> = HashMap::new();
    for (i, st) in states.iter().enumerate() {
        let mut canon = st.clone();
        canonical_state(&system, &mut canon);
        classes
            .entry(format!("{canon:?}"))
            .or_default()
            .push(i);
    }
    let mut merged = 0usize;
    for members in classes.values() {
        merged += members.len() - 1;
        for w in members.windows(2) {
            assert_eq!(
                states[w[0]].threads,
                states[w[1]].threads,
                "{}: merged states must agree on every pending operation",
                alg.name()
            );
        }
    }
    assert!(
        merged > 0,
        "{}: the sweep should witness at least one genuine merge",
        alg.name()
    );
}

#[test]
fn scratch_pad_symmetry_properties() {
    check_properties(&ScratchPad::new(&[1, 2], 3), Bound::new(3, 1));
}

#[test]
fn treiber_hp_symmetry_properties() {
    check_properties(&TreiberHp::new(&[1], 2), Bound::new(2, 2));
}
