//! bb-telemetry integration: the daemon's Prometheus exposition (protocol
//! op, HTTP listener, `bbv metrics --lint`), the per-job flight recorder
//! (`bbv jobs dump`), the `stats` uptime/journal members, `bbv top --once`,
//! and — most importantly — proof that none of it moves a byte of any
//! verdict: served results with the full telemetry surface enabled are
//! byte-identical to direct runs at 1 and 4 workers.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Output, Stdio};
use std::time::{Duration, Instant};

use bb_obs::json::{parse, JsonValue};

fn bbv() -> &'static str {
    env!("CARGO_BIN_EXE_bbv")
}

fn tmp(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("bb-telemetry-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    std::fs::create_dir_all(&d).unwrap();
    d
}

/// A running daemon, killed and cleaned up on drop.
struct Daemon {
    child: Child,
    dir: PathBuf,
}

impl Daemon {
    fn start(dir: &Path, args: &[&str]) -> Daemon {
        let child = Command::new(bbv())
            .arg("serve")
            .arg("--dir")
            .arg(dir)
            .args(args)
            .stdout(Stdio::null())
            .stderr(Stdio::null())
            .spawn()
            .expect("spawn bbv serve");
        let addr_file = dir.join("serve.addr");
        let deadline = Instant::now() + Duration::from_secs(30);
        while !addr_file.exists() {
            assert!(Instant::now() < deadline, "daemon never published serve.addr");
            std::thread::sleep(Duration::from_millis(20));
        }
        Daemon { child, dir: dir.to_path_buf() }
    }

    fn metrics_addr(&self) -> String {
        let file = self.dir.join("serve.metrics-addr");
        let deadline = Instant::now() + Duration::from_secs(30);
        while !file.exists() {
            assert!(Instant::now() < deadline, "daemon never published serve.metrics-addr");
            std::thread::sleep(Duration::from_millis(20));
        }
        std::fs::read_to_string(&file).unwrap().trim().to_string()
    }

    fn drain(mut self) {
        let ok = Command::new(bbv())
            .args(["drain", "--dir"])
            .arg(&self.dir)
            .output()
            .map(|o| o.status.success())
            .unwrap_or(false);
        if ok {
            let deadline = Instant::now() + Duration::from_secs(60);
            while Instant::now() < deadline {
                if let Ok(Some(_)) = self.child.try_wait() {
                    return;
                }
                std::thread::sleep(Duration::from_millis(30));
            }
        }
        let _ = self.child.kill();
    }
}

impl Drop for Daemon {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

fn run_bbv(args: &[&str]) -> Output {
    Command::new(bbv()).args(args).output().expect("run bbv")
}

fn stdout_of(o: &Output) -> String {
    String::from_utf8_lossy(&o.stdout).into_owned()
}

// ------------------------------------------------------- metrics exposition

#[test]
fn metrics_exposition_lints_and_covers_daemon_and_obs_series() {
    let dir = tmp("metrics");
    let dir_s = dir.to_str().unwrap();
    let daemon = Daemon::start(&dir, &["--workers", "1", "--metrics-addr", "127.0.0.1:0"]);

    // One real job first, so the obs hot counters and the journal fsync
    // histogram have non-trivial values to export.
    let job = run_bbv(&["submit", "verify", "treiber", "--threads", "2", "--ops", "1",
                        "--dir", dir_s]);
    assert_eq!(job.status.code(), Some(0), "{}", String::from_utf8_lossy(&job.stderr));

    // `bbv metrics --lint` is the CI gate: exposition printed, format-checked.
    let out = run_bbv(&["metrics", "--lint", "--dir", dir_s]);
    assert_eq!(
        out.status.code(),
        Some(0),
        "lint failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = stdout_of(&out);
    bb_obs::prom::lint(&text).expect("exposition passes the strict linter");

    // Serve-layer series.
    for series in [
        "bb_serve_uptime_seconds",
        "bb_serve_queue_depth",
        "bb_serve_queue_cap",
        "bb_serve_workers",
        "bb_serve_retry_after_ms",
        "bb_serve_jobs{state=\"done\"} 1",
        "bb_serve_completed_total 1",
        "bb_serve_journal_replayed_records_total",
    ] {
        assert!(text.contains(series), "missing `{series}` in exposition:\n{text}");
    }
    // bb-obs instruments, mechanically renamed: a verify run refines
    // signatures, and every journal append timed an fsync.
    for series in [
        "bb_bisim_signature_recomputes",
        "bb_serve_journal_fsync_us_bucket",
        "bb_serve_journal_fsync_us_sum",
        "le=\"+Inf\"",
    ] {
        assert!(text.contains(series), "missing `{series}` in exposition:\n{text}");
    }
    let fsync_count = text
        .lines()
        .find(|l| l.starts_with("bb_serve_journal_fsync_us_count"))
        .and_then(|l| l.split_whitespace().last())
        .and_then(|v| v.parse::<u64>().ok())
        .expect("fsync histogram has a _count series");
    assert!(fsync_count > 0, "journal appends must have been timed");

    daemon.drain();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn http_listener_serves_the_exposition_and_404s_elsewhere() {
    let dir = tmp("http");
    let daemon = Daemon::start(&dir, &["--workers", "1", "--metrics-addr", "127.0.0.1:0"]);
    let addr = daemon.metrics_addr();

    let get = |path: &str| -> String {
        let mut s = TcpStream::connect(&addr).expect("connect to metrics listener");
        s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
        write!(s, "GET {path} HTTP/1.0\r\n\r\n").unwrap();
        let mut resp = String::new();
        s.read_to_string(&mut resp).expect("read HTTP response");
        resp
    };

    let ok = get("/metrics");
    assert!(ok.starts_with("HTTP/1.0 200"), "{ok}");
    assert!(ok.contains("text/plain"), "{ok}");
    let body = ok.split("\r\n\r\n").nth(1).expect("response has a body");
    bb_obs::prom::lint(body).expect("scraped document passes the linter");
    assert!(body.contains("bb_serve_uptime_seconds"));

    let missing = get("/nope");
    assert!(missing.starts_with("HTTP/1.0 404"), "{missing}");

    daemon.drain();
    let _ = std::fs::remove_dir_all(&dir);
}

// ----------------------------------------------------------- flight recorder

#[test]
fn cancelled_job_leaves_a_retrievable_flight_dump() {
    let dir = tmp("flight");
    let dir_s = dir.to_str().unwrap();
    let daemon = Daemon::start(&dir, &["--workers", "1"]);

    // Submit detached and cancel immediately: whether the cancel lands
    // while the job is still queued (synthetic header-only dump) or already
    // running (ring dump), a post-mortem must be persisted and retrievable.
    let submit = run_bbv(&["submit", "verify", "ms-queue", "--threads", "2", "--ops", "2",
                           "--dir", dir_s, "--detach"]);
    let reply = parse(stdout_of(&submit).trim()).expect("submit reply parses");
    let job = reply.get("job").and_then(JsonValue::as_u64).expect("job id");
    let cancel = run_bbv(&["cancel", &job.to_string(), "--dir", dir_s]);
    assert_eq!(cancel.status.code(), Some(0), "{}", String::from_utf8_lossy(&cancel.stderr));

    // The dump appears once the worker (or the cancel path) persists it.
    let deadline = Instant::now() + Duration::from_secs(30);
    let dump = loop {
        let out = run_bbv(&["jobs", "dump", &job.to_string(), "--dir", dir_s]);
        if out.status.code() == Some(0) {
            break stdout_of(&out);
        }
        assert!(Instant::now() < deadline, "flight dump never became retrievable");
        std::thread::sleep(Duration::from_millis(50));
    };
    let header = parse(dump.lines().next().expect("dump has a header")).unwrap();
    assert_eq!(header.get("schema").and_then(JsonValue::as_str), Some("bb-flight/v1"));
    assert_eq!(header.get("job").and_then(JsonValue::as_u64), Some(job));
    let events = header.get("events").and_then(JsonValue::as_u64).unwrap();
    assert_eq!(dump.lines().count() as u64, 1 + events, "header counts the event lines");
    // Every event line carries the ring metadata plus the original event.
    for line in dump.lines().skip(1) {
        let ev = parse(line).unwrap_or_else(|e| panic!("bad dump line ({e}): {line}"));
        assert!(ev.get("seq").and_then(JsonValue::as_u64).is_some());
        assert!(ev.get("t_us").and_then(JsonValue::as_u64).is_some());
        assert!(ev.get("event").and_then(JsonValue::as_str).is_some());
    }
    // The post-mortem lives in the serve directory, atomically written.
    // (The `dump` op may have served the live ring above while the worker
    // was still unwinding — the file lands at the terminal transition.)
    let dump_file = dir.join("flight").join(format!("job-{job}.ndjson"));
    let deadline = Instant::now() + Duration::from_secs(30);
    while !dump_file.exists() {
        assert!(
            Instant::now() < deadline,
            "dump file missing from {}/flight",
            dir.display()
        );
        std::thread::sleep(Duration::from_millis(50));
    }

    // A job that ends conclusively leaves no dump — its story is the result.
    let done = run_bbv(&["submit", "verify", "treiber", "--threads", "2", "--ops", "1",
                         "--dir", dir_s]);
    assert_eq!(done.status.code(), Some(0));
    let conclusive_job = 1 + job; // sequential ids: the next submit
    let no_dump = run_bbv(&["jobs", "dump", &conclusive_job.to_string(), "--dir", dir_s]);
    assert_ne!(no_dump.status.code(), Some(0), "conclusive jobs must not leave dumps");

    daemon.drain();
    let _ = std::fs::remove_dir_all(&dir);
}

// ---------------------------------------------------------- stats + bbv top

#[test]
fn stats_reports_uptime_journal_replay_and_active_jobs() {
    let dir = tmp("stats");
    let dir_s = dir.to_str().unwrap();
    let daemon = Daemon::start(&dir, &["--workers", "1"]);

    let out = run_bbv(&["stats", "--dir", dir_s]);
    assert_eq!(out.status.code(), Some(0));
    let v = parse(stdout_of(&out).trim()).expect("stats reply parses");
    assert!(v.get("uptime_ms").and_then(JsonValue::as_u64).is_some(), "{v:?}");
    assert_eq!(
        v.get("journal").and_then(|j| j.get("replayed_records")).and_then(JsonValue::as_u64),
        Some(0),
        "fresh daemon replays nothing"
    );
    assert!(v.get("jobs").and_then(JsonValue::as_array).is_some(), "jobs array present");

    // `bbv top --once` on a pipe degrades to one plain summary line.
    let top = run_bbv(&["top", "--once", "--dir", dir_s]);
    assert_eq!(top.status.code(), Some(0), "{}", String::from_utf8_lossy(&top.stderr));
    let line = stdout_of(&top);
    assert_eq!(line.lines().count(), 1, "non-TTY top prints one line per refresh: {line}");
    assert!(line.contains("queue 0/"), "summary line shape: {line}");
    assert!(line.contains("up "), "summary line shape: {line}");

    daemon.drain();
    let _ = std::fs::remove_dir_all(&dir);
}

// -------------------------------------------------------------- neutrality

/// Served-vs-direct byte equality with the full telemetry surface enabled:
/// metrics listener up, flight recorder live, a watcher pulls of `stats`
/// mid-roster. Verdicts, exit codes and stdout must not move.
fn assert_telemetry_neutral(workers: &str) {
    let dir = tmp(&format!("neutral-{workers}"));
    let dir_s = dir.to_str().unwrap();
    let daemon = Daemon::start(
        &dir,
        &["--workers", workers, "--metrics-addr", "127.0.0.1:0"],
    );

    // Proved (exit 0) and refuted (exit 1) cases, both compared byte-for-byte.
    let cases: &[&[&str]] = &[
        &["verify", "treiber", "--threads", "2", "--ops", "1"],
        &["verify", "hw-queue", "--threads", "2", "--ops", "1"],
    ];
    for case in cases {
        let direct = run_bbv(case);
        let mut served_args: Vec<&str> = vec!["submit"];
        served_args.extend_from_slice(case);
        served_args.extend_from_slice(&["--dir", dir_s]);
        let served = run_bbv(&served_args);
        // Exercise the telemetry surface between jobs, as a scraper would.
        assert_eq!(run_bbv(&["metrics", "--lint", "--dir", dir_s]).status.code(), Some(0));
        assert_eq!(
            stdout_of(&served),
            stdout_of(&direct),
            "telemetry changed served stdout for {case:?} at {workers} workers"
        );
        assert_eq!(
            served.status.code(),
            direct.status.code(),
            "telemetry changed the exit code for {case:?} at {workers} workers"
        );
    }

    // Artifact bytes: a served quotient `.aut` equals the direct one.
    let direct_aut = dir.join("direct.aut");
    let served_aut = dir.join("served.aut");
    let direct = run_bbv(&["quotient", "treiber", "--threads", "2", "--ops", "1",
                           "--aut", direct_aut.to_str().unwrap()]);
    let served = run_bbv(&["submit", "quotient", "treiber", "--threads", "2", "--ops", "1",
                           "--aut", served_aut.to_str().unwrap(), "--dir", dir_s]);
    assert_eq!(direct.status.code(), Some(0));
    assert_eq!(served.status.code(), Some(0));
    assert_eq!(
        std::fs::read(&direct_aut).unwrap(),
        std::fs::read(&served_aut).unwrap(),
        ".aut bytes changed under telemetry at {workers} workers"
    );

    daemon.drain();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn telemetry_is_byte_neutral_at_one_worker() {
    assert_telemetry_neutral("1");
}

#[test]
fn telemetry_is_byte_neutral_at_four_workers() {
    assert_telemetry_neutral("4");
}
