//! End-to-end tests of the `bbv` command-line front end.

use std::process::Command;

fn bbv(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_bbv"))
        .args(args)
        .output()
        .expect("bbv runs")
}

#[test]
fn list_shows_all_algorithms() {
    let out = bbv(&["list"]);
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    for name in [
        "treiber",
        "ms-queue",
        "hw-queue",
        "hm-list-buggy",
        "two-lock-queue",
        "coarse-set",
    ] {
        assert!(text.contains(name), "missing {name} in:\n{text}");
    }
}

#[test]
fn verify_success_exits_zero() {
    let out = bbv(&["verify", "treiber", "--threads", "2", "--ops", "1", "--domain", "1"]);
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("lin=✓"));
    assert!(text.contains("lock-free=✓"));
}

#[test]
fn verify_bug_exits_nonzero_with_counterexample() {
    let out = bbv(&[
        "verify",
        "hm-list-buggy",
        "--threads",
        "2",
        "--ops",
        "2",
        "--domain",
        "1",
    ]);
    assert_eq!(out.status.code(), Some(1));
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("lin=✗"));
    assert!(text.contains("non-linearizable history"));
}

#[test]
fn lock_freedom_violation_prints_loop() {
    let out = bbv(&["verify", "hw-queue", "--threads", "2", "--ops", "1", "--domain", "1"]);
    assert_eq!(out.status.code(), Some(1));
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("lock-free=✗"));
    assert!(text.contains("τ-loop"));
}

#[test]
fn quotient_writes_dot_and_aut() {
    let dir = std::env::temp_dir();
    let dot = dir.join("bbv_test_q.dot");
    let aut = dir.join("bbv_test_q.aut");
    let out = bbv(&[
        "quotient",
        "treiber",
        "--threads",
        "2",
        "--ops",
        "1",
        "--domain",
        "1",
        "--dot",
        dot.to_str().unwrap(),
        "--aut",
        aut.to_str().unwrap(),
    ]);
    assert!(out.status.success());
    let dot_text = std::fs::read_to_string(&dot).unwrap();
    assert!(dot_text.starts_with("digraph"));
    let aut_text = std::fs::read_to_string(&aut).unwrap();
    assert!(aut_text.starts_with("des ("));
    // The exported quotient parses back.
    let lts = bbverify::lts::from_aut(&aut_text).unwrap();
    assert!(lts.num_states() > 1);
    let _ = std::fs::remove_file(dot);
    let _ = std::fs::remove_file(aut);
}

#[test]
fn unknown_algorithm_is_a_usage_error() {
    let out = bbv(&["verify", "no-such-thing"]);
    assert_eq!(out.status.code(), Some(3));
}

#[test]
fn unknown_option_is_a_usage_error() {
    let out = bbv(&["verify", "treiber", "--no-such-flag"]);
    assert_eq!(out.status.code(), Some(3));
}

#[test]
fn unknown_subcommand_is_a_usage_error() {
    let out = bbv(&["frobnicate"]);
    assert_eq!(out.status.code(), Some(3));
}

#[test]
fn help_documents_exit_codes() {
    let out = bbv(&["--help"]);
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stderr);
    assert!(text.contains("exit codes"), "{text}");
    assert!(text.contains("--timeout"), "{text}");
    assert!(text.contains("--max-states"), "{text}");
}

#[test]
fn underscore_algorithm_names_are_accepted() {
    let out = bbv(&["verify", "ms_queue", "--threads", "2", "--ops", "1", "--domain", "1"]);
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
}

#[test]
fn tiny_timeout_is_inconclusive_exit_2() {
    let started = std::time::Instant::now();
    let out = bbv(&["verify", "ms-queue", "--threads", "3", "--ops", "3", "--timeout", "250ms"]);
    assert_eq!(out.status.code(), Some(2), "{}", String::from_utf8_lossy(&out.stderr));
    // Well under 2x the deadline even with process startup slack.
    assert!(started.elapsed() < std::time::Duration::from_secs(5));
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("inconclusive"), "{text}");
    assert!(text.contains("deadline"), "{text}");
    // The report names the exhausted stage.
    assert!(text.contains("explore"), "{text}");
}

#[test]
fn state_cap_falls_back_to_reduced_bound() {
    let out = bbv(&[
        "verify", "ms-queue", "--threads", "2", "--ops", "2", "--domain", "1",
        "--max-states", "2e3",
    ]);
    assert_eq!(out.status.code(), Some(2));
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("reduced-bound"), "{text}");
    assert!(text.contains("reduced bound 2-1"), "{text}");
}

#[test]
fn generous_budget_still_proves() {
    let out = bbv(&[
        "verify", "treiber", "--threads", "2", "--ops", "1", "--domain", "1",
        "--timeout", "120s", "--max-states", "1e6",
    ]);
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("linearizability proved"), "{text}");
    assert!(text.contains("direct"), "{text}");
}

#[test]
fn budgeted_refutation_exits_one() {
    let out = bbv(&[
        "verify", "hw-queue", "--threads", "2", "--ops", "1", "--domain", "1",
        "--timeout", "120s",
    ]);
    assert_eq!(out.status.code(), Some(1));
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("lock-freedom refuted"), "{text}");
}

#[test]
fn bad_budget_values_are_usage_errors() {
    let out = bbv(&["verify", "treiber", "--timeout", "soon"]);
    assert_eq!(out.status.code(), Some(3));
    let out = bbv(&["verify", "treiber", "--max-states", "many"]);
    assert_eq!(out.status.code(), Some(3));
}

#[test]
fn wait_freedom_flag_reports_starvation() {
    let out = bbv(&[
        "verify",
        "hw-queue",
        "--threads",
        "2",
        "--ops",
        "1",
        "--domain",
        "1",
        "--wait-freedom",
    ]);
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("starvation"), "{text}");
    assert!(text.contains("spin forever"), "{text}");
}

#[test]
fn check_subcommand_with_parsed_formula() {
    let out = bbv(&[
        "check",
        "hw-queue",
        "--threads",
        "2",
        "--ops",
        "1",
        "--domain",
        "1",
        "--formula",
        "G F (ret | done)",
    ]);
    assert_eq!(out.status.code(), Some(1));
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("holds     : false"), "{text}");
    assert!(text.contains("counterexample"), "{text}");

    let out = bbv(&[
        "check", "treiber", "--threads", "2", "--ops", "1", "--domain", "1", "--formula",
        "G F (ret | done)",
    ]);
    assert!(out.status.success());
}

#[test]
fn check_rejects_bad_formula_as_usage_error() {
    let out = bbv(&["check", "treiber", "--formula", "G G %"]);
    assert_eq!(out.status.code(), Some(3));
}

#[test]
fn verify_with_reduction_matches_unreduced_verdict() {
    let base = bbv(&["verify", "treiber", "--threads", "2", "--ops", "1", "--domain", "1"]);
    for mode in ["sym", "por", "full"] {
        let out = bbv(&[
            "verify", "treiber", "--threads", "2", "--ops", "1", "--domain", "1", "--reduce", mode,
        ]);
        assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
        let text = String::from_utf8_lossy(&out.stdout);
        assert!(text.contains("lin=✓"), "--reduce {mode}: {text}");
        // The reduction counters go to stderr; the verdict on stdout must
        // carry the same marks as the unreduced run.
        let base_text = String::from_utf8_lossy(&base.stdout);
        assert_eq!(
            base_text.contains("lock-free=✓"),
            text.contains("lock-free=✓"),
            "--reduce {mode} changed the lock-freedom verdict"
        );
        let err = String::from_utf8_lossy(&out.stderr);
        assert!(err.contains("reduction"), "--reduce {mode}: {err}");
    }
}

#[test]
fn reduce_check_passes_and_bad_mode_is_usage_error() {
    let out = bbv(&["reduce-check", "treiber", "--threads", "2", "--ops", "1", "--domain", "1"]);
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("≈div ok"), "{text}");
    assert!(text.contains("verdicts ok"), "{text}");

    let out = bbv(&["verify", "treiber", "--reduce", "nope"]);
    assert_eq!(out.status.code(), Some(3));
}
