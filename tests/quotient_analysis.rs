//! The quotient as an analysis tool (Section VI-D.1): computing Δ/≈ "for
//! free" recovers the linearization-point structure — the only internal
//! steps surviving in the quotient are the statements where methods take
//! effect, matching the published manual analyses.

use bbverify::algorithms::{dglm_queue::DglmQueue, ms_queue::MsQueue, treiber::Treiber};
use bbverify::bisim::{partition, quotient, Equivalence};
use bbverify::lts::ExploreLimits;
use bbverify::refine::trace_equivalent;
use bbverify::sim::{explore_system, Bound, ObjectAlgorithm};
use std::collections::BTreeSet;

fn surviving_tags<A: ObjectAlgorithm>(alg: &A, th: u8, op: u32) -> BTreeSet<String> {
    let lts = explore_system(alg, Bound::new(th, op), ExploreLimits::default()).unwrap();
    let p = partition(&lts, Equivalence::Branching);
    let q = quotient(&lts, &p);
    q.lts
        .iter_transitions()
        .filter(|(_, a, _)| !q.lts.is_visible(*a))
        .filter_map(|(_, a, _)| q.lts.action(a).tag.as_ref().map(|t| t.to_string()))
        .collect()
}

fn set(tags: &[&str]) -> BTreeSet<String> {
    tags.iter().map(|s| s.to_string()).collect()
}

/// The paper's Section VI-D.1 claim, verbatim: "all internal steps in the
/// quotient are labeled with Lines 8, 20, 21, 28" of Fig. 5. (At 2-2 the
/// L21 validation is still inert — it needs the deeper interleavings of
/// 2-3 to become effectful, so the full set is asserted there.)
#[test]
fn ms_queue_quotient_recovers_fig5_linearization_points() {
    let tags = surviving_tags(&MsQueue::new(&[1]), 2, 2);
    assert_eq!(tags, set(&["L8", "L20", "L28"]));
}

#[test]
#[cfg_attr(debug_assertions, ignore = "≈10 s in debug; run with --release")]
fn ms_queue_quotient_full_lp_set_at_2_3() {
    let tags = surviving_tags(&MsQueue::new(&[1]), 2, 3);
    assert_eq!(tags, set(&["L8", "L20", "L21", "L28"]));
}

/// Treiber: the push CAS (L4), the pop CAS (L13) and the empty-case read of
/// `Top` (L10) are the linearization points.
#[test]
fn treiber_quotient_recovers_linearization_points() {
    let tags = surviving_tags(&Treiber::new(&[1]), 2, 2);
    assert_eq!(tags, set(&["L4", "L10", "L13"]));
}

/// DGLM: enqueue-link CAS (E5), dequeue next-read (D2, the empty LP) and
/// dequeue head CAS (D4).
#[test]
fn dglm_quotient_recovers_linearization_points() {
    let tags = surviving_tags(&DglmQueue::new(&[1]), 2, 2);
    assert_eq!(tags, set(&["D2", "D4", "E5"]));
}

/// Theorem 5.2 on a real object system: the quotient has the same traces.
#[test]
fn quotient_preserves_traces_of_real_systems() {
    for (name, lts) in [
        (
            "treiber",
            explore_system(&Treiber::new(&[1]), Bound::new(2, 2), ExploreLimits::default())
                .unwrap(),
        ),
        (
            "ms-queue",
            explore_system(&MsQueue::new(&[1]), Bound::new(2, 1), ExploreLimits::default())
                .unwrap(),
        ),
    ] {
        let p = partition(&lts, Equivalence::Branching);
        let q = quotient(&lts, &p);
        assert!(trace_equivalent(&lts, &q.lts), "{name}");
    }
}
