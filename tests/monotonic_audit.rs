//! Clock-discipline regression tests.
//!
//! Deadline governance must be monotonic-clock based everywhere: a daemon
//! worker that straddles an NTP step or a suspend/resume must neither trip
//! a deadline early nor have it extended. Two enforcement angles:
//!
//! 1. a source audit — `SystemTime` may appear only where wall-clock time
//!    is the *subject* (bb-persist's temp-file mtime sweep) or in test
//!    fixtures that fabricate mtimes;
//! 2. behavioral checks that the [`Watchdog`] deadline anchors to its
//!    creation `Instant` and measures elapsed monotonic time.

use bbverify::lts::{Budget, Stage, Watchdog};
use std::path::{Path, PathBuf};
use std::time::Duration;

/// Files allowed to mention `SystemTime`/`UNIX_EPOCH`, relative to the
/// workspace root. Everything here handles file mtimes, which *are*
/// wall-clock values — not deadlines.
const WALL_CLOCK_WHITELIST: &[&str] = &[
    // Temp-file grace sweep: compares fs mtimes against now.
    "crates/persist/src/atomic.rs",
    // Test helper that backdates a temp file's mtime.
    "crates/persist/src/cache.rs",
    // Integration test doing the same backdating through the public API.
    "tests/persist_cache.rs",
];

fn rust_sources(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else { return };
    for entry in entries.flatten() {
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name != "target" && name != ".git" {
                rust_sources(&path, out);
            }
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
}

#[test]
fn system_time_appears_only_in_wall_clock_code() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let mut sources = Vec::new();
    rust_sources(root, &mut sources);
    assert!(
        sources.len() > 50,
        "source scan looks broken: only {} files found",
        sources.len()
    );
    let mut offenders = Vec::new();
    for path in sources {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .to_string_lossy()
            .replace('\\', "/");
        if rel == "tests/monotonic_audit.rs" {
            continue; // this file names the symbol in strings
        }
        let Ok(text) = std::fs::read_to_string(&path) else { continue };
        // Strip line comments: prose may *name* the symbol (the budget
        // module documents this very rule); only code uses count.
        let code_mentions = text.lines().any(|l| {
            let code = l.split("//").next().unwrap_or("");
            code.contains("SystemTime") || code.contains("UNIX_EPOCH")
        });
        if !code_mentions {
            continue;
        }
        if !WALL_CLOCK_WHITELIST.contains(&rel.as_str()) {
            offenders.push(rel);
        }
    }
    assert!(
        offenders.is_empty(),
        "wall-clock time crept into governed code: {offenders:?}\n\
         deadlines must use Instant (see crates/lts/src/budget.rs, Clock \
         discipline); if the use is genuinely about file mtimes, add it to \
         WALL_CLOCK_WHITELIST with a justification"
    );
}

#[test]
fn deadline_measures_monotonic_elapsed_time() {
    // A deadline comfortably in the future never trips, regardless of what
    // the wall clock does meanwhile.
    let wd = Watchdog::new(Budget::unlimited().with_deadline(Duration::from_secs(3600)));
    let mut meter = wd.meter(Stage::Explore);
    for _ in 0..10_000 {
        meter.add_state().expect("an hour-long deadline must not trip");
    }

    // An already-expired deadline trips at the first check boundary, with
    // the deadline reason and the stage attached.
    let wd = Watchdog::new(Budget::unlimited().with_deadline(Duration::ZERO));
    std::thread::sleep(Duration::from_millis(5));
    let mut meter = wd.meter(Stage::Bisim);
    let err = meter
        .checkpoint()
        .expect_err("a zero deadline must trip at the first checkpoint");
    let msg = err.to_string();
    assert!(msg.contains("bisim"), "stage missing from: {msg}");
}

#[test]
fn deadline_anchors_to_watchdog_creation() {
    // The anchor is the Watchdog's creation Instant: sleeping past the
    // deadline after creation trips it even though no meter existed yet
    // while time passed.
    let wd = Watchdog::new(Budget::unlimited().with_deadline(Duration::from_millis(20)));
    std::thread::sleep(Duration::from_millis(60));
    let mut late_meter = wd.meter(Stage::Refine);
    assert!(
        late_meter.checkpoint().is_err(),
        "deadline must anchor to watchdog creation, not meter creation"
    );
}
