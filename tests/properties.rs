//! Property-based tests of the equivalence-checking stack on random LTSs.
//!
//! These validate the paper's structural theorems on arbitrary systems, not
//! just the benchmark algorithms: quotient trace preservation (Theorem
//! 5.2), the lattice of equivalences, idempotence of quotienting, the
//! divergence characterizations behind Theorem 5.9, and the coincidence of
//! the k-trace hierarchy's fixpoint with branching bisimilarity
//! (Theorem 4.3).

use bbverify::bisim::{
    bisimilar, div_quotient, divergence_witness, has_tau_cycle, partition, quotient,
    starvation_witness, Equivalence,
};
use bbverify::lts::ThreadId;
use bbverify::ktrace::{cap, ktrace_partition, KtraceLimits};
use bbverify::lts::{random_lts, Lts, RandomLtsConfig};
use bbverify::ltl::{check, lock_freedom};
use bbverify::refine::{trace_equivalent, trace_refines};
use proptest::prelude::*;

fn arb_lts() -> impl Strategy<Value = Lts> {
    (0u64..10_000, 2usize..25, 1usize..50, 1usize..4, 0u8..90).prop_map(
        |(seed, states, transitions, letters, tau_pct)| {
            random_lts(
                seed,
                RandomLtsConfig {
                    num_states: states,
                    num_transitions: transitions,
                    num_visible_letters: letters,
                    tau_percent: tau_pct,
                },
            )
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Theorem 5.2 core: quotienting under ≈ preserves the trace set.
    #[test]
    fn quotient_preserves_traces(lts in arb_lts()) {
        let p = partition(&lts, Equivalence::Branching);
        let q = quotient(&lts, &p);
        prop_assert!(trace_equivalent(&lts, &q.lts));
    }

    /// The original system and its ≈-quotient are branching bisimilar.
    #[test]
    fn quotient_is_branching_bisimilar(lts in arb_lts()) {
        let p = partition(&lts, Equivalence::Branching);
        let q = quotient(&lts, &p);
        prop_assert!(bisimilar(&lts, &q.lts, Equivalence::Branching));
    }

    /// Quotienting is idempotent: the quotient is already minimal.
    #[test]
    fn quotient_is_idempotent(lts in arb_lts()) {
        let p = partition(&lts, Equivalence::Branching);
        let q = quotient(&lts, &p);
        let p2 = partition(&q.lts, Equivalence::Branching);
        prop_assert_eq!(p2.num_blocks(), q.lts.num_states());
    }

    /// Equivalence lattice: strong ⊆ ≈div ⊆ ≈ ⊆ ~w (as relations), i.e.
    /// each partition refines the next.
    #[test]
    fn equivalence_lattice(lts in arb_lts()) {
        let strong = partition(&lts, Equivalence::Strong);
        let bdiv = partition(&lts, Equivalence::BranchingDiv);
        let branching = partition(&lts, Equivalence::Branching);
        let weak = partition(&lts, Equivalence::Weak);
        prop_assert!(strong.refines(&bdiv), "strong refines ≈div");
        prop_assert!(bdiv.refines(&branching), "≈div refines ≈");
        prop_assert!(branching.refines(&weak), "≈ refines ~w");
    }

    /// Theorem 5.9 mechanics: Δ ≈div Δ/≈ holds iff Δ has no reachable
    /// τ-cycle, and the divergence witness agrees.
    #[test]
    fn divergence_characterization(lts in arb_lts()) {
        let p = partition(&lts, Equivalence::Branching);
        let q = quotient(&lts, &p);
        let div_bisim = bisimilar(&lts, &q.lts, Equivalence::BranchingDiv);
        let cycle = has_tau_cycle(&lts);
        prop_assert_eq!(div_bisim, !cycle);
        prop_assert_eq!(divergence_witness(&lts).is_some(), cycle);
    }

    /// Lemma 5.7: the ≈-quotient never contains a τ-cycle.
    #[test]
    fn quotient_has_no_tau_cycle(lts in arb_lts()) {
        let p = partition(&lts, Equivalence::Branching);
        let q = quotient(&lts, &p);
        prop_assert!(!has_tau_cycle(&q.lts));
    }

    /// A divergence witness, when present, is a genuine τ-lasso.
    #[test]
    fn witness_is_well_formed(lts in arb_lts()) {
        if let Some(lasso) = divergence_witness(&lts) {
            prop_assert!(!lasso.cycle.is_empty());
            // Consecutive and closing.
            let first = lasso.cycle.first().unwrap().0;
            let last = lasso.cycle.last().unwrap().2;
            prop_assert_eq!(first, last);
            for w in lasso.cycle.windows(2) {
                prop_assert_eq!(w[0].2, w[1].0);
            }
            // All cycle steps are internal.
            for (_, a, _) in &lasso.cycle {
                prop_assert!(!lts.is_visible(*a));
            }
            // Prefix connects initial to the knot.
            if let Some((s, _, _)) = lasso.prefix.first() {
                prop_assert_eq!(*s, lts.initial());
            } else {
                prop_assert_eq!(lasso.knot(), lts.initial());
            }
            for w in lasso.prefix.windows(2) {
                prop_assert_eq!(w[0].2, w[1].0);
            }
        }
    }

    /// Theorem 5.3: refinement verdicts on quotients agree with direct
    /// refinement between the original systems.
    #[test]
    fn quotient_refinement_agrees_with_direct(a in arb_lts(), b in arb_lts()) {
        let pa = partition(&a, Equivalence::Branching);
        let qa = quotient(&a, &pa);
        let pb = partition(&b, Equivalence::Branching);
        let qb = quotient(&b, &pb);
        prop_assert_eq!(
            trace_refines(&qa.lts, &qb.lts).holds,
            trace_refines(&a, &b).holds
        );
    }

    /// Theorem 4.3: the fixpoint of the k-trace hierarchy coincides with
    /// branching bisimilarity.
    #[test]
    fn ktrace_fixpoint_is_branching(lts in arb_lts()) {
        let limits = KtraceLimits::default();
        if let Ok(Some(k)) = cap(&lts, 40, limits) {
            let pk = ktrace_partition(&lts, k, limits).unwrap();
            let pb = partition(&lts, Equivalence::Branching);
            for a in lts.states() {
                for b in lts.states() {
                    prop_assert_eq!(
                        pk[a.index()] == pk[b.index()],
                        pb.same_block(a, b)
                    );
                }
            }
        }
    }

    /// A τ-cycle is an LTL lock-freedom violation (the converse need not
    /// hold on arbitrary LTSs, where visible non-return cycles also starve).
    #[test]
    fn tau_cycle_violates_ltl_lock_freedom(lts in arb_lts()) {
        if has_tau_cycle(&lts) {
            let r = check(&lts, &lock_freedom());
            prop_assert!(!r.holds);
            prop_assert!(r.counterexample.is_some());
        }
    }

    /// The divergence-preserving quotient is always ≈div-bisimilar to the
    /// original system (unlike the plain quotient, which loses divergence).
    #[test]
    fn div_quotient_is_div_bisimilar(lts in arb_lts()) {
        let dq = div_quotient(&lts);
        prop_assert!(bisimilar(&lts, &dq.lts, Equivalence::BranchingDiv));
        prop_assert_eq!(has_tau_cycle(&lts), has_tau_cycle(&dq.lts));
    }

    /// Random LTSs label every action with thread 1, so a τ-cycle exists
    /// exactly when thread 1 has a starvation witness; and any starvation
    /// witness is in particular a divergence.
    #[test]
    fn starvation_agrees_with_divergence(lts in arb_lts()) {
        let starved = starvation_witness(&lts, ThreadId(1)).is_some();
        prop_assert_eq!(starved, has_tau_cycle(&lts));
        prop_assert!(starvation_witness(&lts, ThreadId(9)).is_none());
    }

    /// Trace refinement is reflexive and transitive on random triples.
    #[test]
    fn refinement_is_a_preorder(a in arb_lts(), b in arb_lts(), c in arb_lts()) {
        prop_assert!(trace_refines(&a, &a).holds);
        let ab = trace_refines(&a, &b).holds;
        let bc = trace_refines(&b, &c).holds;
        if ab && bc {
            prop_assert!(trace_refines(&a, &c).holds);
        }
    }

    /// Bisimilar systems are trace equivalent (but not vice versa).
    #[test]
    fn bisimilarity_implies_trace_equivalence(a in arb_lts(), b in arb_lts()) {
        if bisimilar(&a, &b, Equivalence::Branching) {
            prop_assert!(trace_equivalent(&a, &b));
        }
    }
}
