//! Property-based tests of the equivalence-checking stack on random LTSs.
//!
//! These validate the paper's structural theorems on arbitrary systems, not
//! just the benchmark algorithms: quotient trace preservation (Theorem
//! 5.2), the lattice of equivalences, idempotence of quotienting, the
//! divergence characterizations behind Theorem 5.9, and the coincidence of
//! the k-trace hierarchy's fixpoint with branching bisimilarity
//! (Theorem 4.3).
//!
//! The harness is a deterministic seeded sweep: each property runs over a
//! fixed set of seeds, and [`random_lts`] derives the system from the seed.
//! (The `proptest` crate is unavailable in the build environment; this
//! reimplements the shrink-free core of the same discipline.)

use bbverify::bisim::{
    bisimilar, div_quotient, divergence_witness, has_tau_cycle, partition, quotient,
    starvation_witness, Equivalence,
};
use bbverify::ktrace::{cap, ktrace_partition, KtraceLimits};
use bbverify::lts::ThreadId;
use bbverify::lts::{random_lts, Lts, RandomLtsConfig};
use bbverify::ltl::{check, lock_freedom};
use bbverify::refine::{trace_equivalent, trace_refines};

/// Number of random systems each property is checked on.
const CASES: u64 = 64;

/// SplitMix64 — derives independent parameters from a case index.
fn splitmix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e3779b97f4a7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d049bb133111eb);
    x ^ (x >> 31)
}

/// The equivalent of the old proptest strategy: seed, 2..25 states,
/// 1..50 transitions, 1..4 visible letters, 0..90% τ.
fn arb_lts(case: u64) -> Lts {
    let r0 = splitmix(case);
    let r1 = splitmix(r0);
    let r2 = splitmix(r1);
    let r3 = splitmix(r2);
    let r4 = splitmix(r3);
    random_lts(
        r0 % 10_000,
        RandomLtsConfig {
            num_states: 2 + (r1 % 23) as usize,
            num_transitions: 1 + (r2 % 49) as usize,
            num_visible_letters: 1 + (r3 % 3) as usize,
            tau_percent: (r4 % 90) as u8,
        },
    )
}

/// Runs `f` over the seeded sweep, labeling failures with the case index.
fn for_each_lts(f: impl Fn(&Lts)) {
    for case in 0..CASES {
        f(&arb_lts(case));
    }
}

/// Like [`for_each_lts`] but with two independent systems per case.
fn for_each_pair(f: impl Fn(&Lts, &Lts)) {
    for case in 0..CASES {
        f(&arb_lts(case), &arb_lts(case + 100_000));
    }
}

/// Theorem 5.2 core: quotienting under ≈ preserves the trace set.
#[test]
fn quotient_preserves_traces() {
    for_each_lts(|lts| {
        let p = partition(lts, Equivalence::Branching);
        let q = quotient(lts, &p);
        assert!(trace_equivalent(lts, &q.lts));
    });
}

/// The original system and its ≈-quotient are branching bisimilar.
#[test]
fn quotient_is_branching_bisimilar() {
    for_each_lts(|lts| {
        let p = partition(lts, Equivalence::Branching);
        let q = quotient(lts, &p);
        assert!(bisimilar(lts, &q.lts, Equivalence::Branching));
    });
}

/// Quotienting is idempotent: the quotient is already minimal.
#[test]
fn quotient_is_idempotent() {
    for_each_lts(|lts| {
        let p = partition(lts, Equivalence::Branching);
        let q = quotient(lts, &p);
        let p2 = partition(&q.lts, Equivalence::Branching);
        assert_eq!(p2.num_blocks(), q.lts.num_states());
    });
}

/// Equivalence lattice: strong ⊆ ≈div ⊆ ≈ ⊆ ~w (as relations), i.e.
/// each partition refines the next.
#[test]
fn equivalence_lattice() {
    for_each_lts(|lts| {
        let strong = partition(lts, Equivalence::Strong);
        let bdiv = partition(lts, Equivalence::BranchingDiv);
        let branching = partition(lts, Equivalence::Branching);
        let weak = partition(lts, Equivalence::Weak);
        assert!(strong.refines(&bdiv), "strong refines ≈div");
        assert!(bdiv.refines(&branching), "≈div refines ≈");
        assert!(branching.refines(&weak), "≈ refines ~w");
    });
}

/// Theorem 5.9 mechanics: Δ ≈div Δ/≈ holds iff Δ has no reachable
/// τ-cycle, and the divergence witness agrees.
#[test]
fn divergence_characterization() {
    for_each_lts(|lts| {
        let p = partition(lts, Equivalence::Branching);
        let q = quotient(lts, &p);
        let div_bisim = bisimilar(lts, &q.lts, Equivalence::BranchingDiv);
        let cycle = has_tau_cycle(lts);
        assert_eq!(div_bisim, !cycle);
        assert_eq!(divergence_witness(lts).is_some(), cycle);
    });
}

/// Lemma 5.7: the ≈-quotient never contains a τ-cycle.
#[test]
fn quotient_has_no_tau_cycle() {
    for_each_lts(|lts| {
        let p = partition(lts, Equivalence::Branching);
        let q = quotient(lts, &p);
        assert!(!has_tau_cycle(&q.lts));
    });
}

/// A divergence witness, when present, is a genuine τ-lasso.
#[test]
fn witness_is_well_formed() {
    for_each_lts(|lts| {
        if let Some(lasso) = divergence_witness(lts) {
            assert!(!lasso.cycle.is_empty());
            // Consecutive and closing.
            let first = lasso.cycle.first().unwrap().0;
            let last = lasso.cycle.last().unwrap().2;
            assert_eq!(first, last);
            for w in lasso.cycle.windows(2) {
                assert_eq!(w[0].2, w[1].0);
            }
            // All cycle steps are internal.
            for (_, a, _) in &lasso.cycle {
                assert!(!lts.is_visible(*a));
            }
            // Prefix connects initial to the knot.
            if let Some((s, _, _)) = lasso.prefix.first() {
                assert_eq!(*s, lts.initial());
            } else {
                assert_eq!(lasso.knot(), lts.initial());
            }
            for w in lasso.prefix.windows(2) {
                assert_eq!(w[0].2, w[1].0);
            }
        }
    });
}

/// Theorem 5.3: refinement verdicts on quotients agree with direct
/// refinement between the original systems.
#[test]
fn quotient_refinement_agrees_with_direct() {
    for_each_pair(|a, b| {
        let pa = partition(a, Equivalence::Branching);
        let qa = quotient(a, &pa);
        let pb = partition(b, Equivalence::Branching);
        let qb = quotient(b, &pb);
        assert_eq!(
            trace_refines(&qa.lts, &qb.lts).holds,
            trace_refines(a, b).holds
        );
    });
}

/// Theorem 4.3: the fixpoint of the k-trace hierarchy coincides with
/// branching bisimilarity.
#[test]
fn ktrace_fixpoint_is_branching() {
    for_each_lts(|lts| {
        let limits = KtraceLimits::default();
        if let Ok(Some(k)) = cap(lts, 40, limits) {
            let pk = ktrace_partition(lts, k, limits).unwrap();
            let pb = partition(lts, Equivalence::Branching);
            for a in lts.states() {
                for b in lts.states() {
                    assert_eq!(pk[a.index()] == pk[b.index()], pb.same_block(a, b));
                }
            }
        }
    });
}

/// A τ-cycle is an LTL lock-freedom violation (the converse need not
/// hold on arbitrary LTSs, where visible non-return cycles also starve).
#[test]
fn tau_cycle_violates_ltl_lock_freedom() {
    for_each_lts(|lts| {
        if has_tau_cycle(lts) {
            let r = check(lts, &lock_freedom());
            assert!(!r.holds);
            assert!(r.counterexample.is_some());
        }
    });
}

/// The divergence-preserving quotient is always ≈div-bisimilar to the
/// original system (unlike the plain quotient, which loses divergence).
#[test]
fn div_quotient_is_div_bisimilar() {
    for_each_lts(|lts| {
        let dq = div_quotient(lts);
        assert!(bisimilar(lts, &dq.lts, Equivalence::BranchingDiv));
        assert_eq!(has_tau_cycle(lts), has_tau_cycle(&dq.lts));
    });
}

/// Random LTSs label every action with thread 1, so a τ-cycle exists
/// exactly when thread 1 has a starvation witness; and any starvation
/// witness is in particular a divergence.
#[test]
fn starvation_agrees_with_divergence() {
    for_each_lts(|lts| {
        let starved = starvation_witness(lts, ThreadId(1)).is_some();
        assert_eq!(starved, has_tau_cycle(lts));
        assert!(starvation_witness(lts, ThreadId(9)).is_none());
    });
}

/// Trace refinement is reflexive and transitive on random triples.
#[test]
fn refinement_is_a_preorder() {
    for case in 0..CASES {
        let a = arb_lts(case);
        let b = arb_lts(case + 100_000);
        let c = arb_lts(case + 200_000);
        assert!(trace_refines(&a, &a).holds);
        let ab = trace_refines(&a, &b).holds;
        let bc = trace_refines(&b, &c).holds;
        if ab && bc {
            assert!(trace_refines(&a, &c).holds);
        }
    }
}

/// Bisimilar systems are trace equivalent (but not vice versa).
#[test]
fn bisimilarity_implies_trace_equivalence() {
    for_each_pair(|a, b| {
        if bisimilar(a, b, Equivalence::Branching) {
            assert!(trace_equivalent(a, b));
        }
    });
}
