//! Differential equivalence harness for the `bb-reduce` subsystem.
//!
//! For **every** algorithm in `crates/algorithms` (the full `bbv list`
//! roster) this test builds the state space twice — unreduced and with the
//! reduction layers enabled — and asserts that
//!
//! 1. the reduced LTS is divergence-sensitive branching bisimilar (`≈div`)
//!    to the full one (for the implementation *and* the spec), and
//! 2. the verification pipeline returns identical verdicts on both,
//!    including on the three known-buggy case studies, whose *failures*
//!    must survive reduction unchanged.
//!
//! A final test checks that reduction composes with the parallel engine:
//! the reduced LTS is byte-identical at any `--jobs` count.

use bbverify::algorithms::{
    ccas::Ccas, coarse::CoarseLocked, dglm_queue::DglmQueue, fine_list::FineList, hm_list::HmList,
    hsy_stack::HsyStack, hw_queue::HwQueue, lazy_list::LazyList, ms_queue::MsQueue,
    newcas::NewCas, optimistic_list::OptimisticList, rdcss::Rdcss, specs::*, treiber::Treiber,
    treiber_hp::TreiberHp, treiber_hp_fu::TreiberHpFu, two_lock_queue::TwoLockQueue,
};
use bbverify::lts::{to_aut, ExploreOptions, Jobs};
use bbverify::reduce::{differential_check, explore_reduced, DifferentialReport, ReduceMode};
use bbverify::sim::{AtomicSpec, Bound, ObjectAlgorithm, SequentialSpec};

/// Runs the differential check at `mode` and asserts it passed.
fn check<A: ObjectAlgorithm, S: SequentialSpec>(
    alg: &A,
    spec: &AtomicSpec<S>,
    threads: u8,
    ops: u32,
    lock_freedom: bool,
    mode: ReduceMode,
) -> DifferentialReport {
    let r = differential_check(
        alg,
        spec,
        Bound::new(threads, ops),
        mode,
        Jobs::available(),
        lock_freedom,
    )
    .expect("exploration fits in the default budget");
    assert!(r.passed(), "{}", r.render());
    r
}

/// One differential case: `≈div` + verdict equality at `--reduce full`.
/// The individual layers are exercised on representative algorithms below
/// and by the `bb-reduce` unit tests; running every algorithm at every mode
/// would triple the runtime for little extra coverage.
macro_rules! case {
    ($test:ident, $alg:expr, $spec:expr, $t:expr, $o:expr, lock_freedom = $lf:expr) => {
        #[test]
        fn $test() {
            check(&$alg, &AtomicSpec::new($spec), $t, $o, $lf, ReduceMode::Full);
        }
    };
}

case!(treiber, Treiber::new(&[1, 2]), SeqStack::new(&[1, 2]), 2, 2, lock_freedom = true);
case!(treiber_hp, TreiberHp::new(&[1], 2), SeqStack::new(&[1]), 2, 2, lock_freedom = true);
case!(ms_queue, MsQueue::new(&[1, 2]), SeqQueue::new(&[1, 2]), 2, 2, lock_freedom = true);
case!(dglm_queue, DglmQueue::new(&[1, 2]), SeqQueue::new(&[1, 2]), 2, 2, lock_freedom = true);
case!(ccas, Ccas::new(2), SeqCcas::new(2), 2, 2, lock_freedom = true);
case!(rdcss, Rdcss::new(2), SeqRdcss::new(2), 2, 1, lock_freedom = true);
case!(newcas, NewCas::new(2), SeqRegister::new(2), 2, 2, lock_freedom = true);
case!(hm_list, HmList::revised(&[1]), SeqSet::new(&[1]), 2, 2, lock_freedom = true);
case!(hsy_stack, HsyStack::new(&[1]), SeqStack::new(&[1]), 2, 2, lock_freedom = true);
case!(lazy_list, LazyList::new(&[1]), SeqSet::new(&[1]), 2, 2, lock_freedom = false);
case!(optimistic_list, OptimisticList::new(&[1]), SeqSet::new(&[1]), 2, 2, lock_freedom = false);
case!(fine_list, FineList::new(&[1]), SeqSet::new(&[1]), 2, 2, lock_freedom = false);
case!(two_lock_queue, TwoLockQueue::new(&[1]), SeqQueue::new(&[1]), 2, 2, lock_freedom = false);
case!(coarse_stack, CoarseLocked::new(SeqStack::new(&[1])), SeqStack::new(&[1]), 2, 2, lock_freedom = false);
case!(coarse_queue, CoarseLocked::new(SeqQueue::new(&[1])), SeqQueue::new(&[1]), 2, 2, lock_freedom = false);
case!(coarse_set, CoarseLocked::new(SeqSet::new(&[1])), SeqSet::new(&[1]), 2, 2, lock_freedom = false);

/// The three buggy case studies must *stay* buggy under reduction: a
/// reduction that silently erased a counterexample would pass `≈div`-less
/// pipelines while breaking soundness in the most damaging way.
#[test]
fn hw_queue_lock_freedom_bug_survives_reduction() {
    let r = check(
        &HwQueue::for_bound(&[1], 3, 1),
        &AtomicSpec::new(SeqQueue::new(&[1])),
        3,
        1,
        true,
        ReduceMode::Full,
    );
    assert!(r.full_linearizable && r.reduced_linearizable);
    assert_eq!(r.full_lock_free, Some(false));
    assert_eq!(r.reduced_lock_free, Some(false));
}

#[test]
fn treiber_hp_fu_bug_survives_reduction() {
    let r = check(
        &TreiberHpFu::new(&[1], 2),
        &AtomicSpec::new(SeqStack::new(&[1])),
        2,
        2,
        true,
        ReduceMode::Full,
    );
    assert_eq!(r.full_lock_free, Some(false));
    assert_eq!(r.reduced_lock_free, Some(false));
}

#[test]
fn hm_list_buggy_violation_survives_reduction() {
    let r = check(
        &HmList::buggy(&[1]),
        &AtomicSpec::new(SeqSet::new(&[1])),
        2,
        2,
        false,
        ReduceMode::Full,
    );
    assert!(!r.full_linearizable && !r.reduced_linearizable);
}

/// The individual layers are each sound on their own for representative
/// algorithms of each annotation shape: CAS-loop with private allocation
/// (Treiber), per-thread shared slots (TreiberHp), lock ownership (coarse).
#[test]
fn individual_layers_on_representative_algorithms() {
    for mode in [ReduceMode::Sym, ReduceMode::Por] {
        check(&Treiber::new(&[1]), &AtomicSpec::new(SeqStack::new(&[1])), 2, 2, true, mode);
        check(&TreiberHp::new(&[1], 2), &AtomicSpec::new(SeqStack::new(&[1])), 2, 2, true, mode);
        check(
            &CoarseLocked::new(SeqSet::new(&[1])),
            &AtomicSpec::new(SeqSet::new(&[1])),
            2,
            2,
            false,
            mode,
        );
    }
}

/// Reduction composes deterministically with `--jobs N`: the reduced LTS is
/// byte-identical regardless of worker count, for an algorithm exercising
/// every reducer feature (ample chains, proviso fallbacks, symmetry with
/// per-thread slot renaming).
#[test]
fn reduced_exploration_is_deterministic_across_jobs() {
    let alg = TreiberHp::new(&[1], 2);
    let bound = Bound::new(2, 2);
    let (base, stats) =
        explore_reduced(&alg, bound, ReduceMode::Full, &ExploreOptions::new()).unwrap();
    assert!(stats.ample_states > 0, "reducer must actually fire: {stats}");
    for jobs in [2, 4, 8] {
        let (par, _) = explore_reduced(
            &alg,
            bound,
            ReduceMode::Full,
            &ExploreOptions::new().with_jobs(Jobs::new(jobs)),
        )
        .unwrap();
        assert_eq!(
            to_aut(&base),
            to_aut(&par),
            "reduced LTS must be identical at {jobs} worker threads"
        );
    }
}
