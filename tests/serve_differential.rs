//! The serve differential guarantee: a job served by the daemon produces
//! stdout, artifacts and exit code **byte-identical** to a direct CLI run
//! of the same spec — at one worker and at four, cold and warm.
//!
//! These tests drive the real binary end to end: they start `bbv serve`,
//! submit with `bbv submit`, and diff against direct `bbv` invocations.

use std::path::{Path, PathBuf};
use std::process::{Child, Command, Output, Stdio};
use std::time::{Duration, Instant};

fn bbv() -> &'static str {
    env!("CARGO_BIN_EXE_bbv")
}

fn tmp(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("bb-serve-diff-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    std::fs::create_dir_all(&d).unwrap();
    d
}

/// A running daemon, killed and cleaned up on drop.
struct Daemon {
    child: Child,
    dir: PathBuf,
}

impl Daemon {
    fn start(dir: &Path, args: &[&str]) -> Daemon {
        let child = Command::new(bbv())
            .arg("serve")
            .arg("--dir")
            .arg(dir)
            .args(args)
            .stdout(Stdio::null())
            .stderr(Stdio::null())
            .spawn()
            .expect("spawn bbv serve");
        let addr_file = dir.join("serve.addr");
        let deadline = Instant::now() + Duration::from_secs(30);
        while !addr_file.exists() {
            assert!(Instant::now() < deadline, "daemon never published serve.addr");
            std::thread::sleep(Duration::from_millis(20));
        }
        Daemon { child, dir: dir.to_path_buf() }
    }

    /// Asks the daemon to finish its queue and exit; waits for it.
    fn drain(mut self) {
        let ok = Command::new(bbv())
            .args(["drain", "--dir"])
            .arg(&self.dir)
            .output()
            .map(|o| o.status.success())
            .unwrap_or(false);
        if ok {
            let deadline = Instant::now() + Duration::from_secs(60);
            while Instant::now() < deadline {
                if let Ok(Some(_)) = self.child.try_wait() {
                    return;
                }
                std::thread::sleep(Duration::from_millis(30));
            }
        }
        let _ = self.child.kill();
    }
}

impl Drop for Daemon {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

fn run_bbv(args: &[&str]) -> Output {
    Command::new(bbv()).args(args).output().expect("run bbv")
}

fn stdout_of(o: &Output) -> String {
    String::from_utf8_lossy(&o.stdout).into_owned()
}

/// The roster subset the differential tests sweep: fast bounds, covering
/// proved, lin-refuted and lock-freedom-refuted outcomes.
const CASES: &[&[&str]] = &[
    &["verify", "treiber", "--threads", "2", "--ops", "1"],
    &["verify", "ms-queue", "--threads", "2", "--ops", "1"],
    &["verify", "hm-list-buggy", "--threads", "2", "--ops", "1"],
    &["verify", "hw-queue", "--threads", "2", "--ops", "1"],
    &["verify", "ccas", "--threads", "2", "--ops", "1", "--no-lock-freedom"],
];

fn assert_case_matches(dir: &Path, case: &[&str]) {
    let direct = run_bbv(case);
    let mut submit_args: Vec<&str> = vec!["submit"];
    submit_args.extend_from_slice(case);
    submit_args.push("--dir");
    let dir_s = dir.to_str().unwrap();
    submit_args.push(dir_s);
    let served = run_bbv(&submit_args);
    assert_eq!(
        stdout_of(&served),
        stdout_of(&direct),
        "served stdout differs from direct for {case:?}\nstderr: {}",
        String::from_utf8_lossy(&served.stderr)
    );
    assert_eq!(
        served.status.code(),
        direct.status.code(),
        "served exit code differs from direct for {case:?}"
    );
}

#[test]
fn served_results_match_direct_runs_one_worker() {
    let dir = tmp("w1");
    let daemon = Daemon::start(&dir, &["--workers", "1"]);
    for case in CASES {
        assert_case_matches(&dir, case);
    }
    daemon.drain();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn served_results_match_direct_runs_four_workers_concurrent() {
    let dir = tmp("w4");
    let daemon = Daemon::start(&dir, &["--workers", "4"]);
    // All submissions in flight at once; each must still match its direct
    // run exactly (results are per-job, never interleaved).
    std::thread::scope(|s| {
        for case in CASES {
            let dir = dir.clone();
            s.spawn(move || assert_case_matches(&dir, case));
        }
    });
    daemon.drain();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn served_quotient_artifacts_are_byte_identical() {
    let dir = tmp("aut");
    let daemon = Daemon::start(&dir, &["--workers", "1"]);
    let direct_aut = dir.join("direct.aut");
    let served_aut = dir.join("served.aut");
    let direct = run_bbv(&[
        "quotient", "treiber", "--threads", "2", "--ops", "1",
        "--aut", direct_aut.to_str().unwrap(),
    ]);
    let served = run_bbv(&[
        "submit", "quotient", "treiber", "--threads", "2", "--ops", "1",
        "--aut", served_aut.to_str().unwrap(),
        "--dir", dir.to_str().unwrap(),
    ]);
    assert_eq!(direct.status.code(), Some(0));
    assert_eq!(served.status.code(), Some(0));
    // stdout carries the path it wrote to, which legitimately differs; the
    // artifact bytes must not.
    let direct_bytes = std::fs::read(&direct_aut).unwrap();
    let served_bytes = std::fs::read(&served_aut).unwrap();
    assert_eq!(direct_bytes, served_bytes, "served .aut differs from direct");
    assert!(!direct_bytes.is_empty());
    daemon.drain();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn second_pass_is_served_entirely_from_cache() {
    let dir = tmp("warm");
    let cache = dir.join("cache");
    let daemon = Daemon::start(
        &dir,
        &["--workers", "2", "--cache", cache.to_str().unwrap()],
    );
    let dir_s = dir.to_str().unwrap();

    let cold: Vec<String> = CASES
        .iter()
        .map(|case| {
            let mut args: Vec<&str> = vec!["submit"];
            args.extend_from_slice(case);
            args.extend_from_slice(&["--dir", dir_s]);
            stdout_of(&run_bbv(&args))
        })
        .collect();

    let warm: Vec<String> = CASES
        .iter()
        .map(|case| {
            let mut args: Vec<&str> = vec!["submit"];
            args.extend_from_slice(case);
            args.extend_from_slice(&["--dir", dir_s]);
            stdout_of(&run_bbv(&args))
        })
        .collect();
    assert_eq!(cold, warm, "warm pass must replay the cold bytes");

    // The daemon's own counters must show the whole second pass was
    // admission cache hits (never queued, never recomputed).
    let stats = run_bbv(&["stats", "--dir", dir_s]);
    let v = bb_obs::json::parse(stdout_of(&stats).trim()).expect("stats reply parses");
    let admission_hits = v
        .get("admission")
        .and_then(|a| a.get("cache_hits"))
        .and_then(|n| n.as_u64())
        .expect("stats carries admission.cache_hits");
    assert_eq!(
        admission_hits,
        CASES.len() as u64,
        "every warm submission must hit the cache at admission: {}",
        v.render()
    );
    let computed = v
        .get("served")
        .and_then(|sv| sv.get("computed"))
        .and_then(|n| n.as_u64())
        .expect("stats carries served.computed");
    assert_eq!(computed, CASES.len() as u64, "cold pass computed each case once");
    let cache_stats = v.get("cache").expect("stats embeds bb-cache/v1 stats");
    assert_eq!(
        cache_stats.get("schema").and_then(|s| s.as_str()),
        Some("bb-cache/v1")
    );
    assert_eq!(
        cache_stats.get("entries").and_then(|n| n.as_u64()),
        Some(CASES.len() as u64)
    );
    daemon.drain();
    let _ = std::fs::remove_dir_all(&dir);
}
