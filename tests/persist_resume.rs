//! Crash/resume equivalence: a `bbv` run that dies mid-pipeline — by an
//! injected deterministic fault, a real SIGKILL, or a budget trip — must,
//! after `bbv resume`, converge to the byte-identical verdict of an
//! uninterrupted run (timings masked), at any `--jobs` and under either
//! refinement engine. Corrupt checkpoints must degrade to recomputation,
//! never to a panic or a wrong answer.

use std::path::{Path, PathBuf};
use std::process::{Command, Output};
use std::time::{Duration, Instant};

fn bbv(args: &[&str], envs: &[(&str, &str)]) -> Output {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_bbv"));
    cmd.args(args);
    for (k, v) in envs {
        cmd.env(k, v);
    }
    cmd.output().expect("bbv runs")
}

fn stdout_of(out: &Output) -> String {
    String::from_utf8_lossy(&out.stdout).into_owned()
}

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("bbv-persist-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// True for tokens like `862.8ms`, `1.2s`, `541µs`, `2m` — wall-clock
/// renderings of `Duration`.
fn is_duration_token(tok: &str) -> bool {
    for unit in ["ns", "µs", "us", "ms", "s", "m"] {
        if let Some(num) = tok.strip_suffix(unit) {
            if !num.is_empty() && num.chars().all(|c| c.is_ascii_digit() || c == '.') {
                return true;
            }
        }
    }
    false
}

/// Replaces duration tokens with `<T>` so byte-diffs compare everything
/// except timing (the only run-to-run nondeterminism in `bbv` output).
fn mask_durations(text: &str) -> String {
    text.lines()
        .map(|line| {
            line.split(' ')
                .map(|tok| if is_duration_token(tok) { "<T>" } else { tok })
                .collect::<Vec<_>>()
                .join(" ")
        })
        .collect::<Vec<_>>()
        .join("\n")
}

#[test]
fn fault_crash_then_resume_is_byte_identical_across_jobs_and_engines() {
    for (jobs, refine) in [("1", "full"), ("1", "incremental"), ("4", "full"), ("4", "incremental")]
    {
        let base = bbv(
            &[
                "verify", "ms-queue", "--threads", "2", "--ops", "2", "--timeout", "120s",
                "--jobs", jobs, "--refine", refine,
            ],
            &[],
        );
        assert_eq!(base.status.code(), Some(0), "{}", String::from_utf8_lossy(&base.stderr));

        let ckpt = tmp_dir(&format!("crash-{jobs}-{refine}"));
        let crashed = bbv(
            &[
                "verify", "ms-queue", "--threads", "2", "--ops", "2", "--timeout", "120s",
                "--jobs", jobs, "--refine", refine,
                "--checkpoint", ckpt.to_str().unwrap(), "--checkpoint-every", "1",
            ],
            &[("BB_FAULT", "round-abort:2")],
        );
        assert!(
            !crashed.status.success(),
            "round-abort must kill the run: {}",
            stdout_of(&crashed)
        );
        assert!(
            ckpt.join("checkpoint.bbp").exists(),
            "the aborted run must leave a checkpoint behind"
        );

        let resumed = bbv(&["resume", ckpt.to_str().unwrap()], &[]);
        assert_eq!(
            resumed.status.code(),
            Some(0),
            "resume must converge (jobs={jobs}, refine={refine}): {}",
            String::from_utf8_lossy(&resumed.stderr)
        );
        assert_eq!(
            mask_durations(&stdout_of(&resumed)),
            mask_durations(&stdout_of(&base)),
            "resumed verdict must be byte-identical (jobs={jobs}, refine={refine})"
        );
        let _ = std::fs::remove_dir_all(&ckpt);
    }
}

#[test]
fn sigkill_mid_run_then_resume_matches_uninterrupted() {
    let base = bbv(
        &["verify", "ms-queue", "--threads", "2", "--ops", "2", "--timeout", "120s", "--jobs", "1"],
        &[],
    );
    assert_eq!(base.status.code(), Some(0));

    let ckpt = tmp_dir("sigkill");
    let mut child = Command::new(env!("CARGO_BIN_EXE_bbv"))
        .args([
            "verify", "ms-queue", "--threads", "2", "--ops", "2", "--timeout", "120s",
            "--jobs", "1", "--checkpoint", ckpt.to_str().unwrap(), "--checkpoint-every", "1",
        ])
        .stdout(std::process::Stdio::null())
        .stderr(std::process::Stdio::null())
        .spawn()
        .expect("bbv spawns");

    // Kill as soon as the first checkpoint cut lands on disk. If the run
    // wins the race and finishes first, the resume below degenerates to a
    // fully-seeded replay — still a valid identity check.
    let deadline = Instant::now() + Duration::from_secs(120);
    while !ckpt.join("checkpoint.bbp").exists() && Instant::now() < deadline {
        if child.try_wait().expect("try_wait").is_some() {
            break;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    let _ = child.kill();
    let _ = child.wait();
    assert!(
        ckpt.join("checkpoint.bbp").exists(),
        "a checkpoint must exist before or after the kill"
    );

    let resumed = bbv(&["resume", ckpt.to_str().unwrap()], &[]);
    assert_eq!(
        resumed.status.code(),
        Some(0),
        "{}",
        String::from_utf8_lossy(&resumed.stderr)
    );
    assert_eq!(
        mask_durations(&stdout_of(&resumed)),
        mask_durations(&stdout_of(&base)),
        "post-SIGKILL resume must reproduce the uninterrupted verdict"
    );
    let _ = std::fs::remove_dir_all(&ckpt);
}

#[test]
fn corrupt_checkpoint_recomputes_cleanly_and_resume_refuses() {
    let ckpt = tmp_dir("corrupt");
    std::fs::create_dir_all(&ckpt).unwrap();
    std::fs::write(ckpt.join("checkpoint.bbp"), b"BBPSgarbage-not-a-checkpoint").unwrap();

    // A verify over a corrupt checkpoint recomputes from scratch...
    let base = bbv(&["verify", "treiber", "--threads", "2", "--ops", "1", "--domain", "1"], &[]);
    let run = bbv(
        &[
            "verify", "treiber", "--threads", "2", "--ops", "1", "--domain", "1",
            "--checkpoint", ckpt.to_str().unwrap(),
        ],
        &[],
    );
    assert_eq!(run.status.code(), Some(0), "{}", String::from_utf8_lossy(&run.stderr));
    assert_eq!(mask_durations(&stdout_of(&run)), mask_durations(&stdout_of(&base)));

    // ...and overwrites it with an intact one: resume now works.
    let resumed = bbv(&["resume", ckpt.to_str().unwrap()], &[]);
    assert_eq!(resumed.status.code(), Some(0));
    assert_eq!(mask_durations(&stdout_of(&resumed)), mask_durations(&stdout_of(&base)));

    // A resume of a *still*-corrupt checkpoint refuses with a clean usage
    // error, not a panic.
    let ckpt2 = tmp_dir("corrupt2");
    std::fs::create_dir_all(&ckpt2).unwrap();
    std::fs::write(ckpt2.join("checkpoint.bbp"), b"garbage").unwrap();
    let refused = bbv(&["resume", ckpt2.to_str().unwrap()], &[]);
    assert_eq!(refused.status.code(), Some(3));
    assert!(
        String::from_utf8_lossy(&refused.stderr).contains("nothing to resume"),
        "{}",
        String::from_utf8_lossy(&refused.stderr)
    );
    let _ = std::fs::remove_dir_all(&ckpt);
    let _ = std::fs::remove_dir_all(&ckpt2);
}

#[test]
fn checkpoint_write_fault_preserves_the_previous_checkpoint() {
    let ckpt = tmp_dir("wfault");
    let args = [
        "verify", "treiber", "--threads", "2", "--ops", "1", "--domain", "1",
        "--checkpoint", ckpt.to_str().unwrap(), "--checkpoint-every", "1",
    ];
    let first = bbv(&args, &[]);
    assert_eq!(first.status.code(), Some(0));
    let intact = std::fs::read(ckpt.join("checkpoint.bbp")).expect("checkpoint written");

    // Re-run with a fault that aborts the process inside the first atomic
    // write (after the temp file, before the rename): the previous
    // checkpoint must survive byte-for-byte.
    let faulted = bbv(&args, &[("BB_FAULT", "checkpoint-write:1")]);
    assert!(!faulted.status.success(), "checkpoint-write fault must abort the run");
    let after = std::fs::read(ckpt.join("checkpoint.bbp")).expect("checkpoint still present");
    assert_eq!(after, intact, "a torn write must never replace an intact checkpoint");

    // And the surviving checkpoint still resumes to the right verdict.
    let resumed = bbv(&["resume", ckpt.to_str().unwrap()], &[]);
    assert_eq!(resumed.status.code(), Some(0));
    assert_eq!(
        mask_durations(&stdout_of(&resumed)),
        mask_durations(&stdout_of(&first))
    );
    let _ = std::fs::remove_dir_all(&ckpt);
}

/// Satellite of the budget system: a mid-refinement budget trip (injected
/// via the deterministic `alloc-cap` fault) must (a) report the last
/// completed round's partition statistics in the inconclusive verdict, and
/// (b) leave a checkpoint that a fault-free resume completes to the exact
/// uninterrupted verdict, seeding the explored sections.
#[test]
fn refinement_budget_trip_reports_round_progress_and_resumes() {
    let base = bbv(
        &[
            "verify", "treiber", "--threads", "2", "--ops", "1", "--domain", "1",
            "--max-states", "1000000", "--no-fallback", "--jobs", "1",
        ],
        &[],
    );
    assert_eq!(base.status.code(), Some(0));

    // The alloc-cap hit count that lands inside partition refinement
    // depends on the exact exploration sizes, so scan a band; the serial
    // count sequence itself is deterministic.
    let mut exercised = false;
    for k in (200..700).step_by(10) {
        let ckpt = tmp_dir(&format!("trip-{k}"));
        let tripped = bbv(
            &[
                "verify", "treiber", "--threads", "2", "--ops", "1", "--domain", "1",
                "--max-states", "1000000", "--no-fallback", "--jobs", "1",
                "--checkpoint", ckpt.to_str().unwrap(), "--checkpoint-every", "1",
            ],
            &[("BB_FAULT", &format!("alloc-cap:{k}"))],
        );
        let text = stdout_of(&tripped);
        if tripped.status.code() == Some(2) && text.contains("last completed round") {
            assert!(text.contains("stage exhausted"), "{text}");
            exercised = true;
            let resumed = bbv(&["resume", ckpt.to_str().unwrap()], &[]);
            assert_eq!(
                resumed.status.code(),
                Some(0),
                "{}",
                String::from_utf8_lossy(&resumed.stderr)
            );
            assert_eq!(
                mask_durations(&stdout_of(&resumed)),
                mask_durations(&stdout_of(&base)),
                "budget-tripped resume must reproduce the uninterrupted verdict"
            );
            let _ = std::fs::remove_dir_all(&ckpt);
            break;
        }
        let _ = std::fs::remove_dir_all(&ckpt);
    }
    assert!(
        exercised,
        "no alloc-cap count in [200,700) tripped refinement with round progress"
    );
}

/// Reducer fault smoke: for every `--reduce` mode, a run crashed by an
/// injected fault and then resumed must match its own uninterrupted
/// baseline byte-for-byte, and its verdict marks must match the unreduced
/// run (reduction soundness survives a crash/resume cycle).
#[test]
fn reduced_runs_crash_resume_and_agree_with_unreduced() {
    let unreduced = bbv(&["verify", "treiber", "--threads", "2", "--ops", "1", "--domain", "1"], &[]);
    assert_eq!(unreduced.status.code(), Some(0));
    let marks = |s: &str| {
        (
            s.contains("lin=✓"),
            s.contains("lock-free=✓"),
        )
    };
    let unreduced_marks = marks(&stdout_of(&unreduced));

    for mode in ["sym", "por", "full"] {
        let args = [
            "verify", "treiber", "--threads", "2", "--ops", "1", "--domain", "1",
            "--reduce", mode,
        ];
        let base = bbv(&args, &[]);
        assert_eq!(base.status.code(), Some(0), "reduce={mode}");

        let ckpt = tmp_dir(&format!("reduce-{mode}"));
        let mut crash_args: Vec<&str> = args.to_vec();
        let ckpt_str = ckpt.to_str().unwrap().to_owned();
        crash_args.extend(["--checkpoint", &ckpt_str, "--checkpoint-every", "1"]);
        let crashed = bbv(&crash_args, &[("BB_FAULT", "round-abort:1")]);
        assert!(!crashed.status.success(), "reduce={mode}: fault must abort");
        assert!(ckpt.join("checkpoint.bbp").exists(), "reduce={mode}");

        let resumed = bbv(&["resume", &ckpt_str], &[]);
        assert_eq!(
            resumed.status.code(),
            Some(0),
            "reduce={mode}: {}",
            String::from_utf8_lossy(&resumed.stderr)
        );
        let resumed_text = stdout_of(&resumed);
        assert_eq!(
            mask_durations(&resumed_text),
            mask_durations(&stdout_of(&base)),
            "reduce={mode}: resumed run must match its uninterrupted baseline"
        );
        assert_eq!(
            marks(&resumed_text),
            unreduced_marks,
            "reduce={mode}: reduced verdict must agree with the unreduced one"
        );
        let _ = std::fs::remove_dir_all(&ckpt);
    }
}

/// The `mid-round` fault panics inside a refinement round (as opposed to
/// `round-abort`'s hard abort between rounds): the run must die nonzero,
/// and the checkpoint cut *before* the poisoned round must still resume to
/// the uninterrupted verdict.
#[test]
fn mid_round_panic_then_resume_matches_uninterrupted() {
    let base = bbv(&["verify", "treiber", "--threads", "2", "--ops", "2"], &[]);
    assert_eq!(base.status.code(), Some(0));

    let ckpt = tmp_dir("midround");
    let crashed = bbv(
        &[
            "verify", "treiber", "--threads", "2", "--ops", "2",
            "--checkpoint", ckpt.to_str().unwrap(), "--checkpoint-every", "1",
        ],
        &[("BB_FAULT", "mid-round:3")],
    );
    assert!(!crashed.status.success(), "mid-round panic must fail the run");
    assert!(ckpt.join("checkpoint.bbp").exists());

    let resumed = bbv(&["resume", ckpt.to_str().unwrap()], &[]);
    assert_eq!(
        resumed.status.code(),
        Some(0),
        "{}",
        String::from_utf8_lossy(&resumed.stderr)
    );
    assert_eq!(
        mask_durations(&stdout_of(&resumed)),
        mask_durations(&stdout_of(&base))
    );
    let _ = std::fs::remove_dir_all(&ckpt);
}

/// Crash/resume must also reproduce file artifacts: a quotient run killed
/// mid-refinement and resumed writes the byte-identical `.aut`.
#[test]
fn quotient_aut_after_crash_resume_is_byte_identical() {
    let aut_base = std::env::temp_dir().join(format!("bbv-rq-base-{}.aut", std::process::id()));
    let aut_res = std::env::temp_dir().join(format!("bbv-rq-res-{}.aut", std::process::id()));
    let base = bbv(
        &[
            "quotient", "ms-queue", "--threads", "2", "--ops", "2",
            "--aut", aut_base.to_str().unwrap(),
        ],
        &[],
    );
    assert_eq!(base.status.code(), Some(0), "{}", String::from_utf8_lossy(&base.stderr));

    let ckpt = tmp_dir("quotient-crash");
    let crashed = bbv(
        &[
            "quotient", "ms-queue", "--threads", "2", "--ops", "2",
            "--aut", aut_res.to_str().unwrap(),
            "--checkpoint", ckpt.to_str().unwrap(), "--checkpoint-every", "1",
        ],
        &[("BB_FAULT", "round-abort:2")],
    );
    assert!(!crashed.status.success());
    let _ = std::fs::remove_file(&aut_res);

    // The recorded argv carries the --aut path, so the resume writes it.
    let resumed = bbv(&["resume", ckpt.to_str().unwrap()], &[]);
    assert_eq!(
        resumed.status.code(),
        Some(0),
        "{}",
        String::from_utf8_lossy(&resumed.stderr)
    );
    // The "quotient written to <path>" lines name each invocation's own
    // --aut path; everything else must match byte-for-byte.
    let sans_paths = |s: &str| {
        s.lines()
            .filter(|l| !l.contains("written to"))
            .collect::<Vec<_>>()
            .join("\n")
    };
    assert_eq!(
        mask_durations(&sans_paths(&stdout_of(&resumed))),
        mask_durations(&sans_paths(&stdout_of(&base)))
    );
    let a_base = std::fs::read(&aut_base).expect("baseline .aut");
    let a_res = std::fs::read(&aut_res).expect("resumed .aut");
    assert_eq!(a_base, a_res, "resumed quotient .aut must be byte-identical");
    let _ = std::fs::remove_file(&aut_base);
    let _ = std::fs::remove_file(&aut_res);
    let _ = std::fs::remove_dir_all(&ckpt);
}

/// The recorded argv replays through the same CLI parser, so overrides
/// appended to `bbv resume` win over the recorded flags.
#[test]
fn resume_accepts_overrides_after_recorded_argv() {
    let ckpt = tmp_dir("override");
    let run = bbv(
        &[
            "verify", "ms-queue", "--threads", "2", "--ops", "2", "--max-states", "200",
            "--no-fallback", "--checkpoint", ckpt.to_str().unwrap(),
        ],
        &[],
    );
    assert_eq!(run.status.code(), Some(2), "tiny budget must be inconclusive");

    // Raising the budget on resume turns the same invocation conclusive.
    let resumed = bbv(
        &["resume", ckpt.to_str().unwrap(), "--max-states", "1000000"],
        &[],
    );
    assert_eq!(
        resumed.status.code(),
        Some(0),
        "{}",
        String::from_utf8_lossy(&resumed.stderr)
    );
    let base = bbv(
        &[
            "verify", "ms-queue", "--threads", "2", "--ops", "2", "--max-states", "200",
            "--no-fallback", "--max-states", "1000000",
        ],
        &[],
    );
    assert_eq!(
        mask_durations(&stdout_of(&resumed)),
        mask_durations(&stdout_of(&base))
    );
    let _ = std::fs::remove_dir_all(&ckpt);
}

/// `bbv resume DIR --jobs N` must accept a worker-count override without
/// invalidating the checkpoint fingerprint: the config tag deliberately
/// excludes `--jobs`, so a checkpoint cut at `--jobs 1` must still seed a
/// resume at `--jobs 4` (and with `--fuse` toggled), and the resumed
/// report must be byte-identical to an uninterrupted run.
#[test]
fn resume_jobs_override_reuses_jobs1_checkpoint() {
    let base = bbv(
        &["verify", "ms-queue", "--threads", "2", "--ops", "2", "--timeout", "120s", "--jobs", "1"],
        &[],
    );
    assert_eq!(base.status.code(), Some(0));

    // Crash a --jobs 1 run mid-refinement so the checkpoint holds both
    // exploration sections and partial refinement rounds.
    let ckpt = tmp_dir("jobs-override");
    let crashed = bbv(
        &[
            "verify", "ms-queue", "--threads", "2", "--ops", "2", "--timeout", "120s",
            "--jobs", "1",
            "--checkpoint", ckpt.to_str().unwrap(), "--checkpoint-every", "1",
        ],
        &[("BB_FAULT", "round-abort:2")],
    );
    assert!(!crashed.status.success());

    // Resume at --jobs 4 (+ --fuse, likewise excluded from the tag), with
    // metrics on so seeding is observable.
    let metrics = std::env::temp_dir().join(format!("bbv-jobs-override-{}.json", std::process::id()));
    let resumed = bbv(
        &[
            "resume", ckpt.to_str().unwrap(),
            "--jobs", "4", "--fuse", "--metrics", metrics.to_str().unwrap(),
        ],
        &[],
    );
    assert_eq!(
        resumed.status.code(),
        Some(0),
        "{}",
        String::from_utf8_lossy(&resumed.stderr)
    );
    assert_eq!(
        mask_durations(&stdout_of(&resumed)),
        mask_durations(&stdout_of(&base)),
        "jobs-override resume must converge to the jobs=1 report byte-for-byte"
    );

    // The checkpoint really seeded: at least one section was reused rather
    // than recomputed (a fingerprint mismatch would force seed_hits = 0).
    let json = std::fs::read_to_string(&metrics).expect("metrics written");
    let seeds: u64 = json
        .split("\"persist.seed_hits\":")
        .nth(1)
        .and_then(|s| s.trim_start().split(|c: char| !c.is_ascii_digit()).next()?.parse().ok())
        .expect("seed-hit counter present in metrics");
    assert!(seeds >= 1, "the jobs=1 checkpoint must seed the jobs=4 resume: {json}");
    let _ = std::fs::remove_file(&metrics);
    let _ = std::fs::remove_dir_all(&ckpt);
}

/// `--checkpoint` is output-neutral: stdout and the exit code are
/// byte-identical with and without it (like the bb-obs flags).
#[test]
fn checkpointing_is_output_neutral() {
    let plain = bbv(&["verify", "hm-list-buggy", "--threads", "2", "--ops", "2", "--domain", "1"], &[]);
    let ckpt = tmp_dir("neutral");
    let with = bbv(
        &[
            "verify", "hm-list-buggy", "--threads", "2", "--ops", "2", "--domain", "1",
            "--checkpoint", ckpt.to_str().unwrap(),
        ],
        &[],
    );
    assert_eq!(plain.status.code(), Some(1));
    assert_eq!(with.status.code(), Some(1));
    assert_eq!(stdout_of(&plain), stdout_of(&with));
    // And a second, fully-seeded run over the same checkpoint agrees too.
    let seeded = bbv(
        &[
            "verify", "hm-list-buggy", "--threads", "2", "--ops", "2", "--domain", "1",
            "--checkpoint", ckpt.to_str().unwrap(),
        ],
        &[],
    );
    assert_eq!(seeded.status.code(), Some(1));
    assert_eq!(stdout_of(&seeded), stdout_of(&plain));
    let _ = std::fs::remove_dir_all(&ckpt);
}

// Compile-time guard: the helper is exercised by every test above, but make
// the masking itself visible in one place.
#[test]
fn duration_masking_only_touches_duration_tokens() {
    let line = "answered by the direct rung at bound 2-2 in 862.8ms";
    assert_eq!(
        mask_durations(line),
        "answered by the direct rung at bound 2-2 in <T>"
    );
    let stats = "after 52 states, 80 transitions, 11.5 KiB peak, 1.4ms elapsed";
    assert_eq!(
        mask_durations(stats),
        "after 52 states, 80 transitions, 11.5 KiB peak, <T> elapsed"
    );
    assert!(!mask_durations("lin=✓ lock-free=✓ |Δ|=16347").contains("<T>"));
    let _ = Path::new("unused");
}
