//! `bb-serve/v1` protocol robustness: hostile and unlucky clients must
//! never wedge the daemon or corrupt other jobs.
//!
//! Covered here: malformed and truncated request lines, the 1 MiB line
//! bound, a watcher that disconnects mid-stream, queue-full backpressure
//! with `retry_after_ms`, and a daemon killed mid-journal-append (via the
//! deterministic `BB_FAULT=journal-write` point) that must resume its
//! queue from the journal on restart.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{Shutdown, TcpStream};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Output, Stdio};
use std::time::{Duration, Instant};

fn bbv() -> &'static str {
    env!("CARGO_BIN_EXE_bbv")
}

fn tmp(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("bb-serve-proto-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    std::fs::create_dir_all(&d).unwrap();
    d
}

/// A running daemon, killed and cleaned up on drop.
struct Daemon {
    child: Child,
    dir: PathBuf,
}

impl Daemon {
    fn start(dir: &Path, args: &[&str]) -> Daemon {
        Self::start_env(dir, args, &[])
    }

    fn start_env(dir: &Path, args: &[&str], env: &[(&str, &str)]) -> Daemon {
        let mut cmd = Command::new(bbv());
        cmd.arg("serve")
            .arg("--dir")
            .arg(dir)
            .args(args)
            .stdout(Stdio::null())
            .stderr(Stdio::null());
        for (k, v) in env {
            cmd.env(k, v);
        }
        let child = cmd.spawn().expect("spawn bbv serve");
        let addr_file = dir.join("serve.addr");
        let deadline = Instant::now() + Duration::from_secs(30);
        while !addr_file.exists() {
            assert!(Instant::now() < deadline, "daemon never published serve.addr");
            std::thread::sleep(Duration::from_millis(20));
        }
        Daemon { child, dir: dir.to_path_buf() }
    }

    fn addr(&self) -> String {
        std::fs::read_to_string(self.dir.join("serve.addr"))
            .expect("serve.addr readable")
            .trim()
            .to_string()
    }

    /// Waits (bounded) for the daemon process to exit on its own.
    fn wait_exit(&mut self, within: Duration) -> bool {
        let deadline = Instant::now() + within;
        while Instant::now() < deadline {
            if let Ok(Some(_)) = self.child.try_wait() {
                return true;
            }
            std::thread::sleep(Duration::from_millis(30));
        }
        false
    }

    fn drain(mut self) {
        let ok = Command::new(bbv())
            .args(["drain", "--dir"])
            .arg(&self.dir)
            .output()
            .map(|o| o.status.success())
            .unwrap_or(false);
        if ok && self.wait_exit(Duration::from_secs(60)) {
            return;
        }
        let _ = self.child.kill();
    }
}

impl Drop for Daemon {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

fn run_bbv(args: &[&str]) -> Output {
    Command::new(bbv()).args(args).output().expect("run bbv")
}

fn stdout_of(o: &Output) -> String {
    String::from_utf8_lossy(&o.stdout).into_owned()
}

/// One raw request line → one reply line over an existing connection.
fn roundtrip(reader: &mut BufReader<TcpStream>, writer: &mut TcpStream, line: &str) -> String {
    writeln!(writer, "{line}").expect("send request");
    let mut reply = String::new();
    reader.read_line(&mut reply).expect("read reply");
    assert!(!reply.is_empty(), "daemon closed instead of replying to {line:?}");
    reply
}

fn connect(addr: &str) -> (BufReader<TcpStream>, TcpStream) {
    let writer = TcpStream::connect(addr).expect("connect to daemon");
    writer
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    let reader = BufReader::new(writer.try_clone().unwrap());
    (reader, writer)
}

#[test]
fn malformed_requests_get_error_replies_and_the_connection_survives() {
    let dir = tmp("malformed");
    let daemon = Daemon::start(&dir, &["--workers", "1"]);
    let (mut reader, mut writer) = connect(&daemon.addr());

    for bad in [
        "not json at all",
        "{\"op\": 42}",
        "{\"op\": \"no-such-op\"}",
        "{\"op\": \"submit\"}",
        "{\"op\": \"submit\", \"spec\": {\"algorithm\": \"not-in-roster\"}}",
        "{\"op\": \"status\"}",
        "{\"op\": \"status\", \"job\": 9999}",
        "[1, 2, 3]",
    ] {
        let reply = roundtrip(&mut reader, &mut writer, bad);
        assert!(
            reply.contains("\"error\""),
            "expected an error reply to {bad:?}, got: {reply}"
        );
    }

    // The same connection still serves well-formed requests afterwards.
    let reply = roundtrip(&mut reader, &mut writer, "{\"op\": \"ping\"}");
    assert!(
        reply.contains("bb-serve/v1"),
        "ping after garbage must still answer with the schema: {reply}"
    );
    daemon.drain();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn truncated_request_at_eof_is_still_answered() {
    let dir = tmp("truncated");
    let daemon = Daemon::start(&dir, &["--workers", "1"]);
    let (mut reader, mut writer) = connect(&daemon.addr());

    // No trailing newline, then half-close: the daemon must treat the
    // partial line as the final request rather than hanging for more.
    writer.write_all(b"{\"op\": \"ping\"}").unwrap();
    writer.shutdown(Shutdown::Write).unwrap();
    let mut reply = String::new();
    reader.read_line(&mut reply).expect("read reply");
    assert!(
        reply.contains("bb-serve/v1"),
        "truncated ping must still be answered: {reply:?}"
    );
    // After the reply the daemon sees EOF and closes cleanly.
    let mut rest = String::new();
    reader.read_to_string(&mut rest).expect("clean close");
    assert_eq!(rest, "", "nothing may follow the final reply");
    daemon.drain();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn oversized_request_line_is_rejected_and_the_connection_closed() {
    let dir = tmp("oversized");
    let daemon = Daemon::start(&dir, &["--workers", "1"]);
    let (mut reader, mut writer) = connect(&daemon.addr());

    // MAX_LINE is 1 MiB; one byte past it, no newline. (Exactly one over,
    // so the daemon consumes every sent byte before rejecting — leftover
    // unread bytes would turn its close into an RST instead of a FIN.)
    let blob = vec![b'x'; (1 << 20) + 1];
    writer.write_all(&blob).unwrap();
    let mut reply = String::new();
    reader.read_line(&mut reply).expect("read reply");
    assert!(
        reply.contains("\"error\"") && reply.contains("exceeds"),
        "oversized line must be rejected explicitly: {reply:?}"
    );
    let mut rest = String::new();
    match reader.read_to_string(&mut rest) {
        Ok(_) => assert_eq!(rest, "", "nothing may follow the error reply"),
        // A reset also proves the close; don't be picky about its flavor.
        Err(e) if e.kind() == std::io::ErrorKind::ConnectionReset => {}
        Err(e) => panic!("unexpected error draining the connection: {e}"),
    }

    // The daemon itself is unharmed: a fresh connection works.
    let (mut reader, mut writer) = connect(&daemon.addr());
    let reply = roundtrip(&mut reader, &mut writer, "{\"op\": \"ping\"}");
    assert!(reply.contains("bb-serve/v1"));
    daemon.drain();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn mid_watch_disconnect_leaves_the_job_to_complete() {
    let dir = tmp("miswatch");
    let daemon = Daemon::start(&dir, &["--workers", "1"]);
    let addr = daemon.addr();
    let dir_s = dir.to_str().unwrap();

    let (mut reader, mut writer) = connect(&addr);
    let reply = roundtrip(
        &mut reader,
        &mut writer,
        "{\"op\": \"submit\", \"priority\": 0, \"spec\": \
         {\"command\": \"verify\", \"algorithm\": \"treiber\", \"threads\": 2, \"ops\": 2}}",
    );
    assert!(reply.contains("\"ok\": true"), "submit failed: {reply}");

    // Start watching, then vanish without reading a single event.
    writeln!(writer, "{{\"op\": \"watch\", \"job\": 1}}").unwrap();
    drop(writer);
    drop(reader);

    // The job still runs to completion and its result is intact.
    let deadline = Instant::now() + Duration::from_secs(60);
    let status = loop {
        let out = stdout_of(&run_bbv(&["status", "1", "--dir", dir_s]));
        if out.contains("\"state\": \"done\"") {
            break out;
        }
        assert!(
            Instant::now() < deadline,
            "job never completed after watcher vanished; last status: {out}"
        );
        std::thread::sleep(Duration::from_millis(50));
    };
    let direct = stdout_of(&run_bbv(&["verify", "treiber", "--threads", "2", "--ops", "2"]));
    let v = bb_obs::json::parse(status.trim()).expect("status parses");
    assert_eq!(
        v.get("stdout").and_then(|s| s.as_str()),
        Some(direct.as_str()),
        "result after watcher disconnect must match a direct run"
    );
    daemon.drain();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn full_queue_rejects_with_a_retry_hint() {
    let dir = tmp("backpressure");
    let daemon = Daemon::start(&dir, &["--workers", "1", "--queue", "1"]);
    let (mut reader, mut writer) = connect(&daemon.addr());

    // Occupy the only worker with a deadline-bounded job (~4 s), then fill
    // the one queue slot.
    let slow = "{\"op\": \"submit\", \"priority\": 0, \"spec\": \
                {\"command\": \"verify\", \"algorithm\": \"treiber\", \"threads\": 3, \
                 \"ops\": 2, \"timeout_ns\": 4000000000}}";
    let reply = roundtrip(&mut reader, &mut writer, slow);
    assert!(reply.contains("\"ok\": true"), "slow submit failed: {reply}");
    // Wait for the worker to pick it up so the queue slot is truly free.
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let st = roundtrip(&mut reader, &mut writer, "{\"op\": \"status\", \"job\": 1}");
        if st.contains("\"state\": \"running\"") {
            break;
        }
        assert!(Instant::now() < deadline, "job 1 never started: {st}");
        std::thread::sleep(Duration::from_millis(20));
    }
    let filler = "{\"op\": \"submit\", \"priority\": 0, \"spec\": \
                  {\"command\": \"verify\", \"algorithm\": \"treiber\", \"threads\": 2, \
                   \"ops\": 1}}";
    let reply = roundtrip(&mut reader, &mut writer, filler);
    assert!(
        reply.contains("\"state\": \"queued\""),
        "second job must queue: {reply}"
    );

    // Queue full: the reject must carry a clamped retry_after_ms hint.
    let reply = roundtrip(&mut reader, &mut writer, filler);
    let v = bb_obs::json::parse(reply.trim()).expect("reject parses");
    assert_eq!(v.get("ok").and_then(|b| b.as_bool()), Some(false));
    let retry = v
        .get("retry_after_ms")
        .and_then(|n| n.as_u64())
        .expect("queue-full reject carries retry_after_ms");
    assert!(
        (100..=60_000).contains(&retry),
        "retry hint out of clamp range: {retry}"
    );

    // Unblock quickly: cancel both jobs (running job 1 trips its token).
    let reply = roundtrip(&mut reader, &mut writer, "{\"op\": \"cancel\", \"job\": 2}");
    assert!(reply.contains("cancelled"), "{reply}");
    let reply = roundtrip(&mut reader, &mut writer, "{\"op\": \"cancel\", \"job\": 1}");
    assert!(reply.contains("\"ok\": true"), "{reply}");
    daemon.drain();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn killed_daemon_resumes_its_queue_from_the_journal() {
    let dir = tmp("resume");
    let dir_s = dir.to_str().unwrap();

    // Arm the deterministic crash: the 2nd journal append is the done
    // record of job 1 — it is torn mid-line and the daemon aborts, exactly
    // like a power cut after computing but before recording the result.
    let mut daemon = Daemon::start_env(
        &dir,
        &["--workers", "1"],
        &[("BB_FAULT", "journal-write:2")],
    );
    let submit = run_bbv(&[
        "submit", "verify", "treiber", "--threads", "2", "--ops", "1",
        "--dir", dir_s, "--detach",
    ]);
    assert!(
        stdout_of(&submit).contains("\"job\": 1"),
        "detached submit failed: {}{}",
        stdout_of(&submit),
        String::from_utf8_lossy(&submit.stderr)
    );
    assert!(
        daemon.wait_exit(Duration::from_secs(30)),
        "daemon must abort at the armed journal-write fault"
    );
    drop(daemon);

    // The journal tail is torn mid-line — exactly what replay tolerates.
    let journal = std::fs::read_to_string(dir.join("serve.journal")).unwrap();
    assert!(
        !journal.ends_with('\n'),
        "fault must tear the final journal line"
    );

    // Restart over the same dir: job 1 replays from the journal and is
    // recomputed; the result matches a direct run byte for byte.
    let daemon = Daemon::start(&dir, &["--workers", "1"]);
    let deadline = Instant::now() + Duration::from_secs(60);
    let status = loop {
        let out = stdout_of(&run_bbv(&["status", "1", "--dir", dir_s]));
        if out.contains("\"state\": \"done\"") {
            break out;
        }
        assert!(
            Instant::now() < deadline,
            "replayed job never completed; last status: {out}"
        );
        std::thread::sleep(Duration::from_millis(50));
    };
    let direct = stdout_of(&run_bbv(&["verify", "treiber", "--threads", "2", "--ops", "1"]));
    let v = bb_obs::json::parse(status.trim()).expect("status parses");
    assert_eq!(
        v.get("stdout").and_then(|s| s.as_str()),
        Some(direct.as_str()),
        "replayed result must match a direct run"
    );

    // The daemon accounts for the replay in its admission counters.
    let stats = stdout_of(&run_bbv(&["stats", "--dir", dir_s]));
    let v = bb_obs::json::parse(stats.trim()).expect("stats parses");
    assert_eq!(
        v.get("admission")
            .and_then(|a| a.get("replayed"))
            .and_then(|n| n.as_u64()),
        Some(1),
        "stats must report the replayed job: {stats}"
    );
    daemon.drain();
    let _ = std::fs::remove_dir_all(&dir);
}
