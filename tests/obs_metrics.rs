//! Schema tests for `bbv --metrics` / `--trace` (bb-obs export formats).
//!
//! Wall-clock values vary run to run, so the snapshot masks every timing
//! field (all of which end in `_us` by construction) and pins the *shape*:
//! which spans exist, how they nest, and which counters are reported.

use bb_obs::json::{parse, JsonValue};
use std::process::Command;

fn bbv(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_bbv"))
        .args(args)
        .output()
        .expect("bbv runs")
}

fn tmp(name: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("bbv_obs_{name}_{}", std::process::id()))
}

/// Runs a small verify with both exports on and returns (metrics, trace).
fn capture(test: &str, algo: &str) -> (JsonValue, String) {
    let m = tmp(&format!("{test}_m.json"));
    let t = tmp(&format!("{test}_t.ndjson"));
    let out = bbv(&[
        "verify", algo, "--threads", "2", "--ops", "1", "--domain", "1",
        "--metrics", m.to_str().unwrap(), "--trace", t.to_str().unwrap(),
    ]);
    assert!(out.status.code().is_some(), "bbv died: {out:?}");
    let metrics = parse(&std::fs::read_to_string(&m).unwrap()).expect("metrics is valid JSON");
    let trace = std::fs::read_to_string(&t).unwrap();
    let _ = std::fs::remove_file(m);
    let _ = std::fs::remove_file(t);
    (metrics, trace)
}

#[test]
fn metrics_document_has_the_v1_schema() {
    let (doc, _) = capture("schema", "ms-queue");
    let obj = doc.as_object().expect("top level is an object");
    let keys: Vec<&str> = obj.iter().map(|(k, _)| k.as_str()).collect();
    assert_eq!(
        keys,
        ["schema", "meta", "elapsed_us", "spans", "counters", "histograms"],
        "top-level key set/order changed"
    );
    assert_eq!(doc.get("schema").and_then(JsonValue::as_str), Some("bb-obs/v1"));

    let meta = doc.get("meta").and_then(JsonValue::as_object).expect("meta object");
    let meta_keys: Vec<&str> = meta.iter().map(|(k, _)| k.as_str()).collect();
    assert_eq!(meta_keys, ["command", "algorithm", "threads", "ops", "jobs", "reduce"]);
    assert_eq!(doc.get("meta").unwrap().get("command").unwrap().as_str(), Some("verify"));
    assert_eq!(doc.get("meta").unwrap().get("algorithm").unwrap().as_str(), Some("ms-queue"));

    assert!(doc.get("elapsed_us").unwrap().as_u64().is_some());
}

#[test]
fn span_tree_covers_every_pipeline_phase() {
    let (doc, _) = capture("spans", "ms-queue");
    let spans = doc.get("spans").and_then(JsonValue::as_array).expect("spans array");
    assert!(!spans.is_empty());

    // Every span carries the fixed field set; timing values are masked, the
    // schema (key names and nesting) is the snapshot.
    let mut names = Vec::new();
    let mut depth_of = std::collections::HashMap::new();
    for s in spans {
        let obj = s.as_object().expect("span is an object");
        let keys: Vec<&str> = obj.iter().map(|(k, _)| k.as_str()).collect();
        assert_eq!(keys, ["id", "parent", "name", "depth", "start_us", "wall_us", "fields"]);
        let id = s.get("id").unwrap().as_u64().unwrap();
        let depth = s.get("depth").unwrap().as_u64().unwrap();
        depth_of.insert(id, depth);
        match s.get("parent").unwrap().as_u64() {
            None => assert_eq!(depth, 0, "only the root span has no parent"),
            Some(p) => assert_eq!(depth, depth_of[&p] + 1, "depth is parent depth + 1"),
        }
        names.push(s.get("name").unwrap().as_str().unwrap().to_string());
    }

    // The phase vocabulary of the verify pipeline.
    assert_eq!(names[0], "bbv", "root span");
    for phase in ["explore.system", "explore", "lin", "bisim", "bisim.round", "quotient",
                  "refine", "lockfree"] {
        assert!(names.iter().any(|n| n == phase), "missing phase `{phase}` in {names:?}");
    }
}

#[test]
fn counters_report_the_hot_path_instruments() {
    let (doc, _) = capture("counters", "ms-queue");
    let counters = doc.get("counters").and_then(JsonValue::as_object).expect("counters object");
    let names: Vec<&str> = counters.iter().map(|(k, _)| k.as_str()).collect();
    for c in ["bisim.signature_recomputes", "bisim.rounds", "lts.tau_closure_builds",
              "refine.product_states", "explore.frontier_depth"] {
        assert!(names.contains(&c), "missing counter `{c}` in {names:?}");
    }
    // Sorted by name: machine-diffable across runs.
    let mut sorted = names.clone();
    sorted.sort_unstable();
    assert_eq!(names, sorted);
    // A 2-1 MS-queue run definitely refines signatures.
    let recomputes = counters.iter().find(|(k, _)| k == "bisim.signature_recomputes").unwrap();
    assert!(recomputes.1.as_u64().unwrap() > 0);
}

#[test]
fn trace_is_valid_ndjson_with_matched_begin_end() {
    let (doc, trace) = capture("trace", "ms-queue");
    let span_count = doc.get("spans").and_then(JsonValue::as_array).unwrap().len();

    let mut begins = 0usize;
    let mut ends = 0usize;
    let mut last_seq = None;
    let mut saw_counters = false;
    let mut saw_histograms = false;
    for (i, line) in trace.lines().enumerate() {
        let ev = parse(line).unwrap_or_else(|e| panic!("line {} is not JSON ({e}): {line}", i + 1));
        match ev.get("ev").and_then(JsonValue::as_str) {
            Some("begin") => begins += 1,
            Some("end") => ends += 1,
            Some("diag") => {}
            Some("counters") => saw_counters = true,
            Some("histograms") => {
                saw_histograms = true;
                let values = ev.get("values").and_then(JsonValue::as_object).unwrap();
                for (name, h) in values {
                    assert!(h.get("count").and_then(JsonValue::as_u64).is_some(), "{name}");
                    assert!(h.get("sum").and_then(JsonValue::as_u64).is_some(), "{name}");
                }
            }
            other => panic!("unknown event kind {other:?} on line {}", i + 1),
        }
        if let Some(seq) = ev.get("seq").and_then(JsonValue::as_u64) {
            assert!(last_seq < Some(seq), "seq must increase monotonically");
            last_seq = Some(seq);
        }
    }
    assert_eq!(begins, span_count, "one begin event per span");
    assert_eq!(ends, span_count, "one end event per span");
    assert!(saw_counters, "trace carries a counters summary event");
    assert!(saw_histograms, "trace ends with a histograms summary event");
}

#[test]
fn histograms_appear_on_reduced_runs() {
    let m = tmp("hist_m.json");
    let out = bbv(&[
        "verify", "treiber", "--threads", "2", "--ops", "1", "--domain", "1",
        "--reduce", "sym", "--metrics", m.to_str().unwrap(),
    ]);
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let doc = parse(&std::fs::read_to_string(&m).unwrap()).unwrap();
    let _ = std::fs::remove_file(m);
    let hist = doc.get("histograms").and_then(JsonValue::as_object).expect("histograms object");
    let orbit = hist.iter().find(|(k, _)| k == "reduce.sym.orbit_size");
    let (_, orbit) = orbit.expect("symmetry reduction records the orbit-size histogram");
    assert!(orbit.get("count").unwrap().as_u64().unwrap() > 0);
    let buckets = orbit.get("buckets").and_then(JsonValue::as_array).unwrap();
    for b in buckets {
        let pair = b.as_array().expect("bucket is a [upper_bound, count] pair");
        assert_eq!(pair.len(), 2);
    }
}
