//! Observability must be verdict- and output-neutral: enabling `--metrics`,
//! `--trace` and `--progress` may add stderr lines and write the named
//! files, but stdout, exit codes and exported `.aut` artifacts stay
//! byte-identical at any `--jobs` count.

use std::process::Command;

fn bbv(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_bbv"))
        .args(args)
        .output()
        .expect("bbv runs")
}

fn tmp(name: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("bbv_neutral_{name}_{}", std::process::id()))
}

/// Runs `verify` twice — plain, and with the full observability surface on —
/// and asserts stdout and the exit code are byte-identical.
fn assert_neutral(algo: &str, jobs: &str, expect_code: i32) {
    let base_args = ["verify", algo, "--threads", "2", "--ops", "1", "--domain", "1",
                     "--jobs", jobs];
    let plain = bbv(&base_args);

    let m = tmp(&format!("{algo}_{jobs}_m.json"));
    let t = tmp(&format!("{algo}_{jobs}_t.ndjson"));
    let mut obs_args: Vec<&str> = base_args.to_vec();
    obs_args.extend(["--metrics", m.to_str().unwrap(), "--trace", t.to_str().unwrap(),
                     "--progress"]);
    let observed = bbv(&obs_args);
    let _ = std::fs::remove_file(m);
    let _ = std::fs::remove_file(t);

    assert_eq!(plain.status.code(), Some(expect_code), "plain run verdict changed");
    assert_eq!(observed.status.code(), Some(expect_code), "observability changed the exit code");
    assert_eq!(
        plain.stdout, observed.stdout,
        "observability changed stdout (--jobs {jobs}):\nplain:\n{}\nobserved:\n{}",
        String::from_utf8_lossy(&plain.stdout),
        String::from_utf8_lossy(&observed.stdout)
    );
}

#[test]
fn verify_stdout_is_identical_with_metrics_on_one_worker() {
    assert_neutral("ms-queue", "1", 0);
}

#[test]
fn verify_stdout_is_identical_with_metrics_on_four_workers() {
    assert_neutral("ms-queue", "4", 0);
}

#[test]
fn refutation_stdout_is_identical_with_metrics() {
    // A failing verdict (the HW queue spins): exit code 1 either way, and
    // the counterexample text is unchanged by observation.
    assert_neutral("hw-queue", "1", 1);
    assert_neutral("hw-queue", "4", 1);
}

#[test]
fn verify_stdout_is_identical_across_worker_counts() {
    let run = |jobs: &str| {
        bbv(&["verify", "ms-queue", "--threads", "2", "--ops", "1", "--domain", "1",
              "--jobs", jobs])
    };
    let one = run("1");
    let four = run("4");
    assert_eq!(one.status.code(), four.status.code());
    assert_eq!(one.stdout, four.stdout, "verdict output must not depend on --jobs");
}

#[test]
fn exported_aut_is_identical_with_metrics() {
    let run = |tag: &str, extra: &[&str]| -> Vec<u8> {
        let aut = tmp(&format!("q_{tag}.aut"));
        let mut args = vec!["quotient", "treiber", "--threads", "2", "--ops", "1",
                            "--domain", "1", "--aut", aut.to_str().unwrap()];
        args.extend(extra);
        let out = bbv(&args);
        assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
        let bytes = std::fs::read(&aut).unwrap();
        let _ = std::fs::remove_file(aut);
        bytes
    };
    let m = tmp("q_m.json");
    let plain = run("plain", &[]);
    let observed = run("obs", &["--metrics", m.to_str().unwrap()]);
    let _ = std::fs::remove_file(m);
    assert_eq!(plain, observed, ".aut bytes changed under --metrics");
}

#[test]
fn quiet_silences_reduction_diagnostics_but_not_verdicts() {
    let loud = bbv(&["verify", "treiber", "--threads", "2", "--ops", "1", "--domain", "1",
                     "--reduce", "full"]);
    let quiet = bbv(&["verify", "treiber", "--threads", "2", "--ops", "1", "--domain", "1",
                      "--reduce", "full", "--quiet"]);
    assert!(loud.status.success());
    assert!(quiet.status.success());
    assert_eq!(loud.stdout, quiet.stdout, "--quiet must not touch stdout");
    let loud_err = String::from_utf8_lossy(&loud.stderr);
    let quiet_err = String::from_utf8_lossy(&quiet.stderr);
    assert!(loud_err.contains("reduction"), "diagnostic expected on stderr: {loud_err}");
    assert!(!quiet_err.contains("reduction"), "--quiet leaks diagnostics: {quiet_err}");
}
