//! Differential testing of the LTL engine: the GPVW translation + product
//! emptiness check is compared against a direct semantic evaluator on
//! ultimately periodic words.
//!
//! A single-path-with-loop LTS has exactly one maximal execution `u·vω`,
//! so `check(lts, φ)` must coincide with the textbook satisfaction
//! relation `u·vω ⊨ φ`, which we compute here by backward fixpoint
//! iteration over the lasso.

use bbverify::lts::{Action, LtsBuilder, ThreadId};
use bbverify::ltl::{check, Ltl, Prop};

/// One step of the word: which atomic propositions hold.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Letter {
    is_ret: bool,
    is_call: bool,
    is_tau: bool,
    thread: u8,
}

impl Letter {
    fn to_action(self) -> Action {
        let t = ThreadId(self.thread);
        if self.is_ret {
            Action::ret(t, "m", Some(0))
        } else if self.is_call {
            Action::call(t, "m", None)
        } else {
            Action::tau(t)
        }
    }

    fn eval(&self, p: &Prop) -> bool {
        match p {
            Prop::IsReturn => self.is_ret,
            Prop::IsCall => self.is_call,
            Prop::IsTau => self.is_tau,
            Prop::ByThread(t) => t.0 == self.thread,
            Prop::OfMethod(m) => (self.is_ret || self.is_call) && &**m == "m",
            Prop::Done => false, // lasso words never terminate
        }
    }
}

/// Direct satisfaction of `φ` on `u·vω` by backward fixpoint iteration.
fn sat(u: &[Letter], v: &[Letter], f: &Ltl) -> bool {
    let n = u.len() + v.len();
    let letter = |i: usize| {
        if i < u.len() {
            u[i]
        } else {
            v[(i - u.len()) % v.len()]
        }
    };
    // Collect subformulas (children before parents).
    fn collect<'a>(f: &'a Ltl, out: &mut Vec<&'a Ltl>) {
        match f {
            Ltl::And(a, b) | Ltl::Or(a, b) | Ltl::Until(a, b) | Ltl::Release(a, b) => {
                collect(a, out);
                collect(b, out);
            }
            _ => {}
        }
        if !out.contains(&f) {
            out.push(f);
        }
    }
    let mut subs = Vec::new();
    collect(f, &mut subs);

    // truth[sub][pos] for positions 0..n, where positions >= u.len() wrap.
    use std::collections::HashMap;
    let mut truth: HashMap<(usize, usize), bool> = HashMap::new();
    let index_of = |subs: &Vec<&Ltl>, g: &Ltl| subs.iter().position(|s| *s == g).unwrap();

    // Solve innermost-first: children are fully evaluated before parents,
    // and each temporal operator is iterated to its own fixpoint (Until
    // from false = least fixpoint, Release from true = greatest fixpoint).
    for (si, s) in subs.iter().enumerate() {
        let is_until = matches!(s, Ltl::Until(_, _));
        let is_release = matches!(s, Ltl::Release(_, _));
        for pos in 0..n {
            truth.insert((si, pos), is_release);
        }
        let max_iters = if is_until || is_release { n + 2 } else { 1 };
        for _ in 0..max_iters {
            let mut changed = false;
            for pos in (0..n).rev() {
                let succ = if pos + 1 < n { pos + 1 } else { u.len() };
                let val = match s {
                    Ltl::True => true,
                    Ltl::False => false,
                    Ltl::Prop(p) => letter(pos).eval(p),
                    Ltl::NotProp(p) => !letter(pos).eval(p),
                    Ltl::And(a, b) => {
                        truth[&(index_of(&subs, a), pos)] && truth[&(index_of(&subs, b), pos)]
                    }
                    Ltl::Or(a, b) => {
                        truth[&(index_of(&subs, a), pos)] || truth[&(index_of(&subs, b), pos)]
                    }
                    Ltl::Until(a, b) => {
                        truth[&(index_of(&subs, b), pos)]
                            || (truth[&(index_of(&subs, a), pos)] && truth[&(si, succ)])
                    }
                    Ltl::Release(a, b) => {
                        truth[&(index_of(&subs, b), pos)]
                            && (truth[&(index_of(&subs, a), pos)] || truth[&(si, succ)])
                    }
                };
                if truth.insert((si, pos), val) != Some(val) {
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }
    }
    truth[&(index_of(&subs, f), 0)]
}

/// Builds the lasso LTS for `u·vω`.
fn lasso_lts(u: &[Letter], v: &[Letter]) -> bbverify::lts::Lts {
    assert!(!v.is_empty());
    let mut b = LtsBuilder::new();
    let n = u.len() + v.len();
    let states: Vec<_> = (0..n).map(|_| b.add_state()).collect();
    for (i, l) in u.iter().chain(v.iter()).enumerate() {
        let a = b.intern_action(l.to_action());
        let target = if i + 1 < n { states[i + 1] } else { states[u.len()] };
        b.add_transition(states[i], a, target);
    }
    b.build(states[0])
}

/// Deterministic letter generator.
fn letters(seed: u64, len: usize) -> Vec<Letter> {
    let mut x = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1);
    (0..len)
        .map(|_| {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let kind = x % 3;
            Letter {
                is_ret: kind == 0,
                is_call: kind == 1,
                is_tau: kind == 2,
                thread: 1 + ((x >> 8) % 2) as u8,
            }
        })
        .collect()
}

fn formulas() -> Vec<Ltl> {
    let ret = || Ltl::prop(Prop::IsReturn);
    let call = || Ltl::prop(Prop::IsCall);
    let tau = || Ltl::prop(Prop::IsTau);
    let by1 = || Ltl::prop(Prop::ByThread(ThreadId(1)));
    vec![
        Ltl::globally(Ltl::eventually(ret())),
        Ltl::eventually(Ltl::globally(tau())),
        Ltl::until(call(), ret()),
        Ltl::release(ret(), tau()),
        Ltl::globally(Ltl::implies(call(), Ltl::eventually(ret()))),
        Ltl::and(Ltl::eventually(by1()), Ltl::eventually(ret())),
        Ltl::or(Ltl::globally(Ltl::not(ret())), Ltl::eventually(call())),
        Ltl::not(Ltl::globally(Ltl::eventually(call()))),
        Ltl::until(Ltl::not(ret()), Ltl::and(call(), Ltl::eventually(ret()))),
        Ltl::globally(Ltl::or(tau(), Ltl::or(call(), ret()))),
    ]
}

#[test]
fn buchi_pipeline_matches_direct_semantics() {
    let mut cases = 0;
    for seed in 0..40u64 {
        let u = letters(seed * 31 + 1, (seed % 4) as usize);
        let v = letters(seed * 97 + 7, 1 + (seed % 3) as usize);
        let lts = lasso_lts(&u, &v);
        for (fi, f) in formulas().iter().enumerate() {
            let expected = sat(&u, &v, f);
            let got = check(&lts, f).holds;
            assert_eq!(
                got, expected,
                "seed {seed}, formula #{fi} ({f}) on u={u:?} v={v:?}"
            );
            cases += 1;
        }
    }
    assert!(cases >= 400);
}

/// Sanity for the differential harness itself.
#[test]
fn direct_evaluator_base_cases() {
    let r = Letter {
        is_ret: true,
        is_call: false,
        is_tau: false,
        thread: 1,
    };
    let t = Letter {
        is_ret: false,
        is_call: false,
        is_tau: true,
        thread: 1,
    };
    // (τ)·(ret)ω ⊨ ◇ret, ⊭ □ret.
    assert!(sat(&[t], &[r], &Ltl::eventually(Ltl::prop(Prop::IsReturn))));
    assert!(!sat(&[t], &[r], &Ltl::globally(Ltl::prop(Prop::IsReturn))));
    // (ret)ω ⊨ □ret.
    assert!(sat(&[], &[r], &Ltl::globally(Ltl::prop(Prop::IsReturn))));
    // (τ)ω ⊨ □◇τ and ⊭ ◇ret.
    assert!(sat(
        &[],
        &[t],
        &Ltl::globally(Ltl::eventually(Ltl::prop(Prop::IsTau)))
    ));
    assert!(!sat(&[], &[t], &Ltl::eventually(Ltl::prop(Prop::IsReturn))));
    // LTS side agrees on these.
    let lts = lasso_lts(&[t], &[r]);
    assert!(check(&lts, &Ltl::eventually(Ltl::prop(Prop::IsReturn))).holds);
    assert!(!check(&lts, &Ltl::globally(Ltl::prop(Prop::IsReturn))).holds);
}
