//! CADP interop: exporting quotients in Aldebaran format and re-importing
//! them must preserve every verification verdict.

use bbverify::algorithms::{ms_queue::MsQueue, specs::SeqQueue};
use bbverify::bisim::{bisimilar, partition, quotient, Equivalence};
use bbverify::lts::{from_aut, to_aut, ExploreLimits};
use bbverify::refine::trace_refines;
use bbverify::sim::{explore_system, AtomicSpec, Bound};

#[test]
fn quotient_roundtrip_preserves_linearizability_verdict() {
    let bound = Bound::new(2, 2);
    let imp = explore_system(&MsQueue::new(&[1]), bound, ExploreLimits::default()).unwrap();
    let spec = explore_system(
        &AtomicSpec::new(SeqQueue::new(&[1])),
        bound,
        ExploreLimits::default(),
    )
    .unwrap();

    let q_imp = quotient(&imp, &partition(&imp, Equivalence::Branching));
    let q_spec = quotient(&spec, &partition(&spec, Equivalence::Branching));

    // Round-trip both quotients through the .aut format.
    let imp_rt = from_aut(&to_aut(&q_imp.lts)).unwrap();
    let spec_rt = from_aut(&to_aut(&q_spec.lts)).unwrap();

    assert!(bisimilar(&q_imp.lts, &imp_rt, Equivalence::BranchingDiv));
    assert!(bisimilar(&q_spec.lts, &spec_rt, Equivalence::BranchingDiv));
    assert_eq!(
        trace_refines(&q_imp.lts, &q_spec.lts).holds,
        trace_refines(&imp_rt, &spec_rt).holds
    );
}

#[test]
fn full_system_roundtrip_preserves_divergence() {
    use bbverify::algorithms::hw_queue::HwQueue;
    let lts = explore_system(
        &HwQueue::for_bound(&[1], 2, 1),
        Bound::new(2, 1),
        ExploreLimits::default(),
    )
    .unwrap();
    let rt = from_aut(&to_aut(&lts)).unwrap();
    assert!(bbverify::bisim::has_tau_cycle(&rt));
    assert!(bisimilar(&lts, &rt, Equivalence::BranchingDiv));
}

#[test]
fn import_survives_foreign_line_endings_and_duplicates() {
    // A CADP-produced file re-saved on Windows: CRLF endings, padded
    // fields, and a transition listed twice. Import must normalize all of
    // it — same LTS as the clean rendering.
    let clean = "des (0, 2, 2)\n(0, \"t1.call.Enq(1)\", 1)\n(1, \"i !t1 !L5\", 0)\n";
    let messy = "des ( 0 , 2 , 2 )\r\n ( 0 , \"t1.call.Enq(1)\" , 1 ) \r\n(1, \"i !t1 !L5\", 0)\r\n(1, \"i !t1 !L5\", 0)\r\n";
    let a = from_aut(clean).unwrap();
    let b = from_aut(messy).unwrap();
    assert_eq!(to_aut(&a), to_aut(&b));
}

#[test]
fn malformed_inputs_error_rather_than_panic() {
    for (name, text) in [
        ("empty", ""),
        ("blank", "   \n\t\n"),
        ("no header", "(0, \"a\", 1)\n"),
        ("truncated header", "des (0, 1\n"),
        ("two-field header", "des (0, 1)\n"),
        ("four-field header", "des (0, 1, 2, 3)\n"),
        ("negative state", "des (-1, 1, 2)\n"),
        ("non-numeric state", "des (x, 1, 2)\n"),
        ("huge header", "des (0, 1, 18446744073709551615)\n"),
        ("unparenthesized transition", "des (0, 1, 2)\n0, \"a\", 1\n"),
        ("one-field transition", "des (0, 1, 2)\n(0)\n"),
        ("two-field transition", "des (0, 1, 2)\n(0, \"a\")\n"),
        ("bad source", "des (0, 1, 2)\n(x, \"a\", 1)\n"),
        ("bad target", "des (0, 1, 2)\n(0, \"a\", x)\n"),
        ("huge target", "des (0, 1, 2)\n(0, \"a\", 99999999999)\n"),
    ] {
        let r = from_aut(text);
        assert!(r.is_err(), "{name}: should be rejected, got {r:?}");
    }
}
