//! CADP interop: exporting quotients in Aldebaran format and re-importing
//! them must preserve every verification verdict.

use bbverify::algorithms::{ms_queue::MsQueue, specs::SeqQueue};
use bbverify::bisim::{bisimilar, partition, quotient, Equivalence};
use bbverify::lts::{from_aut, to_aut, ExploreLimits};
use bbverify::refine::trace_refines;
use bbverify::sim::{explore_system, AtomicSpec, Bound};

#[test]
fn quotient_roundtrip_preserves_linearizability_verdict() {
    let bound = Bound::new(2, 2);
    let imp = explore_system(&MsQueue::new(&[1]), bound, ExploreLimits::default()).unwrap();
    let spec = explore_system(
        &AtomicSpec::new(SeqQueue::new(&[1])),
        bound,
        ExploreLimits::default(),
    )
    .unwrap();

    let q_imp = quotient(&imp, &partition(&imp, Equivalence::Branching));
    let q_spec = quotient(&spec, &partition(&spec, Equivalence::Branching));

    // Round-trip both quotients through the .aut format.
    let imp_rt = from_aut(&to_aut(&q_imp.lts)).unwrap();
    let spec_rt = from_aut(&to_aut(&q_spec.lts)).unwrap();

    assert!(bisimilar(&q_imp.lts, &imp_rt, Equivalence::BranchingDiv));
    assert!(bisimilar(&q_spec.lts, &spec_rt, Equivalence::BranchingDiv));
    assert_eq!(
        trace_refines(&q_imp.lts, &q_spec.lts).holds,
        trace_refines(&imp_rt, &spec_rt).holds
    );
}

#[test]
fn full_system_roundtrip_preserves_divergence() {
    use bbverify::algorithms::hw_queue::HwQueue;
    let lts = explore_system(
        &HwQueue::for_bound(&[1], 2, 1),
        Bound::new(2, 1),
        ExploreLimits::default(),
    )
    .unwrap();
    let rt = from_aut(&to_aut(&lts)).unwrap();
    assert!(bbverify::bisim::has_tau_cycle(&rt));
    assert!(bisimilar(&lts, &rt, Equivalence::BranchingDiv));
}
